//! Block-circulant recurrent layers (C-LSTM / E-RNN style).
//!
//! C-LSTM (Wang et al., FPGA'18) compresses LSTM gate matrices as
//! block-circulant FFT pipelines; E-RNN (Li et al., HPCA'19) extends the
//! same structure to GRUs. These layers reproduce that parameterization
//! on the workspace's BCM substrate:
//!
//! - [`BcmLstm`] stores **one** block-circulant `[4H, F+H]` gate matrix
//!   applied to the concatenated `[x_t; h_{t−1}]` input (the C-LSTM
//!   formulation `W·[x; h]`), so a single FFT→eMAC→IFFT matvec per
//!   timestep produces all four gate pre-activations.
//! - [`BcmGru`] keeps separate `[3H, F]` input and `[3H, H]` recurrent
//!   stacks (the PyTorch gate convention needs `r ⊙ (U_n·h + b_n)`
//!   before the tanh, which a concatenated matrix cannot express).
//!
//! Both layers run sequence-to-sequence over `[N, F, T, 1]` tensors
//! (features as channels, time as the H axis), train with full BPTT, and
//! expose the [`BcmLayer`] surface so Algorithm 1 prunes whole gate
//! blocks exactly as it prunes conv/FC blocks. The inference forward goes
//! through `BlockCirculant::matmat` and the shared cell math in
//! [`crate::seq`], which makes a batched eval forward bit-identical to
//! the step-at-a-time [`crate::seq::SeqRunner`] the serving tier uses.

use crate::layers::gates::GateStack;
use crate::layers::{BcmLayer, Layer, Param};
use crate::optim::SgdUpdate;
use crate::seq::{add_bias, gru_cell, lstm_cell};
use circulant::ConvBlockCirculant;
use rand::Rng;
use tensor::Tensor;

/// Splits the flat per-sample state buffer into one sample's row.
#[inline]
fn row(buf: &[f32], s: usize, width: usize) -> &[f32] {
    &buf[s * width..(s + 1) * width]
}

#[inline]
fn row_mut(buf: &mut [f32], s: usize, width: usize) -> &mut [f32] {
    &mut buf[s * width..(s + 1) * width]
}

/// Checks and unpacks a `[N, F, T, 1]` sequence tensor's dimensions.
fn seq_dims(x: &Tensor<f32>, features: usize, what: &str) -> (usize, usize) {
    assert_eq!(x.shape().ndim(), 4, "{what} expects [N, F, T, 1]");
    let d = x.dims();
    assert_eq!(d[1], features, "{what} feature mismatch");
    assert_eq!(d[3], 1, "{what} expects a singleton trailing axis");
    (d[0], d[2])
}

/// Gathers timestep `t` of a `[N, F, T, 1]` tensor into `dst` as a
/// row-major `[N, F]` matrix (plus `extra` trailing slots per sample that
/// the caller fills).
fn gather_step(
    xs: &[f32],
    n: usize,
    f: usize,
    t_len: usize,
    t: usize,
    dst: &mut [f32],
    extra: usize,
) {
    let width = f + extra;
    for s in 0..n {
        for j in 0..f {
            dst[s * width + j] = xs[(s * f + j) * t_len + t];
        }
    }
}

/// Scatters a `[N, W]` matrix's rows into timestep `t` of a
/// `[N, W, T, 1]` output buffer.
fn scatter_step(ys: &mut [f32], src: &[f32], n: usize, w: usize, t_len: usize, t: usize) {
    for s in 0..n {
        for j in 0..w {
            ys[(s * w + j) * t_len + t] = src[s * w + j];
        }
    }
}

// ---------------------------------------------------------------------
// BcmLstm
// ---------------------------------------------------------------------

/// BPTT cache of one training forward.
#[derive(Debug, Clone)]
struct LstmCache {
    n: usize,
    t_len: usize,
    /// Per timestep: concatenated inputs `[N, F+H]` (the `[F..]` tail is
    /// `h_{t−1}`, so backward needs no separate hidden-state history).
    zs: Vec<Vec<f32>>,
    /// Per timestep: post-activation gate values `[N, 4H]` (i, f, g, o).
    gates: Vec<Vec<f32>>,
    /// Per timestep: cell states `[N, H]`.
    cs: Vec<Vec<f32>>,
}

/// A block-circulant LSTM layer over `[N, F, T, 1] → [N, H, T, 1]`.
///
/// The four gate matrices are fused into one `[4H, F+H]` block-circulant
/// matrix applied to `[x_t; h_{t−1}]` (gate order `i, f, g, o`), so the
/// recurrent hot path is one spectral matvec plus the pointwise cell
/// update per timestep.
#[derive(Debug, Clone)]
pub struct BcmLstm {
    name: String,
    in_features: usize,
    hidden: usize,
    /// `[4H, F+H]` fused gate matrix.
    gates: GateStack,
    /// `[4H]` gate bias.
    bias: Param,
    cache: Option<LstmCache>,
}

impl BcmLstm {
    /// Creates a block-circulant LSTM cell.
    ///
    /// # Panics
    ///
    /// Panics if `in_features`, `hidden`, or `4·hidden` is not divisible
    /// by `bs`, or `bs` is not a power of two ≥ 2.
    pub fn new(rng: &mut impl Rng, in_features: usize, hidden: usize, bs: usize) -> Self {
        // The fused stack only needs F+H and 4H divisible, but the fx
        // serving path tiles x and h into separate block runs, so require
        // each to be block-aligned on its own.
        assert_eq!(in_features % bs, 0, "in_features not divisible by BS");
        assert_eq!(hidden % bs, 0, "hidden not divisible by BS");
        let mut layer = BcmLstm {
            name: format!("bcmlstm{in_features}x{hidden}bs{bs}"),
            in_features,
            hidden,
            gates: GateStack::new(rng, in_features + hidden, 4 * hidden, bs),
            bias: Param::new(Tensor::zeros(&[4 * hidden])),
            cache: None,
        };
        layer.init_forget_bias();
        layer
    }

    /// The standard LSTM trick: bias the forget gate open (+1) so early
    /// training does not flush the cell state every step.
    fn init_forget_bias(&mut self) {
        let hd = self.hidden;
        for b in &mut self.bias.value.as_mut_slice()[hd..2 * hd] {
            *b = 1.0;
        }
    }

    /// Rebuilds from checkpointed parts (`vecs` in the full zero-padded
    /// layout, `live` the skip index over the fused `[4H, F+H]` grid).
    pub(crate) fn from_parts(
        in_features: usize,
        hidden: usize,
        bs: usize,
        vecs: Vec<f32>,
        bias: Vec<f32>,
        live: &[bool],
    ) -> Self {
        assert_eq!(bias.len(), 4 * hidden, "bias length");
        BcmLstm {
            name: format!("bcmlstm{in_features}x{hidden}bs{bs}"),
            in_features,
            hidden,
            gates: GateStack::from_parts(in_features + hidden, 4 * hidden, bs, vecs, live),
            bias: Param::new(Tensor::from_vec(bias, &[4 * hidden])),
            cache: None,
        }
    }

    /// `(in_features, hidden)`.
    pub fn features(&self) -> (usize, usize) {
        (self.in_features, self.hidden)
    }
}

impl Layer for BcmLstm {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor<f32>, train: bool) -> Tensor<f32> {
        let (n, t_len) = seq_dims(x, self.in_features, "bcm lstm");
        let (f, hd) = (self.in_features, self.hidden);
        let (fh, g4) = (f + hd, 4 * hd);
        let xs = x.as_slice();
        let bias = self.bias.value.as_slice().to_vec();
        let mut h = vec![0.0f32; n * hd];
        let mut c = vec![0.0f32; n * hd];
        let mut y = vec![0.0f32; n * hd * t_len];
        let mut cache = train.then(|| LstmCache {
            n,
            t_len,
            zs: Vec::with_capacity(t_len),
            gates: Vec::with_capacity(t_len),
            cs: Vec::with_capacity(t_len),
        });
        // Training path: expand once, one dense matmul per step (backward
        // reuses the same expansion). Inference path: batched
        // FFT→eMAC→IFFT against the cached weight spectra.
        let wd_t = train.then(|| self.gates.dense().transpose());
        for t in 0..t_len {
            let mut z = vec![0.0f32; n * fh];
            gather_step(xs, n, f, t_len, t, &mut z, hd);
            for s in 0..n {
                z[s * fh + f..(s + 1) * fh].copy_from_slice(row(&h, s, hd));
            }
            let mut pre = match &wd_t {
                Some(wt) => Tensor::from_vec(z.clone(), &[n, fh])
                    .matmul(wt)
                    .as_slice()
                    .to_vec(),
                None => self.gates.grid().matmat(&z, n),
            };
            for s in 0..n {
                add_bias(row_mut(&mut pre, s, g4), &bias);
                lstm_cell(
                    row_mut(&mut pre, s, g4),
                    row_mut(&mut h, s, hd),
                    row_mut(&mut c, s, hd),
                );
            }
            scatter_step(&mut y, &h, n, hd, t_len, t);
            if let Some(cache) = &mut cache {
                cache.zs.push(z);
                cache.gates.push(pre);
                cache.cs.push(c.clone());
            }
        }
        self.cache = cache;
        Tensor::from_vec(y, &[n, hd, t_len, 1])
    }

    fn backward(&mut self, grad: &Tensor<f32>) -> Tensor<f32> {
        let cache = self.cache.take().expect("backward before training forward");
        let (n, t_len) = (cache.n, cache.t_len);
        let (f, hd) = (self.in_features, self.hidden);
        let (fh, g4) = (f + hd, 4 * hd);
        assert_eq!(grad.dims(), &[n, hd, t_len, 1], "upstream gradient shape");
        let gs = grad.as_slice();
        let wd = self.gates.dense();
        let mut dwd = vec![0.0f32; g4 * fh];
        let mut db = vec![0.0f32; g4];
        let mut dx = vec![0.0f32; n * f * t_len];
        let mut dh_next = vec![0.0f32; n * hd];
        let mut dc_next = vec![0.0f32; n * hd];
        for t in (0..t_len).rev() {
            let gates = &cache.gates[t];
            let c_t = &cache.cs[t];
            let mut dpre = vec![0.0f32; n * g4];
            for s in 0..n {
                for j in 0..hd {
                    let dh = gs[(s * hd + j) * t_len + t] + dh_next[s * hd + j];
                    let i = gates[s * g4 + j];
                    let fg = gates[s * g4 + hd + j];
                    let g = gates[s * g4 + 2 * hd + j];
                    let o = gates[s * g4 + 3 * hd + j];
                    let tc = c_t[s * hd + j].tanh();
                    let c_prev = if t > 0 {
                        cache.cs[t - 1][s * hd + j]
                    } else {
                        0.0
                    };
                    let dc = dh * o * (1.0 - tc * tc) + dc_next[s * hd + j];
                    dpre[s * g4 + j] = dc * g * i * (1.0 - i);
                    dpre[s * g4 + hd + j] = dc * c_prev * fg * (1.0 - fg);
                    dpre[s * g4 + 2 * hd + j] = dc * i * (1.0 - g * g);
                    dpre[s * g4 + 3 * hd + j] = dh * tc * o * (1.0 - o);
                    dc_next[s * hd + j] = dc * fg;
                }
            }
            let dpre_t = Tensor::from_vec(dpre, &[n, g4]);
            let z_t = Tensor::from_vec(cache.zs[t].clone(), &[n, fh]);
            let dw_step = dpre_t.transpose().matmul(&z_t);
            for (acc, &v) in dwd.iter_mut().zip(dw_step.as_slice()) {
                *acc += v;
            }
            let dp = dpre_t.as_slice();
            for s in 0..n {
                for k in 0..g4 {
                    db[k] += dp[s * g4 + k];
                }
            }
            let dz = dpre_t.matmul(&wd);
            let dzs = dz.as_slice();
            for s in 0..n {
                for j in 0..f {
                    dx[(s * f + j) * t_len + t] = dzs[s * fh + j];
                }
                dh_next[s * hd..(s + 1) * hd].copy_from_slice(&dzs[s * fh + f..(s + 1) * fh]);
            }
        }
        self.gates.project_grad(&Tensor::from_vec(dwd, &[g4, fh]));
        for (acc, &v) in self.bias.grad.as_mut_slice().iter_mut().zip(&db) {
            *acc += v;
        }
        Tensor::from_vec(dx, &[n, f, t_len, 1])
    }

    fn step(&mut self, update: &SgdUpdate) {
        self.cache = None;
        self.gates.step(update);
        self.bias.step(update);
    }

    fn param_count(&self) -> usize {
        self.gates.live_blocks() * self.gates.block_size() + self.bias.len()
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gates.vecs, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gates.vecs, &mut self.bias]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn bcm(&self) -> Option<&dyn BcmLayer> {
        Some(self)
    }

    fn bcm_mut(&mut self) -> Option<&mut dyn BcmLayer> {
        Some(self)
    }

    fn snapshot(&self) -> Option<crate::layers::checkpoint::LayerSnapshot> {
        Some(crate::layers::checkpoint::LayerSnapshot::BcmLstm {
            in_features: self.in_features,
            hidden: self.hidden,
            bs: self.gates.block_size(),
            live: self.gates.skip_index(),
            vecs: self.gates.vecs.value.as_slice().to_vec(),
            bias: self.bias.value.as_slice().to_vec(),
        })
    }
}

impl BcmLayer for BcmLstm {
    fn block_size(&self) -> usize {
        self.gates.block_size()
    }

    fn block_count(&self) -> usize {
        self.gates.block_count()
    }

    fn importances(&self) -> Vec<f64> {
        self.gates.importances()
    }

    fn eliminate(&mut self, local_indices: &[usize]) {
        self.gates.eliminate(local_indices);
    }

    fn live_blocks(&self) -> usize {
        self.gates.live_blocks()
    }

    fn skip_index(&self) -> Vec<bool> {
        self.gates.skip_index()
    }

    fn folded_param_count(&self) -> usize {
        self.gates.live_blocks() * self.gates.block_size()
    }

    fn train_param_surrogate(&self) -> usize {
        self.gates.live_blocks() * self.gates.block_size() + self.bias.len()
    }

    fn dense_param_count(&self) -> usize {
        self.gates.out_features() * self.gates.in_features() + self.bias.len()
    }

    fn folded(&self) -> ConvBlockCirculant<f32> {
        ConvBlockCirculant::from_grids(1, 1, vec![self.gates.folded_grid()])
    }
}

// ---------------------------------------------------------------------
// BcmGru
// ---------------------------------------------------------------------

/// BPTT cache of one training forward.
#[derive(Debug, Clone)]
struct GruCache {
    n: usize,
    t_len: usize,
    /// Per timestep: inputs `[N, F]`.
    xts: Vec<Vec<f32>>,
    /// Per timestep: hidden state *before* the update `[N, H]`.
    h_prevs: Vec<Vec<f32>>,
    /// Per timestep: post-activation `r, z, n` values `[N, 3H]`.
    rzn: Vec<Vec<f32>>,
    /// Per timestep: `U·h + b_u` pre-activations `[N, 3H]` (only the `n`
    /// third is consumed by backward, but the buffer is cached whole).
    pre_u: Vec<Vec<f32>>,
}

/// A block-circulant GRU layer over `[N, F, T, 1] → [N, H, T, 1]`
/// (PyTorch gate convention, gate order `r, z, n`).
#[derive(Debug, Clone)]
pub struct BcmGru {
    name: String,
    in_features: usize,
    hidden: usize,
    /// `[3H, F]` input-to-gates matrix.
    w: GateStack,
    /// `[3H, H]` recurrent matrix.
    u: GateStack,
    /// `[3H]` input-side bias.
    bias_w: Param,
    /// `[3H]` recurrent-side bias.
    bias_u: Param,
    cache: Option<GruCache>,
}

impl BcmGru {
    /// Creates a block-circulant GRU cell.
    ///
    /// # Panics
    ///
    /// Panics if `in_features`, `hidden`, or `3·hidden` is not divisible
    /// by `bs`, or `bs` is not a power of two ≥ 2.
    pub fn new(rng: &mut impl Rng, in_features: usize, hidden: usize, bs: usize) -> Self {
        BcmGru {
            name: format!("bcmgru{in_features}x{hidden}bs{bs}"),
            in_features,
            hidden,
            w: GateStack::new(rng, in_features, 3 * hidden, bs),
            u: GateStack::new(rng, hidden, 3 * hidden, bs),
            bias_w: Param::new(Tensor::zeros(&[3 * hidden])),
            bias_u: Param::new(Tensor::zeros(&[3 * hidden])),
            cache: None,
        }
    }

    /// Rebuilds from checkpointed parts.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        in_features: usize,
        hidden: usize,
        bs: usize,
        w_vecs: Vec<f32>,
        w_live: &[bool],
        u_vecs: Vec<f32>,
        u_live: &[bool],
        bias_w: Vec<f32>,
        bias_u: Vec<f32>,
    ) -> Self {
        assert_eq!(bias_w.len(), 3 * hidden, "input bias length");
        assert_eq!(bias_u.len(), 3 * hidden, "recurrent bias length");
        BcmGru {
            name: format!("bcmgru{in_features}x{hidden}bs{bs}"),
            in_features,
            hidden,
            w: GateStack::from_parts(in_features, 3 * hidden, bs, w_vecs, w_live),
            u: GateStack::from_parts(hidden, 3 * hidden, bs, u_vecs, u_live),
            bias_w: Param::new(Tensor::from_vec(bias_w, &[3 * hidden])),
            bias_u: Param::new(Tensor::from_vec(bias_u, &[3 * hidden])),
            cache: None,
        }
    }

    /// `(in_features, hidden)`.
    pub fn features(&self) -> (usize, usize) {
        (self.in_features, self.hidden)
    }
}

impl Layer for BcmGru {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor<f32>, train: bool) -> Tensor<f32> {
        let (n, t_len) = seq_dims(x, self.in_features, "bcm gru");
        let (f, hd) = (self.in_features, self.hidden);
        let g3 = 3 * hd;
        let xs = x.as_slice();
        let bw = self.bias_w.value.as_slice().to_vec();
        let bu = self.bias_u.value.as_slice().to_vec();
        let mut h = vec![0.0f32; n * hd];
        let mut y = vec![0.0f32; n * hd * t_len];
        let mut cache = train.then(|| GruCache {
            n,
            t_len,
            xts: Vec::with_capacity(t_len),
            h_prevs: Vec::with_capacity(t_len),
            rzn: Vec::with_capacity(t_len),
            pre_u: Vec::with_capacity(t_len),
        });
        let wd_t = train.then(|| self.w.dense().transpose());
        let ud_t = train.then(|| self.u.dense().transpose());
        for t in 0..t_len {
            let mut xt = vec![0.0f32; n * f];
            gather_step(xs, n, f, t_len, t, &mut xt, 0);
            let mut pre_w = match &wd_t {
                Some(wt) => Tensor::from_vec(xt.clone(), &[n, f])
                    .matmul(wt)
                    .as_slice()
                    .to_vec(),
                None => self.w.grid().matmat(&xt, n),
            };
            let mut pre_u = match &ud_t {
                Some(ut) => Tensor::from_vec(h.clone(), &[n, hd])
                    .matmul(ut)
                    .as_slice()
                    .to_vec(),
                None => self.u.grid().matmat(&h, n),
            };
            let h_prev = h.clone();
            for s in 0..n {
                add_bias(row_mut(&mut pre_w, s, g3), &bw);
                add_bias(row_mut(&mut pre_u, s, g3), &bu);
                gru_cell(
                    row_mut(&mut pre_w, s, g3),
                    row_mut(&mut pre_u, s, g3),
                    row_mut(&mut h, s, hd),
                );
            }
            scatter_step(&mut y, &h, n, hd, t_len, t);
            if let Some(cache) = &mut cache {
                cache.xts.push(xt);
                cache.h_prevs.push(h_prev);
                cache.rzn.push(pre_w);
                cache.pre_u.push(pre_u);
            }
        }
        self.cache = cache;
        Tensor::from_vec(y, &[n, hd, t_len, 1])
    }

    fn backward(&mut self, grad: &Tensor<f32>) -> Tensor<f32> {
        let cache = self.cache.take().expect("backward before training forward");
        let (n, t_len) = (cache.n, cache.t_len);
        let (f, hd) = (self.in_features, self.hidden);
        let g3 = 3 * hd;
        assert_eq!(grad.dims(), &[n, hd, t_len, 1], "upstream gradient shape");
        let gs = grad.as_slice();
        let wd = self.w.dense();
        let ud = self.u.dense();
        let mut dwd = vec![0.0f32; g3 * f];
        let mut dud = vec![0.0f32; g3 * hd];
        let mut dbw = vec![0.0f32; g3];
        let mut dbu = vec![0.0f32; g3];
        let mut dx = vec![0.0f32; n * f * t_len];
        let mut dh_next = vec![0.0f32; n * hd];
        for t in (0..t_len).rev() {
            let rzn = &cache.rzn[t];
            let pre_u = &cache.pre_u[t];
            let h_prev = &cache.h_prevs[t];
            let mut dpre_w = vec![0.0f32; n * g3];
            let mut dpre_u = vec![0.0f32; n * g3];
            let mut dh_direct = vec![0.0f32; n * hd];
            for s in 0..n {
                for j in 0..hd {
                    let dh = gs[(s * hd + j) * t_len + t] + dh_next[s * hd + j];
                    let r = rzn[s * g3 + j];
                    let z = rzn[s * g3 + hd + j];
                    let nn = rzn[s * g3 + 2 * hd + j];
                    let un = pre_u[s * g3 + 2 * hd + j];
                    let hp = h_prev[s * hd + j];
                    let dz = dh * (hp - nn);
                    let dnn_hat = dh * (1.0 - z) * (1.0 - nn * nn);
                    let dr_hat = dnn_hat * un * r * (1.0 - r);
                    let dz_hat = dz * z * (1.0 - z);
                    dpre_w[s * g3 + j] = dr_hat;
                    dpre_w[s * g3 + hd + j] = dz_hat;
                    dpre_w[s * g3 + 2 * hd + j] = dnn_hat;
                    dpre_u[s * g3 + j] = dr_hat;
                    dpre_u[s * g3 + hd + j] = dz_hat;
                    dpre_u[s * g3 + 2 * hd + j] = dnn_hat * r;
                    dh_direct[s * hd + j] = dh * z;
                }
            }
            let dpw = Tensor::from_vec(dpre_w, &[n, g3]);
            let dpu = Tensor::from_vec(dpre_u, &[n, g3]);
            let xt = Tensor::from_vec(cache.xts[t].clone(), &[n, f]);
            let hp = Tensor::from_vec(h_prev.clone(), &[n, hd]);
            for (acc, &v) in dwd.iter_mut().zip(dpw.transpose().matmul(&xt).as_slice()) {
                *acc += v;
            }
            for (acc, &v) in dud.iter_mut().zip(dpu.transpose().matmul(&hp).as_slice()) {
                *acc += v;
            }
            for s in 0..n {
                for k in 0..g3 {
                    dbw[k] += dpw.as_slice()[s * g3 + k];
                    dbu[k] += dpu.as_slice()[s * g3 + k];
                }
            }
            let dxt = dpw.matmul(&wd);
            for s in 0..n {
                for j in 0..f {
                    dx[(s * f + j) * t_len + t] = dxt.as_slice()[s * f + j];
                }
            }
            let dhu = dpu.matmul(&ud);
            for (dst, (&a, &b)) in dh_next
                .iter_mut()
                .zip(dhu.as_slice().iter().zip(&dh_direct))
            {
                *dst = a + b;
            }
        }
        self.w.project_grad(&Tensor::from_vec(dwd, &[g3, f]));
        self.u.project_grad(&Tensor::from_vec(dud, &[g3, hd]));
        for (acc, &v) in self.bias_w.grad.as_mut_slice().iter_mut().zip(&dbw) {
            *acc += v;
        }
        for (acc, &v) in self.bias_u.grad.as_mut_slice().iter_mut().zip(&dbu) {
            *acc += v;
        }
        Tensor::from_vec(dx, &[n, f, t_len, 1])
    }

    fn step(&mut self, update: &SgdUpdate) {
        self.cache = None;
        self.w.step(update);
        self.u.step(update);
        self.bias_w.step(update);
        self.bias_u.step(update);
    }

    fn param_count(&self) -> usize {
        (self.w.live_blocks() + self.u.live_blocks()) * self.w.block_size()
            + self.bias_w.len()
            + self.bias_u.len()
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.w.vecs, &self.u.vecs, &self.bias_w, &self.bias_u]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.w.vecs,
            &mut self.u.vecs,
            &mut self.bias_w,
            &mut self.bias_u,
        ]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn bcm(&self) -> Option<&dyn BcmLayer> {
        Some(self)
    }

    fn bcm_mut(&mut self) -> Option<&mut dyn BcmLayer> {
        Some(self)
    }

    fn snapshot(&self) -> Option<crate::layers::checkpoint::LayerSnapshot> {
        Some(crate::layers::checkpoint::LayerSnapshot::BcmGru {
            in_features: self.in_features,
            hidden: self.hidden,
            bs: self.w.block_size(),
            w_live: self.w.skip_index(),
            w_vecs: self.w.vecs.value.as_slice().to_vec(),
            u_live: self.u.skip_index(),
            u_vecs: self.u.vecs.value.as_slice().to_vec(),
            bias_w: self.bias_w.value.as_slice().to_vec(),
            bias_u: self.bias_u.value.as_slice().to_vec(),
        })
    }
}

impl BcmLayer for BcmGru {
    fn block_size(&self) -> usize {
        self.w.block_size()
    }

    /// `w` blocks first, then `u` blocks — the stable local ordering the
    /// whole-network global index builds on.
    fn block_count(&self) -> usize {
        self.w.block_count() + self.u.block_count()
    }

    fn importances(&self) -> Vec<f64> {
        let mut v = self.w.importances();
        v.extend(self.u.importances());
        v
    }

    fn eliminate(&mut self, local_indices: &[usize]) {
        let split = self.w.block_count();
        let (w_idx, u_idx): (Vec<usize>, Vec<usize>) =
            local_indices.iter().partition(|&&i| i < split);
        let u_idx: Vec<usize> = u_idx.into_iter().map(|i| i - split).collect();
        self.w.eliminate(&w_idx);
        self.u.eliminate(&u_idx);
    }

    fn live_blocks(&self) -> usize {
        self.w.live_blocks() + self.u.live_blocks()
    }

    fn skip_index(&self) -> Vec<bool> {
        let mut v = self.w.skip_index();
        v.extend(self.u.skip_index());
        v
    }

    fn folded_param_count(&self) -> usize {
        self.live_blocks() * self.block_size()
    }

    fn train_param_surrogate(&self) -> usize {
        self.live_blocks() * self.block_size() + self.bias_w.len() + self.bias_u.len()
    }

    fn dense_param_count(&self) -> usize {
        self.w.out_features() * self.w.in_features()
            + self.u.out_features() * self.u.in_features()
            + self.bias_w.len()
            + self.bias_u.len()
    }

    /// The folded weights as a single `[3H, F+H]` grid: per gate row, the
    /// input blocks (`W`) then the recurrent blocks (`U`) — the
    /// concatenated matrix `[W U]` applied to `[x; h]`.
    fn folded(&self) -> ConvBlockCirculant<f32> {
        let (wg, ug) = (self.w.folded_grid(), self.u.folded_grid());
        let bs = self.block_size();
        let (rows, w_cols) = wg.grid_dims();
        let (_, u_cols) = ug.grid_dims();
        let mut blocks = Vec::with_capacity(rows * (w_cols + u_cols));
        for bo in 0..rows {
            for bi in 0..w_cols {
                blocks.push(wg.block(bo, bi).clone());
            }
            for bi in 0..u_cols {
                blocks.push(ug.block(bo, bi).clone());
            }
        }
        ConvBlockCirculant::from_grids(
            1,
            1,
            vec![circulant::BlockCirculant::from_blocks(
                bs,
                rows,
                w_cols + u_cols,
                blocks,
            )],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_input_gradient;
    use crate::optim::SgdUpdate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::init;

    fn update() -> SgdUpdate {
        SgdUpdate {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
        }
    }

    #[test]
    fn lstm_input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(0);
        let x: Tensor<f32> = init::gaussian(&mut rng, &[2, 8, 5, 1], 0.0, 1.0);
        let lstm = BcmLstm::new(&mut rng, 8, 8, 4);
        let check = check_input_gradient(&lstm, &x, 16);
        assert!(check.passes(2e-2), "lstm: {check:?}");
    }

    #[test]
    fn gru_input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let x: Tensor<f32> = init::gaussian(&mut rng, &[2, 8, 5, 1], 0.0, 1.0);
        let gru = BcmGru::new(&mut rng, 8, 8, 4);
        let check = check_input_gradient(&gru, &x, 16);
        assert!(check.passes(2e-2), "gru: {check:?}");
    }

    /// Central-difference check of a layer's *parameter* gradients: probes
    /// entries of every `Param` against the loss `L = Σ out`.
    fn check_param_gradients<L: Layer + Clone>(layer: &L, x: &Tensor<f32>, probe: usize) {
        let mut work = layer.clone();
        let out = work.forward(x, true);
        let _ = work.backward(&Tensor::ones(out.dims()));
        let loss = |l: &mut L| -> f64 {
            l.forward(x, true)
                .as_slice()
                .iter()
                .map(|&v| f64::from(v))
                .sum()
        };
        let eps = 1e-3f32;
        let n_params = work.params().len();
        for pi in 0..n_params {
            let len = work.params()[pi].len();
            let step = (len / probe).max(1);
            for idx in (0..len).step_by(step) {
                let analytic = f64::from(work.params()[pi].grad.as_slice()[idx]);
                let mut lp = layer.clone();
                lp.params_mut()[pi].value.as_mut_slice()[idx] += eps;
                let y1 = loss(&mut lp);
                let mut lm = layer.clone();
                lm.params_mut()[pi].value.as_mut_slice()[idx] -= eps;
                let y0 = loss(&mut lm);
                let numeric = (y1 - y0) / (2.0 * f64::from(eps));
                let abs = (analytic - numeric).abs();
                let rel = abs / analytic.abs().max(numeric.abs()).max(1e-8);
                assert!(
                    abs < 2e-2 || rel < 0.01,
                    "param {pi} idx {idx}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn lstm_parameter_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let x: Tensor<f32> = init::gaussian(&mut rng, &[2, 4, 4, 1], 0.0, 1.0);
        let lstm = BcmLstm::new(&mut rng, 4, 4, 2);
        check_param_gradients(&lstm, &x, 8);
    }

    #[test]
    fn gru_parameter_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let x: Tensor<f32> = init::gaussian(&mut rng, &[2, 4, 4, 1], 0.0, 1.0);
        let gru = BcmGru::new(&mut rng, 4, 4, 2);
        check_param_gradients(&gru, &x, 8);
    }

    #[test]
    fn eval_forward_matches_train_forward() {
        // Train mode multiplies the dense expansion; eval mode runs the
        // FFT→eMAC→IFFT spectral path. Same math, different rounding — the
        // recurrence compounds the difference, so the tolerance is looser
        // than a single layer's.
        let mut rng = StdRng::seed_from_u64(4);
        let x: Tensor<f32> = init::gaussian(&mut rng, &[3, 8, 6, 1], 0.0, 1.0);
        let mut lstm = BcmLstm::new(&mut rng, 8, 8, 4);
        let a = lstm.forward(&x, true);
        let b = lstm.forward(&x, false);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-4, "{u} vs {v}");
        }
        let mut gru = BcmGru::new(&mut rng, 8, 8, 4);
        let a = gru.forward(&x, true);
        let b = gru.forward(&x, false);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-4, "{u} vs {v}");
        }
    }

    #[test]
    fn pruned_blocks_stay_zero_through_training_steps() {
        let mut rng = StdRng::seed_from_u64(5);
        let x: Tensor<f32> = init::gaussian(&mut rng, &[2, 4, 3, 1], 0.0, 1.0);
        let mut lstm = BcmLstm::new(&mut rng, 4, 4, 2);
        let total = lstm.block_count();
        assert_eq!(total, (4 * 4 / 2) * ((4 + 4) / 2)); // 8×4 grid of 2×2 blocks
        lstm.eliminate(&[0, 5, 31]);
        assert_eq!(lstm.live_blocks(), total - 3);
        assert!(!lstm.skip_index()[0] && lstm.skip_index()[1]);
        for _ in 0..3 {
            let y = lstm.forward(&x, true);
            let _ = lstm.backward(&Tensor::ones(y.dims()));
            lstm.step(&update());
        }
        let vs = lstm.gates.vecs.value.as_slice();
        for blk in [0usize, 5, 31] {
            assert!(
                vs[blk * 2..(blk + 1) * 2].iter().all(|&v| v == 0.0),
                "pruned block {blk} drifted"
            );
        }
        assert_eq!(lstm.folded_param_count(), (total - 3) * 2);
    }

    #[test]
    fn gru_eliminate_routes_between_stacks() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut gru = BcmGru::new(&mut rng, 4, 4, 2);
        let w_blocks = gru.w.block_count(); // (12/2)×(4/2) = 12
        assert_eq!(gru.block_count(), w_blocks + gru.u.block_count());
        // One index in each stack's range.
        gru.eliminate(&[1, w_blocks + 2]);
        assert_eq!(gru.w.live_blocks(), w_blocks - 1);
        assert_eq!(gru.u.live_blocks(), gru.u.block_count() - 1);
        let skip = gru.skip_index();
        assert!(!skip[1] && !skip[w_blocks + 2]);
        assert_eq!(skip.iter().filter(|&&l| !l).count(), 2);
        // Importances of pruned blocks are zero after elimination.
        let imp = gru.importances();
        assert_eq!(imp[1], 0.0);
        assert_eq!(imp[w_blocks + 2], 0.0);
    }

    #[test]
    fn folded_grids_reproduce_the_dense_expansion() {
        // LSTM: the folded 1×1 ConvBlockCirculant's grid must multiply
        // like the dense [4H, F+H] matrix.
        let mut rng = StdRng::seed_from_u64(7);
        let mut lstm = BcmLstm::new(&mut rng, 4, 4, 2);
        lstm.eliminate(&[3]);
        let dense = lstm.gates.dense();
        let folded = BcmLayer::folded(&lstm);
        let (kh, kw) = folded.kernel_dims();
        assert_eq!((kh, kw), (1, 1));
        let z: Vec<f32> = (0..8).map(|i| 0.25 * i as f32 - 1.0).collect();
        let got = folded.grid(0, 0).matvec_naive(&z);
        let ds = dense.as_slice();
        for (o, &g) in got.iter().enumerate() {
            let want: f32 = (0..8).map(|i| ds[o * 8 + i] * z[i]).sum();
            assert!((g - want).abs() < 1e-5, "row {o}: {g} vs {want}");
        }
        // GRU: folded is [W U] over [x; h].
        let mut gru = BcmGru::new(&mut rng, 4, 4, 2);
        gru.eliminate(&[0, 13]);
        let wd = gru.w.dense();
        let ud = gru.u.dense();
        let folded = BcmLayer::folded(&gru);
        let got = folded.grid(0, 0).matvec_naive(&z);
        let (x_part, h_part) = z.split_at(4);
        for (o, &g) in got.iter().enumerate() {
            let want: f32 = (0..4)
                .map(|i| wd.as_slice()[o * 4 + i] * x_part[i])
                .sum::<f32>()
                + (0..4)
                    .map(|i| ud.as_slice()[o * 4 + i] * h_part[i])
                    .sum::<f32>();
            assert!((g - want).abs() < 1e-5, "row {o}: {g} vs {want}");
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn lstm_rejects_unaligned_hidden() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = BcmLstm::new(&mut rng, 4, 6, 4);
    }
}
