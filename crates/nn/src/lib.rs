//! A from-scratch CNN training framework with block-circulant layers.
//!
//! This crate is the training substrate the RP-BCM paper assumes: enough of
//! a deep-learning stack to *train* dense, BCM-compressed and
//! hadaBCM-compressed convolutional networks and observe the paper's
//! accuracy/compression trade-offs — implemented entirely in safe Rust on
//! the [`tensor`] crate.
//!
//! - [`layers`]: `Conv2d` (im2col), `BcmConv2d`, `HadaBcmConv2d`,
//!   `Linear`, `BatchNorm2d`, `ReLU`, `MaxPool2d`, `GlobalAvgPool`,
//!   `Flatten` — each with hand-derived backward passes.
//! - [`layers::checkpoint`]: compact `.rpbcm` binary checkpointing of
//!   deployed (hadaBCM-folded, pruned) networks via `Network::save` /
//!   `Network::load`, with bit-identical inference across the round trip.
//! - [`optim`]: SGD with momentum/weight decay and the cosine-annealing
//!   schedule the paper trains with (§V-A).
//! - [`loss`]: softmax cross-entropy.
//! - [`data`]: deterministic synthetic vision datasets standing in for
//!   CIFAR-10/100/ImageNet (see DESIGN.md's substitution table).
//! - [`models`]: scaled-down VGG-16/19 and ResNet-18 style builders with a
//!   selectable convolution mode (dense / BCM / hadaBCM).
//! - [`train`]: the training loop, evaluation, and the adapter that lets
//!   `rpbcm`'s Algorithm 1 drive fine-tuning.
//!
//! # Example
//!
//! ```no_run
//! use nn::data::SyntheticVision;
//! use nn::models::{ConvMode, vgg_tiny};
//! use nn::train::{Trainer, TrainConfig};
//!
//! let data = SyntheticVision::cifar10_like(64, 32, 7);
//! let mut net = vgg_tiny(ConvMode::HadaBcm { block_size: 8 }, data.num_classes(), 11);
//! let mut trainer = Trainer::new(TrainConfig::default());
//! let acc = trainer.fit(&mut net, &data);
//! println!("accuracy {acc}");
//! ```

// Index-based loops mirror the mathematical/hardware notation the code
// implements; iterator rewrites obscure the kernels.
#![allow(clippy::needless_range_loop)]

pub mod baselines;
pub mod data;
pub mod gradcheck;
pub mod layers;
pub mod loss;
pub mod models;
pub mod optim;
pub mod seq;
pub mod train;

pub use layers::checkpoint::{CheckpointError, CheckpointMeta};
pub use layers::{Layer, Network};
pub use models::ConvMode;
pub use train::{TrainConfig, Trainer};
