//! Softmax cross-entropy loss.

use tensor::Tensor;

/// The value and logit-gradient of softmax cross-entropy over a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// `∂loss/∂logits`, shape `[batch, classes]` (already divided by the
    /// batch size).
    pub grad: Tensor<f32>,
    /// Number of correctly-classified samples (argmax).
    pub correct: usize,
}

/// Computes mean softmax cross-entropy of `logits` (`[batch, classes]`)
/// against integer `targets`.
///
/// Numerically stabilized by max-subtraction.
///
/// # Panics
///
/// Panics if `logits` is not 2-d, `targets.len()` differs from the batch
/// size, or any target is out of range.
///
/// # Example
///
/// ```
/// use nn::loss::softmax_cross_entropy;
/// use tensor::Tensor;
///
/// // Confident, correct prediction → small loss.
/// let logits = Tensor::from_vec(vec![10.0_f32, -10.0], &[1, 2]);
/// let out = softmax_cross_entropy(&logits, &[0]);
/// assert!(out.loss < 1e-3);
/// assert_eq!(out.correct, 1);
/// ```
pub fn softmax_cross_entropy(logits: &Tensor<f32>, targets: &[usize]) -> LossOutput {
    assert_eq!(logits.shape().ndim(), 2, "logits must be [batch, classes]");
    let (n, k) = (logits.shape().dim(0), logits.shape().dim(1));
    assert_eq!(targets.len(), n, "one target per sample");
    let mut grad = Tensor::zeros(&[n, k]);
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    for i in 0..n {
        let row = &logits.as_slice()[i * k..(i + 1) * k];
        let t = targets[i];
        assert!(t < k, "target {t} out of range for {k} classes");
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let denom: f32 = exps.iter().sum();
        let log_denom = denom.ln();
        loss += f64::from(log_denom - (row[t] - max));
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(idx, _)| idx)
            .expect("non-empty row");
        if argmax == t {
            correct += 1;
        }
        let g = &mut grad.as_mut_slice()[i * k..(i + 1) * k];
        for (j, gj) in g.iter_mut().enumerate() {
            let p = exps[j] / denom;
            *gj = (p - if j == t { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    LossOutput {
        loss: (loss / n as f64) as f32,
        grad,
        correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros(&[2, 4]);
        let out = softmax_cross_entropy(&logits, &[1, 3]);
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero_per_sample() {
        let logits = Tensor::from_vec(vec![1.0_f32, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let out = softmax_cross_entropy(&logits, &[0, 2]);
        for i in 0..2 {
            let s: f32 = out.grad.as_slice()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let base = vec![0.3_f32, -0.7, 1.2];
        let targets = [2usize];
        let logits = Tensor::from_vec(base.clone(), &[1, 3]);
        let out = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3;
        for j in 0..3 {
            let mut pert = base.clone();
            pert[j] += eps;
            let lp = softmax_cross_entropy(&Tensor::from_vec(pert, &[1, 3]), &targets).loss;
            let fd = (lp - out.loss) / eps;
            assert!(
                (fd - out.grad.as_slice()[j]).abs() < 1e-2,
                "j={j}: fd={fd} vs {}",
                out.grad.as_slice()[j]
            );
        }
    }

    #[test]
    fn accuracy_counting() {
        let logits = Tensor::from_vec(vec![5.0_f32, 0.0, 0.0, 5.0], &[2, 2]);
        let out = softmax_cross_entropy(&logits, &[0, 0]);
        assert_eq!(out.correct, 1);
    }

    #[test]
    fn large_logits_are_stable() {
        let logits = Tensor::from_vec(vec![1000.0_f32, -1000.0], &[1, 2]);
        let out = softmax_cross_entropy(&logits, &[0]);
        assert!(out.loss.is_finite());
        assert!(out.grad.all_finite());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_target() {
        softmax_cross_entropy(&Tensor::zeros(&[1, 2]), &[5]);
    }
}
