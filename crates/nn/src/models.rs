//! Scaled-down VGG and ResNet builders with selectable convolution mode.
//!
//! The paper evaluates VGG-16 (CIFAR-10), VGG-19 (CIFAR-100) and
//! ResNet-18/50 (ImageNet). These builders reproduce the *architecture
//! families* at CPU-trainable scale (documented substitution, DESIGN.md
//! §2): same stage structure, pooling rhythm and residual topology, with
//! channel widths divided by 8. The `ConvMode` switch selects dense,
//! plain-BCM or hadaBCM convolutions — everything else held fixed, which is
//! exactly the controlled comparison Figs. 9b/9c make.

use crate::layers::{
    BatchNorm2d, BcmAttention, BcmConv2d, BcmGru, BcmLstm, Conv2d, GlobalAvgPool, HadaBcmConv2d,
    Layer, Linear, MaxPool2d, Network, ReLU, ResidualBlock,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How convolution layers are parameterized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvMode {
    /// Ordinary dense convolution (the paper's "Baseline").
    Dense,
    /// Traditional block-circulant compression (the paper's "BCM").
    Bcm {
        /// Block size `BS`.
        block_size: usize,
    },
    /// Hadamard-product block-circulant compression (the paper's
    /// "Ours*1" before pruning).
    HadaBcm {
        /// Block size `BS`.
        block_size: usize,
    },
}

impl ConvMode {
    /// The block size, if compressed.
    pub fn block_size(&self) -> Option<usize> {
        match *self {
            ConvMode::Dense => None,
            ConvMode::Bcm { block_size } | ConvMode::HadaBcm { block_size } => Some(block_size),
        }
    }
}

/// Builds one convolution in the requested mode, falling back to dense
/// when the channels are not divisible by the block size (first RGB layer,
/// narrow stages at large BS — same rule prior BCM accelerators use).
fn conv_in_mode(
    mode: ConvMode,
    rng: &mut impl Rng,
    c_in: usize,
    c_out: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> Box<dyn Layer> {
    match mode {
        ConvMode::Dense => Box::new(Conv2d::new(rng, c_in, c_out, k, stride, pad)),
        ConvMode::Bcm { block_size } => {
            if c_in.is_multiple_of(block_size) && c_out.is_multiple_of(block_size) {
                Box::new(BcmConv2d::new(rng, c_in, c_out, k, stride, pad, block_size))
            } else {
                Box::new(Conv2d::new(rng, c_in, c_out, k, stride, pad))
            }
        }
        ConvMode::HadaBcm { block_size } => {
            if c_in.is_multiple_of(block_size) && c_out.is_multiple_of(block_size) {
                Box::new(HadaBcmConv2d::new(
                    rng, c_in, c_out, k, stride, pad, block_size,
                ))
            } else {
                Box::new(Conv2d::new(rng, c_in, c_out, k, stride, pad))
            }
        }
    }
}

fn conv_bn_relu(
    mode: ConvMode,
    rng: &mut impl Rng,
    c_in: usize,
    c_out: usize,
) -> Vec<Box<dyn Layer>> {
    vec![
        conv_in_mode(mode, rng, c_in, c_out, 3, 1, 1),
        Box::new(BatchNorm2d::new(c_out)),
        Box::new(ReLU::new()),
    ]
}

/// VGG-16-style network for 16×16 inputs: stage widths `[32, 64, 128]`
/// with `[2, 2, 3]` convs per stage (the 13-conv CIFAR VGG-16 scaled down,
/// the last two 512-wide stages merged into one 128-wide stage of 3
/// convs). All stages are divisible by BS up to 32, so the paper's full
/// BS ∈ {8, 16, 32} sweep compresses every non-RGB layer.
pub fn vgg_tiny(mode: ConvMode, num_classes: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    let stages: &[(usize, usize)] = &[(32, 2), (64, 2), (128, 3)];
    let mut c_in = 3;
    for &(width, convs) in stages {
        for _ in 0..convs {
            layers.extend(conv_bn_relu(mode, &mut rng, c_in, width));
            c_in = width;
        }
        layers.push(Box::new(MaxPool2d::new(2)));
    }
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(Box::new(Linear::new(&mut rng, 128, num_classes)));
    Network::new("vgg-tiny", layers)
}

/// VGG-19-style network: same stages with `[2, 2, 4]` convs (the deeper
/// variant the paper pairs with CIFAR-100).
pub fn vgg19_tiny(mode: ConvMode, num_classes: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    let stages: &[(usize, usize)] = &[(32, 2), (64, 2), (128, 4)];
    let mut c_in = 3;
    for &(width, convs) in stages {
        for _ in 0..convs {
            layers.extend(conv_bn_relu(mode, &mut rng, c_in, width));
            c_in = width;
        }
        layers.push(Box::new(MaxPool2d::new(2)));
    }
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(Box::new(Linear::new(&mut rng, 128, num_classes)));
    Network::new("vgg19-tiny", layers)
}

fn basic_block(
    mode: ConvMode,
    rng: &mut impl Rng,
    name: &str,
    c_in: usize,
    c_out: usize,
    stride: usize,
) -> Box<dyn Layer> {
    let main: Vec<Box<dyn Layer>> = vec![
        conv_in_mode(mode, rng, c_in, c_out, 3, stride, 1),
        Box::new(BatchNorm2d::new(c_out)),
        Box::new(ReLU::new()),
        conv_in_mode(mode, rng, c_out, c_out, 3, 1, 1),
        Box::new(BatchNorm2d::new(c_out)),
    ];
    let shortcut: Option<Vec<Box<dyn Layer>>> = if stride != 1 || c_in != c_out {
        Some(vec![
            conv_in_mode(mode, rng, c_in, c_out, 1, stride, 0),
            Box::new(BatchNorm2d::new(c_out)),
        ])
    } else {
        None
    };
    Box::new(ResidualBlock::new(name, main, shortcut))
}

fn bottleneck_block(
    mode: ConvMode,
    rng: &mut impl Rng,
    name: &str,
    c_in: usize,
    mid: usize,
    c_out: usize,
    stride: usize,
) -> Box<dyn Layer> {
    let main: Vec<Box<dyn Layer>> = vec![
        conv_in_mode(mode, rng, c_in, mid, 1, 1, 0),
        Box::new(BatchNorm2d::new(mid)),
        Box::new(ReLU::new()),
        conv_in_mode(mode, rng, mid, mid, 3, stride, 1),
        Box::new(BatchNorm2d::new(mid)),
        Box::new(ReLU::new()),
        conv_in_mode(mode, rng, mid, c_out, 1, 1, 0),
        Box::new(BatchNorm2d::new(c_out)),
    ];
    let shortcut: Option<Vec<Box<dyn Layer>>> = if stride != 1 || c_in != c_out {
        Some(vec![
            conv_in_mode(mode, rng, c_in, c_out, 1, stride, 0),
            Box::new(BatchNorm2d::new(c_out)),
        ])
    } else {
        None
    };
    Box::new(ResidualBlock::new(name, main, shortcut))
}

/// ResNet-50-style network with *bottleneck* residual blocks (1×1 → 3×3 →
/// 1×1 with 4× expansion), ResNet-50's `[3, 4, 6, 3]` topology scaled to
/// widths `[16, 32, 32, 64]`·(mid) for CPU training — the architecture
/// family of the paper's Table I headline result.
pub fn resnet50_tiny(mode: ConvMode, num_classes: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(&mut rng, 3, 16, 3, 1, 1)),
        Box::new(BatchNorm2d::new(16)),
        Box::new(ReLU::new()),
    ];
    // (mid, out, blocks, stride of first block)
    let stages: &[(usize, usize, usize, usize)] = &[
        (16, 64, 3, 1),
        (32, 128, 4, 2),
        (32, 128, 6, 1),
        (64, 256, 3, 2),
    ];
    let mut c_in = 16;
    for (si, &(mid, out, blocks, stride)) in stages.iter().enumerate() {
        for b in 0..blocks {
            let s = if b == 0 { stride } else { 1 };
            layers.push(bottleneck_block(
                mode,
                &mut rng,
                &format!("layer{}_{b}", si + 1),
                c_in,
                mid,
                out,
                s,
            ));
            c_in = out;
        }
    }
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(Box::new(Linear::new(&mut rng, 256, num_classes)));
    Network::new("resnet50-tiny", layers)
}

/// ResNet-18-style network for 16×16–32×32 inputs: a 3×3 stem then four
/// stages of two basic blocks at widths `[16, 32, 64, 64]` (ResNet-18's
/// `[2,2,2,2]` topology with widths scaled for CPU training).
pub fn resnet18_tiny(mode: ConvMode, num_classes: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut layers: Vec<Box<dyn Layer>> = vec![
        // Stem stays dense like ImageNet ResNet's conv1 (RGB input).
        Box::new(Conv2d::new(&mut rng, 3, 16, 3, 1, 1)),
        Box::new(BatchNorm2d::new(16)),
        Box::new(ReLU::new()),
    ];
    let stages: &[(usize, usize)] = &[(16, 1), (32, 2), (64, 2), (64, 1)];
    let mut c_in = 16;
    for (si, &(width, stride)) in stages.iter().enumerate() {
        for b in 0..2 {
            let s = if b == 0 { stride } else { 1 };
            layers.push(basic_block(
                mode,
                &mut rng,
                &format!("layer{}_{b}", si + 1),
                c_in,
                width,
                s,
            ));
            c_in = width;
        }
    }
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(Box::new(Linear::new(&mut rng, 64, num_classes)));
    Network::new("resnet18-tiny", layers)
}

/// Sequence classifier in the C-LSTM mold: one [`BcmLstm`] cell over
/// `[N, F, T, 1]`, mean-pooled hidden states, dense head. The whole stack
/// streams through `seq::SeqRunner` (GAP is the per-step identity), so a
/// trained instance serves over stateful sessions bit-identically to its
/// offline forward.
///
/// # Panics
///
/// Panics if `in_features` or `hidden` is not divisible by `bs`.
pub fn lstm_classifier(
    in_features: usize,
    hidden: usize,
    num_classes: usize,
    bs: usize,
    seed: u64,
) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    Network::new(
        "bcm-lstm",
        vec![
            Box::new(BcmLstm::new(&mut rng, in_features, hidden, bs)),
            Box::new(GlobalAvgPool::new()),
            Box::new(Linear::new(&mut rng, hidden, num_classes)),
        ],
    )
}

/// Sequence classifier in the E-RNN mold: one [`BcmGru`] cell, mean-pooled
/// hidden states, dense head. Streams like [`lstm_classifier`].
///
/// # Panics
///
/// Panics if `in_features` or `hidden` is not divisible by `bs`.
pub fn gru_classifier(
    in_features: usize,
    hidden: usize,
    num_classes: usize,
    bs: usize,
    seed: u64,
) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    Network::new(
        "bcm-gru",
        vec![
            Box::new(BcmGru::new(&mut rng, in_features, hidden, bs)),
            Box::new(GlobalAvgPool::new()),
            Box::new(Linear::new(&mut rng, hidden, num_classes)),
        ],
    )
}

/// Sequence classifier with a BCM-projected attention layer over the LSTM
/// hidden states. Attention is non-causal (every step attends to the whole
/// sequence), so this stack trains and evaluates offline only — it has no
/// streaming form and `seq::SeqRunner` rejects it.
///
/// # Panics
///
/// Panics if `in_features` or `hidden` is not divisible by `bs`.
pub fn attn_lstm_classifier(
    in_features: usize,
    hidden: usize,
    num_classes: usize,
    bs: usize,
    seed: u64,
) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    Network::new(
        "bcm-attn-lstm",
        vec![
            Box::new(BcmLstm::new(&mut rng, in_features, hidden, bs)),
            Box::new(BcmAttention::new(&mut rng, hidden, bs)),
            Box::new(GlobalAvgPool::new()),
            Box::new(Linear::new(&mut rng, hidden, num_classes)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Tensor;

    #[test]
    fn vgg_tiny_shapes_and_modes() {
        for mode in [
            ConvMode::Dense,
            ConvMode::Bcm { block_size: 8 },
            ConvMode::HadaBcm { block_size: 8 },
        ] {
            let mut net = vgg_tiny(mode, 10, 1);
            let x = Tensor::<f32>::ones(&[2, 3, 16, 16]);
            let y = net.forward(&x, true);
            assert_eq!(y.dims(), &[2, 10], "{mode:?}");
            let g = net.backward(&Tensor::ones(&[2, 10]));
            assert_eq!(g.dims(), &[2, 3, 16, 16]);
        }
    }

    #[test]
    fn bcm_mode_reduces_conv_params() {
        let dense = vgg_tiny(ConvMode::Dense, 10, 1);
        let bcm = vgg_tiny(ConvMode::Bcm { block_size: 8 }, 10, 1);
        let hada = vgg_tiny(ConvMode::HadaBcm { block_size: 8 }, 10, 1);
        assert!(bcm.param_count() < dense.param_count() / 3);
        // hadaBCM trains 2x the BCM params but folds to the same count.
        assert!(hada.param_count() > bcm.param_count());
        assert_eq!(hada.folded_param_count(), bcm.folded_param_count());
        assert_eq!(hada.dense_equiv_param_count(), dense.param_count());
    }

    #[test]
    fn bcm_block_counts_scale_with_bs() {
        let b8 = vgg_tiny(ConvMode::Bcm { block_size: 8 }, 10, 1);
        let b16 = vgg_tiny(ConvMode::Bcm { block_size: 16 }, 10, 1);
        assert!(b8.bcm_block_count() > b16.bcm_block_count());
        assert!(b16.bcm_block_count() > 0);
    }

    #[test]
    fn resnet_tiny_forward_backward_all_modes() {
        for mode in [ConvMode::Dense, ConvMode::HadaBcm { block_size: 8 }] {
            let mut net = resnet18_tiny(mode, 10, 2);
            let x = Tensor::<f32>::ones(&[1, 3, 16, 16]);
            let y = net.forward(&x, true);
            assert_eq!(y.dims(), &[1, 10]);
            let g = net.backward(&Tensor::ones(&[1, 10]));
            assert_eq!(g.dims(), &[1, 3, 16, 16]);
        }
    }

    #[test]
    fn resnet_tiny_exposes_nested_bcm_layers() {
        let net = resnet18_tiny(ConvMode::Bcm { block_size: 8 }, 10, 3);
        // Residual blocks must surface their BCM convs.
        assert!(net.bcm_block_count() > 0);
        assert_eq!(net.bcm_importances().len(), net.bcm_block_count());
    }

    #[test]
    fn resnet50_tiny_bottlenecks_work_in_all_modes() {
        for mode in [ConvMode::Dense, ConvMode::Bcm { block_size: 8 }] {
            let mut net = resnet50_tiny(mode, 10, 5);
            let x = Tensor::<f32>::ones(&[1, 3, 16, 16]);
            let y = net.forward(&x, true);
            assert_eq!(y.dims(), &[1, 10], "{mode:?}");
            let g = net.backward(&Tensor::ones(&[1, 10]));
            assert_eq!(g.dims(), &[1, 3, 16, 16]);
        }
        // The bottleneck 1x1 convs are BCM-compressed too.
        let net = resnet50_tiny(ConvMode::Bcm { block_size: 8 }, 10, 5);
        assert!(net.bcm_block_count() > 100);
        // ResNet-50-tiny is deeper than ResNet-18-tiny.
        let r18 = resnet18_tiny(ConvMode::Dense, 10, 5);
        assert!(resnet50_tiny(ConvMode::Dense, 10, 5).param_count() > r18.param_count());
    }

    #[test]
    fn vgg19_is_deeper_than_vgg16() {
        let v16 = vgg_tiny(ConvMode::Dense, 10, 1);
        let v19 = vgg19_tiny(ConvMode::Dense, 10, 1);
        assert!(v19.param_count() > v16.param_count());
    }

    #[test]
    fn first_conv_stays_dense_under_bcm() {
        let net = vgg_tiny(ConvMode::Bcm { block_size: 8 }, 10, 1);
        // First layer has c_in = 3 → dense, so it exposes no BCM surface.
        assert!(net.layers()[0].bcm().is_none());
        // Later conv layers do.
        assert!(net.layers()[3].bcm().is_some());
    }
}
