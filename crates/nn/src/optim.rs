//! Optimizers and learning-rate schedules.
//!
//! The paper trains with "a SGD optimizer and a cosine annealing scheduler"
//! (§V-A); both live here.

/// The per-step update parameters handed to every layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdUpdate {
    /// Learning rate for this step.
    pub lr: f32,
    /// Momentum coefficient μ.
    pub momentum: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
}

/// SGD configuration with a cosine-annealed learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sgd {
    /// Initial (maximum) learning rate.
    pub lr_max: f32,
    /// Final (minimum) learning rate of the cosine schedule.
    pub lr_min: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Total steps over which the cosine anneals.
    pub total_steps: usize,
}

impl Default for Sgd {
    fn default() -> Self {
        Sgd {
            lr_max: 0.05,
            lr_min: 1e-4,
            momentum: 0.9,
            weight_decay: 5e-4,
            total_steps: 1000,
        }
    }
}

impl Sgd {
    /// Cosine-annealed learning rate at `step`
    /// (`lr_min + ½(lr_max−lr_min)(1+cos(π·t/T))`); clamps past the end.
    pub fn lr_at(&self, step: usize) -> f32 {
        if self.total_steps == 0 {
            return self.lr_min;
        }
        let t = (step.min(self.total_steps)) as f32 / self.total_steps as f32;
        self.lr_min + 0.5 * (self.lr_max - self.lr_min) * (1.0 + (std::f32::consts::PI * t).cos())
    }

    /// The update to hand to layers at `step`.
    pub fn update_at(&self, step: usize) -> SgdUpdate {
        SgdUpdate {
            lr: self.lr_at(step),
            momentum: self.momentum,
            weight_decay: self.weight_decay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_anneals_from_max_to_min() {
        let s = Sgd {
            lr_max: 1.0,
            lr_min: 0.0,
            total_steps: 100,
            ..Sgd::default()
        };
        assert!((s.lr_at(0) - 1.0).abs() < 1e-6);
        assert!((s.lr_at(50) - 0.5).abs() < 1e-6);
        assert!(s.lr_at(100) < 1e-6);
        // Past the horizon it stays clamped.
        assert!(s.lr_at(500) < 1e-6);
        // Monotone non-increasing.
        let mut prev = f32::INFINITY;
        for step in 0..=100 {
            let lr = s.lr_at(step);
            assert!(lr <= prev + 1e-7);
            prev = lr;
        }
    }

    #[test]
    fn zero_total_steps_is_safe() {
        let s = Sgd {
            total_steps: 0,
            lr_min: 0.01,
            ..Sgd::default()
        };
        assert_eq!(s.lr_at(3), 0.01);
    }

    #[test]
    fn update_carries_hyperparams() {
        let s = Sgd::default();
        let u = s.update_at(0);
        assert_eq!(u.momentum, s.momentum);
        assert_eq!(u.weight_decay, s.weight_decay);
        assert!((u.lr - s.lr_max).abs() < 1e-6);
    }
}
