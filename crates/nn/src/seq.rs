//! Sequence-model runtime: shared recurrent cell math and a per-step
//! streaming stepper.
//!
//! The BCM-compressed recurrent layers ([`crate::layers::BcmLstm`],
//! [`crate::layers::BcmGru`]) and the serving tier's streaming sessions
//! must produce **bit-identical** hidden states for the same weights —
//! a full-sequence eval forward and a step-at-a-time [`SeqRunner`] replay
//! the exact same arithmetic. That property rests on two pillars:
//!
//! 1. `BlockCirculant::matmat` is documented (and tested) to be
//!    per-sample bit-identical to `matvec`, so the batched layer forward
//!    and the single-sample stepper share the spectral kernel exactly.
//! 2. Everything after the matvec — bias addition and the nonlinear cell
//!    update — goes through the free functions in this module
//!    ([`add_bias`], [`lstm_cell`], [`gru_cell`]), in the same order on
//!    both paths.
//!
//! [`SeqRunner`] is the float stepper the serving tier pins per session:
//! it is built once from a network (or checkpoint), holds the hidden
//! state server-side, and advances one timestep per `session_step`.

use crate::layers::checkpoint::LayerSnapshot;
use crate::layers::Network;
use circulant::{BlockCirculant, CirculantMatrix};

/// Logistic sigmoid — the gate nonlinearity of both cells.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Adds a bias vector to gate pre-activations, in index order (both the
/// batched layer forward and the stepper must add bias through this
/// function so the f32 rounding matches bit for bit).
#[inline]
pub fn add_bias(pre: &mut [f32], bias: &[f32]) {
    debug_assert_eq!(pre.len(), bias.len());
    for (p, &b) in pre.iter_mut().zip(bias) {
        *p += b;
    }
}

/// One LSTM cell update.
///
/// `pre` holds the `4H` gate pre-activations in `i, f, g, o` order
/// (already including bias); `h`/`c` are the `H`-element previous hidden
/// and cell states, updated in place. On return `pre` holds the
/// post-activation gate values (the training path caches them for
/// backprop).
pub fn lstm_cell(pre: &mut [f32], h: &mut [f32], c: &mut [f32]) {
    let hd = h.len();
    debug_assert_eq!(pre.len(), 4 * hd);
    debug_assert_eq!(c.len(), hd);
    for j in 0..hd {
        let i = sigmoid(pre[j]);
        let f = sigmoid(pre[hd + j]);
        let g = pre[2 * hd + j].tanh();
        let o = sigmoid(pre[3 * hd + j]);
        let cj = f * c[j] + i * g;
        let tc = cj.tanh();
        c[j] = cj;
        h[j] = o * tc;
        pre[j] = i;
        pre[hd + j] = f;
        pre[2 * hd + j] = g;
        pre[3 * hd + j] = o;
    }
}

/// One GRU cell update (PyTorch gate convention, `r, z, n` order).
///
/// `pre_w` holds `W·x + b_w` and `pre_u` holds `U·h + b_u`, both `3H`.
/// `h` is updated in place:
/// `r = σ(w_r + u_r)`, `z = σ(w_z + u_z)`, `n = tanh(w_n + r⊙u_n)`,
/// `h ← (1−z)⊙n + z⊙h`. On return `pre_w` holds the post-activation
/// `r, z, n` values; `pre_u`'s `n` third is left as the `u_n`
/// pre-activation (backprop needs it).
pub fn gru_cell(pre_w: &mut [f32], pre_u: &mut [f32], h: &mut [f32]) {
    let hd = h.len();
    debug_assert_eq!(pre_w.len(), 3 * hd);
    debug_assert_eq!(pre_u.len(), 3 * hd);
    for j in 0..hd {
        let r = sigmoid(pre_w[j] + pre_u[j]);
        let z = sigmoid(pre_w[hd + j] + pre_u[hd + j]);
        let n = (pre_w[2 * hd + j] + r * pre_u[2 * hd + j]).tanh();
        h[j] = (1.0 - z) * n + z * h[j];
        pre_w[j] = r;
        pre_w[hd + j] = z;
        pre_w[2 * hd + j] = n;
    }
}

/// Rebuilds a spectra-prepared [`BlockCirculant`] grid from checkpointed
/// defining vectors (full layout, zeros at pruned blocks) and a skip
/// index.
pub(crate) fn grid_from_vecs(
    bs: usize,
    out_blocks: usize,
    in_blocks: usize,
    vecs: &[f32],
    live: &[bool],
) -> BlockCirculant<f32> {
    assert_eq!(live.len(), out_blocks * in_blocks, "skip index length");
    assert_eq!(vecs.len(), live.len() * bs, "defining vectors");
    let blocks = live
        .iter()
        .enumerate()
        .map(|(blk, &l)| {
            if l {
                CirculantMatrix::new(vecs[blk * bs..(blk + 1) * bs].to_vec())
            } else {
                CirculantMatrix::zeros(bs)
            }
        })
        .collect();
    let grid = BlockCirculant::from_blocks(bs, out_blocks, in_blocks, blocks);
    grid.prepare_spectra();
    grid
}

/// Why a network cannot be driven as a streaming sequence model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqError {
    /// A layer in the stack has no per-step streaming semantics.
    Unsupported(String),
    /// The stack contains no recurrent cell at all.
    NoRecurrentLayer,
}

impl std::fmt::Display for SeqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeqError::Unsupported(what) => {
                write!(f, "layer has no streaming semantics: {what}")
            }
            SeqError::NoRecurrentLayer => write!(f, "network has no recurrent layer"),
        }
    }
}

impl std::error::Error for SeqError {}

/// One recurrent cell of a [`SeqRunner`], with its server-side state.
#[derive(Debug, Clone)]
enum Cell {
    /// LSTM over the concatenated `[x; h]` input.
    Lstm {
        /// `[4H, F+H]` gate grid.
        grid: BlockCirculant<f32>,
        bias: Vec<f32>,
        in_features: usize,
        hidden: usize,
        h: Vec<f32>,
        c: Vec<f32>,
    },
    /// GRU with separate input/recurrent grids.
    Gru {
        /// `[3H, F]` input grid.
        w: BlockCirculant<f32>,
        /// `[3H, H]` recurrent grid.
        u: BlockCirculant<f32>,
        bias_w: Vec<f32>,
        bias_u: Vec<f32>,
        in_features: usize,
        hidden: usize,
        h: Vec<f32>,
    },
}

impl Cell {
    fn in_features(&self) -> usize {
        match self {
            Cell::Lstm { in_features, .. } | Cell::Gru { in_features, .. } => *in_features,
        }
    }

    fn hidden(&self) -> usize {
        match self {
            Cell::Lstm { hidden, .. } | Cell::Gru { hidden, .. } => *hidden,
        }
    }

    fn reset(&mut self) {
        match self {
            Cell::Lstm { h, c, .. } => {
                h.iter_mut().for_each(|v| *v = 0.0);
                c.iter_mut().for_each(|v| *v = 0.0);
            }
            Cell::Gru { h, .. } => h.iter_mut().for_each(|v| *v = 0.0),
        }
    }

    /// Advances one timestep; returns the new hidden state.
    fn step(&mut self, x: &[f32]) -> Vec<f32> {
        match self {
            Cell::Lstm {
                grid,
                bias,
                in_features,
                h,
                c,
                ..
            } => {
                debug_assert_eq!(x.len(), *in_features);
                let mut z = Vec::with_capacity(x.len() + h.len());
                z.extend_from_slice(x);
                z.extend_from_slice(h);
                let mut pre = grid.matvec(&z);
                add_bias(&mut pre, bias);
                lstm_cell(&mut pre, h, c);
                h.clone()
            }
            Cell::Gru {
                w,
                u,
                bias_w,
                bias_u,
                in_features,
                h,
                ..
            } => {
                debug_assert_eq!(x.len(), *in_features);
                let mut pre_w = w.matvec(x);
                add_bias(&mut pre_w, bias_w);
                let mut pre_u = u.matvec(h);
                add_bias(&mut pre_u, bias_u);
                gru_cell(&mut pre_w, &mut pre_u, h);
                h.clone()
            }
        }
    }
}

/// The per-step classifier head (a dense `Linear` applied to the last
/// cell's hidden state each step).
#[derive(Debug, Clone)]
struct Head {
    /// Flat `[out, in]`.
    w: Vec<f32>,
    bias: Vec<f32>,
    in_features: usize,
    out_features: usize,
}

impl Head {
    /// `y[o] = Σ_j w[o][j]·h[j] + b[o]`, ascending `j` — the same
    /// accumulation order as `Tensor::matmul`, so the per-step head output
    /// is bit-identical to the offline `Linear` forward.
    fn apply(&self, h: &[f32]) -> Vec<f32> {
        debug_assert_eq!(h.len(), self.in_features);
        let mut y = vec![0.0f32; self.out_features];
        for (o, out) in y.iter_mut().enumerate() {
            let row = &self.w[o * self.in_features..(o + 1) * self.in_features];
            let mut acc = 0.0f32;
            for (&wv, &hv) in row.iter().zip(h) {
                acc += wv * hv;
            }
            *out = acc + self.bias[o];
        }
        y
    }
}

/// A step-at-a-time evaluator of a recurrent checkpoint: the streaming
/// form the serving tier pins per session.
///
/// Supported stacks: one or more [`crate::layers::BcmLstm`] /
/// [`crate::layers::BcmGru`] cells, optionally followed by
/// `GlobalAvgPool` and a final dense `Linear` head. Per step, the head is
/// applied directly to the last cell's hidden state — `GlobalAvgPool`
/// over a single timestep is the identity, so the per-step outputs of a
/// streamed session equal the per-step head outputs of the offline
/// full-sequence forward, bit for bit (the `BcmAttention` layer is
/// non-causal and therefore has no streaming form; stacks containing it
/// are rejected).
#[derive(Debug, Clone)]
pub struct SeqRunner {
    cells: Vec<Cell>,
    head: Option<Head>,
    steps: u64,
}

impl SeqRunner {
    /// Builds a runner from a network's layer snapshots.
    ///
    /// # Errors
    ///
    /// [`SeqError::Unsupported`] for layers without streaming semantics
    /// (including any layer that cannot snapshot), and
    /// [`SeqError::NoRecurrentLayer`] when the stack has no cell.
    pub fn from_network(net: &Network) -> Result<Self, SeqError> {
        let mut cells = Vec::new();
        let mut head = None;
        for layer in net.layers() {
            let snap = layer
                .snapshot()
                .ok_or_else(|| SeqError::Unsupported(layer.name().to_string()))?;
            if head.is_some() {
                return Err(SeqError::Unsupported(
                    "layers after the Linear head".to_string(),
                ));
            }
            match snap {
                LayerSnapshot::BcmLstm {
                    in_features,
                    hidden,
                    bs,
                    live,
                    vecs,
                    bias,
                } => {
                    let grid = grid_from_vecs(
                        bs,
                        4 * hidden / bs,
                        (in_features + hidden) / bs,
                        &vecs,
                        &live,
                    );
                    cells.push(Cell::Lstm {
                        grid,
                        bias,
                        in_features,
                        hidden,
                        h: vec![0.0; hidden],
                        c: vec![0.0; hidden],
                    });
                }
                LayerSnapshot::BcmGru {
                    in_features,
                    hidden,
                    bs,
                    w_live,
                    w_vecs,
                    u_live,
                    u_vecs,
                    bias_w,
                    bias_u,
                } => {
                    let w = grid_from_vecs(bs, 3 * hidden / bs, in_features / bs, &w_vecs, &w_live);
                    let u = grid_from_vecs(bs, 3 * hidden / bs, hidden / bs, &u_vecs, &u_live);
                    cells.push(Cell::Gru {
                        w,
                        u,
                        bias_w,
                        bias_u,
                        in_features,
                        hidden,
                        h: vec![0.0; hidden],
                    });
                }
                // Identity per step: pooling one timestep averages one value.
                LayerSnapshot::GlobalAvgPool => {}
                LayerSnapshot::Linear {
                    in_features,
                    out_features,
                    weight,
                    bias,
                } => {
                    if cells.is_empty() {
                        return Err(SeqError::NoRecurrentLayer);
                    }
                    head = Some(Head {
                        w: weight,
                        bias,
                        in_features,
                        out_features,
                    });
                }
                other => {
                    return Err(SeqError::Unsupported(format!("{other:?}")));
                }
            }
        }
        if cells.is_empty() {
            return Err(SeqError::NoRecurrentLayer);
        }
        // Shape-check the chain once so a malformed checkpoint fails at
        // session open, not mid-stream.
        for pair in cells.windows(2) {
            if pair[1].in_features() != pair[0].hidden() {
                return Err(SeqError::Unsupported(format!(
                    "cell chain mismatch: {} -> {}",
                    pair[0].hidden(),
                    pair[1].in_features()
                )));
            }
        }
        if let Some(h) = &head {
            let last = cells.last().expect("non-empty").hidden();
            if h.in_features != last {
                return Err(SeqError::Unsupported(format!(
                    "head expects {} features, last cell yields {last}",
                    h.in_features
                )));
            }
        }
        Ok(SeqRunner {
            cells,
            head,
            steps: 0,
        })
    }

    /// Per-step input width.
    pub fn input_len(&self) -> usize {
        self.cells[0].in_features()
    }

    /// Per-step output width (head outputs, or the last hidden size).
    pub fn output_len(&self) -> usize {
        match &self.head {
            Some(h) => h.out_features,
            None => self.cells.last().expect("non-empty").hidden(),
        }
    }

    /// Steps taken since construction or the last [`SeqRunner::reset`].
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Zeroes all hidden state, starting a fresh sequence.
    pub fn reset(&mut self) {
        for c in &mut self.cells {
            c.reset();
        }
        self.steps = 0;
    }

    /// Advances one timestep and returns the per-step output.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_len()` (the serving tier validates
    /// lengths before stepping).
    pub fn step(&mut self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.input_len(), "step input length");
        let mut cur = x.to_vec();
        for cell in &mut self.cells {
            cur = cell.step(&cur);
        }
        self.steps += 1;
        match &self.head {
            Some(h) => h.apply(&cur),
            None => cur,
        }
    }
}

/// Lane-batched stepping over independent [`SeqRunner`]s of the **same
/// model**: one frequency-domain pass over the shared gate grids advances
/// every member a timestep, the software analogue of C-LSTM's FPGA trick
/// of streaming independent recurrent sequences through one block-circulant
/// FFT pipeline.
///
/// Gate matvecs route through [`BlockCirculant::matvec_lanes`] (sample
/// dimension innermost over the split spectral planes); everything
/// non-linear — `add_bias`, [`lstm_cell`], [`gru_cell`], the head — runs
/// per lane with the exact scalar code, so **every member's output and
/// hidden state is bit-identical to what its own [`SeqRunner::step`] would
/// have produced**, regardless of gang width or gang-mates. The serving
/// tier's session gang scheduler depends on this: a session can be pulled
/// out of a gang back to scalar stepping (or re-ganged with different
/// mates) at any step boundary with no observable difference on the wire.
///
/// Members must all be runners of the same checkpoint (the shard groups
/// sessions by registry entry before forming a gang); the gang steps
/// through member 0's grids, which are clones of the same template.
pub struct SeqRunnerBatch;

impl SeqRunnerBatch {
    /// Advances every member one timestep; returns one per-step output per
    /// member, in member order.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != members.len()`, if any input length differs
    /// from its member's [`SeqRunner::input_len`], or if members disagree
    /// on stack shape (cell count, kinds, widths).
    pub fn step(members: &mut [&mut SeqRunner], xs: &[&[f32]]) -> Vec<Vec<f32>> {
        let n = members.len();
        assert_eq!(xs.len(), n, "one input per gang member");
        if n == 0 {
            return Vec::new();
        }
        let n_cells = members[0].cells.len();
        for (m, x) in members.iter().zip(xs) {
            assert_eq!(
                m.cells.len(),
                n_cells,
                "gang members must share a stack shape"
            );
            assert_eq!(x.len(), m.input_len(), "step input length");
        }
        let mut curs: Vec<Vec<f32>> = xs.iter().map(|x| x.to_vec()).collect();
        for ci in 0..n_cells {
            match &members[0].cells[ci] {
                Cell::Lstm { .. } => {
                    // Concatenate each lane's [x; h] under a shared borrow,
                    // run the lane matvec off member 0's grid, then finish
                    // the gates per lane with the scalar cell code.
                    let zs: Vec<Vec<f32>> = members
                        .iter()
                        .zip(&curs)
                        .map(|(m, cur)| {
                            let Cell::Lstm { h, .. } = &m.cells[ci] else {
                                panic!("gang members must agree on cell kinds");
                            };
                            let mut z = Vec::with_capacity(cur.len() + h.len());
                            z.extend_from_slice(cur);
                            z.extend_from_slice(h);
                            z
                        })
                        .collect();
                    let z_refs: Vec<&[f32]> = zs.iter().map(|z| z.as_slice()).collect();
                    let pres = {
                        let Cell::Lstm { grid, .. } = &members[0].cells[ci] else {
                            unreachable!()
                        };
                        grid.matvec_lanes(&z_refs)
                    };
                    for (s, mut pre) in pres.into_iter().enumerate() {
                        let Cell::Lstm { bias, h, c, .. } = &mut members[s].cells[ci] else {
                            unreachable!()
                        };
                        add_bias(&mut pre, bias);
                        lstm_cell(&mut pre, h, c);
                        curs[s] = h.clone();
                    }
                }
                Cell::Gru { .. } => {
                    let x_refs: Vec<&[f32]> = curs.iter().map(|c| c.as_slice()).collect();
                    let h_refs: Vec<&[f32]> = members
                        .iter()
                        .map(|m| {
                            let Cell::Gru { h, .. } = &m.cells[ci] else {
                                panic!("gang members must agree on cell kinds");
                            };
                            h.as_slice()
                        })
                        .collect();
                    let (pre_ws, pre_us) = {
                        let Cell::Gru { w, u, .. } = &members[0].cells[ci] else {
                            unreachable!()
                        };
                        (w.matvec_lanes(&x_refs), u.matvec_lanes(&h_refs))
                    };
                    for (s, (mut pre_w, mut pre_u)) in pre_ws.into_iter().zip(pre_us).enumerate() {
                        let Cell::Gru {
                            bias_w, bias_u, h, ..
                        } = &mut members[s].cells[ci]
                        else {
                            unreachable!()
                        };
                        add_bias(&mut pre_w, bias_w);
                        add_bias(&mut pre_u, bias_u);
                        gru_cell(&mut pre_w, &mut pre_u, h);
                        curs[s] = h.clone();
                    }
                }
            }
        }
        members
            .iter_mut()
            .zip(curs)
            .map(|(m, cur)| {
                m.steps += 1;
                match &m.head {
                    Some(head) => head.apply(&cur),
                    None => cur,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BcmGru, BcmLstm, GlobalAvgPool, Layer, Linear};
    use crate::models::{
        attn_lstm_classifier, gru_classifier, lstm_classifier, vgg_tiny, ConvMode,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::{init, Tensor};

    /// Offline reference: run the recurrent stack's eval forward over the
    /// full sequence, then apply the final `Linear` layer to each
    /// timestep's last-cell hidden state through its own `forward` — the
    /// exact arithmetic a batched deployment would run.
    fn offline_per_step(net: &Network, x: &Tensor<f32>) -> Vec<Vec<f32>> {
        let mut cur = x.clone();
        let mut layers: Vec<Box<dyn Layer>> = net.layers().to_vec();
        let t_len = x.dims()[2];
        for layer in &mut layers {
            match layer.snapshot() {
                Some(LayerSnapshot::BcmLstm { .. }) | Some(LayerSnapshot::BcmGru { .. }) => {
                    cur = layer.forward(&cur, false);
                }
                _ => {}
            }
        }
        let hd = cur.dims()[1];
        let head_idx = layers
            .iter()
            .position(|l| matches!(l.snapshot(), Some(LayerSnapshot::Linear { .. })));
        (0..t_len)
            .map(|t| {
                let hs = cur.as_slice();
                let h: Vec<f32> = (0..hd).map(|j| hs[j * t_len + t]).collect();
                match head_idx {
                    Some(i) => layers[i]
                        .forward(&Tensor::from_vec(h, &[1, hd]), false)
                        .as_slice()
                        .to_vec(),
                    None => h,
                }
            })
            .collect()
    }

    fn assert_streaming_matches(net: &Network, seed: u64) {
        let mut runner = SeqRunner::from_network(net).expect("streamable");
        let mut rng = StdRng::seed_from_u64(seed);
        let (f, t_len) = (runner.input_len(), 7);
        let x: Tensor<f32> = init::gaussian(&mut rng, &[1, f, t_len, 1], 0.0, 1.0);
        let want = offline_per_step(net, &x);
        let xs = x.as_slice();
        for (t, want_t) in want.iter().enumerate() {
            let step_in: Vec<f32> = (0..f).map(|j| xs[j * t_len + t]).collect();
            let got = runner.step(&step_in);
            assert_eq!(got.len(), runner.output_len());
            for (a, b) in got.iter().zip(want_t) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "step {t}: streamed {a} vs offline {b}"
                );
            }
        }
        assert_eq!(runner.steps(), t_len as u64);
    }

    #[test]
    fn lstm_streaming_is_bit_identical_to_offline_forward() {
        let net = lstm_classifier(6, 8, 4, 2, 11);
        assert_streaming_matches(&net, 0);
    }

    #[test]
    fn gru_streaming_is_bit_identical_to_offline_forward() {
        let net = gru_classifier(6, 8, 4, 2, 12);
        assert_streaming_matches(&net, 1);
    }

    #[test]
    fn pruned_stacked_cells_stream_bit_identically() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut net = Network::new(
            "stack",
            vec![
                Box::new(BcmLstm::new(&mut rng, 4, 8, 2)) as Box<dyn Layer>,
                Box::new(BcmGru::new(&mut rng, 8, 8, 4)),
                Box::new(GlobalAvgPool::new()),
                Box::new(Linear::new(&mut rng, 8, 3)),
            ],
        );
        // Prune a few blocks in each cell; streaming must follow the skip
        // index exactly.
        net.bcm_eliminate(&[0, 7, 30]);
        assert_streaming_matches(&net, 2);
    }

    #[test]
    fn gang_step_bit_identical_to_solo_scalar() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut net = Network::new(
            "stack",
            vec![
                Box::new(BcmLstm::new(&mut rng, 4, 8, 2)) as Box<dyn Layer>,
                Box::new(BcmGru::new(&mut rng, 8, 8, 4)),
                Box::new(GlobalAvgPool::new()),
                Box::new(Linear::new(&mut rng, 8, 3)),
            ],
        );
        net.bcm_eliminate(&[1, 5, 28]);
        let template = SeqRunner::from_network(&net).expect("streamable");
        for width in [1usize, 2, 3, 8] {
            let mut gang: Vec<SeqRunner> = (0..width).map(|_| template.clone()).collect();
            let mut solo: Vec<SeqRunner> = (0..width).map(|_| template.clone()).collect();
            for t in 0..6 {
                let xs: Vec<Vec<f32>> = (0..width)
                    .map(|s| {
                        (0..4)
                            .map(|i| ((t * 13 + s * 7 + i) as f32 * 0.19).sin())
                            .collect()
                    })
                    .collect();
                let mut refs: Vec<&mut SeqRunner> = gang.iter_mut().collect();
                let x_refs: Vec<&[f32]> = xs.iter().map(|x| x.as_slice()).collect();
                let outs = SeqRunnerBatch::step(&mut refs, &x_refs);
                for s in 0..width {
                    let want = solo[s].step(&xs[s]);
                    assert_eq!(
                        outs[s].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "width {width} lane {s} step {t}"
                    );
                }
            }
            // Post-gang state must be scalar-identical too: one more solo
            // step on every (ex-)member must agree.
            for s in 0..width {
                let x = vec![0.125f32; 4];
                let a = gang[s].step(&x);
                let b = solo[s].step(&x);
                assert_eq!(
                    a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn reset_restarts_the_sequence_exactly() {
        let net = lstm_classifier(4, 4, 2, 2, 14);
        let mut runner = SeqRunner::from_network(&net).expect("streamable");
        let step_in = vec![0.5f32, -0.25, 1.0, 0.0];
        let first: Vec<Vec<f32>> = (0..3).map(|_| runner.step(&step_in)).collect();
        runner.reset();
        assert_eq!(runner.steps(), 0);
        for want in &first {
            let got = runner.step(&step_in);
            for (a, b) in got.iter().zip(want) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn non_streamable_stacks_are_rejected() {
        // Attention is non-causal: no streaming form.
        let attn = attn_lstm_classifier(4, 4, 2, 2, 15);
        assert!(matches!(
            SeqRunner::from_network(&attn),
            Err(SeqError::Unsupported(_))
        ));
        // A CNN has no recurrent cell (conv has no streaming semantics).
        let cnn = vgg_tiny(ConvMode::Dense, 10, 16);
        assert!(SeqRunner::from_network(&cnn).is_err());
        // A head with no cell in front of it.
        let mut rng = StdRng::seed_from_u64(17);
        let headless = Network::new(
            "fc",
            vec![Box::new(Linear::new(&mut rng, 4, 2)) as Box<dyn Layer>],
        );
        assert!(matches!(
            SeqRunner::from_network(&headless),
            Err(SeqError::NoRecurrentLayer)
        ));
    }

    #[test]
    fn runner_validates_the_cell_chain() {
        let mut rng = StdRng::seed_from_u64(18);
        let bad = Network::new(
            "mismatch",
            vec![
                Box::new(BcmLstm::new(&mut rng, 4, 8, 2)) as Box<dyn Layer>,
                Box::new(BcmGru::new(&mut rng, 4, 4, 2)),
            ],
        );
        assert!(matches!(
            SeqRunner::from_network(&bad),
            Err(SeqError::Unsupported(_))
        ));
    }
}
