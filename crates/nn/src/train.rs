//! Training loop, evaluation, and the Algorithm 1 adapter.
//!
//! # Data-parallel training
//!
//! `Trainer::fit` shards every minibatch into fixed-size *microbatches*
//! ([`TrainConfig::microbatch`]) and runs forward/backward for each shard on
//! a private network replica, fanned out over `tensor::parallel` workers.
//! The shard layout depends only on the batch size and the microbatch
//! size — never on the worker count — and the per-shard gradients are
//! reduced into the master network **sequentially in shard order** on the
//! calling thread. Together with the serial per-shard bodies
//! (`parallel::serial_scope`) this makes training bit-exact for every
//! worker count: `RPBCM_THREADS=1` and `RPBCM_THREADS=64` produce the same
//! loss history and the same final weights, byte for byte. Changing
//! `microbatch` *does* change results (it changes where batch-norm
//! statistics are computed — "ghost batch norm"), which is why it is a
//! config field and not an environment knob.

use crate::data::{SyntheticVision, TrainData};
use crate::layers::Network;
use crate::loss::softmax_cross_entropy;
use crate::optim::Sgd;
use rpbcm::pruning::PrunableNetwork;
use std::sync::Arc;
use std::time::Instant;
use tensor::ops::argmax;
use tensor::parallel;
use tensor::Tensor;

/// Global L2 norm of all accumulated gradients, last training step.
static GRAD_NORM: telemetry::Gauge = telemetry::Gauge::new("nn.train.grad_norm");
/// Largest gradient norm seen across all training steps.
static GRAD_NORM_MAX: telemetry::Gauge = telemetry::Gauge::new("nn.train.grad_norm_max");
/// `‖Δw‖ / ‖w‖` of the last SGD step (weight-relative update magnitude).
static UPDATE_RATIO: telemetry::Gauge = telemetry::Gauge::new("nn.train.update_ratio");
/// Largest update ratio seen across all training steps.
static UPDATE_RATIO_MAX: telemetry::Gauge = telemetry::Gauge::new("nn.train.update_ratio_max");
/// Worker count the data-parallel trainer fans shards out over.
static PARALLEL_WORKERS: telemetry::Gauge = telemetry::Gauge::new("nn.train.parallel.workers");
/// Minibatch shards dispatched to replicas.
static SHARDS: telemetry::Counter = telemetry::Counter::new("nn.train.parallel.shards");
/// Wall time of one shard's forward + backward (nanoseconds).
static SHARD_NS: telemetry::Histogram = telemetry::Histogram::new("nn.train.parallel.shard_ns");
/// Per-step shard imbalance: slowest shard over mean shard time, in
/// permille (1000 = perfectly balanced). Large values mean one replica
/// straggles and the whole batch waits on it.
static SHARD_IMBALANCE: telemetry::Histogram =
    telemetry::Histogram::new("nn.train.parallel.shard_imbalance_permille");
/// Wall time of the sequential gradient reduction (nanoseconds).
static REDUCE_NS: telemetry::Histogram = telemetry::Histogram::new("nn.train.parallel.reduce_ns");

/// Global L2 norms of `(gradients, weights)` over every trainable
/// parameter — read-only, safe to call between `backward` and `step`
/// (which clears gradients).
fn grad_and_weight_norms(net: &Network) -> (f64, f64) {
    let mut g2 = 0.0f64;
    let mut w2 = 0.0f64;
    for p in net.params() {
        for &g in p.grad.as_slice() {
            g2 += f64::from(g) * f64::from(g);
        }
        for &w in p.value.as_slice() {
            w2 += f64::from(w) * f64::from(w);
        }
    }
    (g2.sqrt(), w2.sqrt())
}

/// Training hyper-parameters (SGD + cosine annealing, as in paper §V-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Maximum learning rate (annealed to `lr_min`).
    pub lr_max: f32,
    /// Minimum learning rate.
    pub lr_min: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Data-parallel shard size: each minibatch is split into contiguous
    /// microbatches of this many samples, one replica forward/backward
    /// each. Batch-norm statistics are computed per shard (ghost batch
    /// norm), so this value is part of the numerical recipe — results are
    /// identical for every worker count but *not* across different
    /// microbatch sizes. Values `>= batch_size` reproduce single-shard
    /// (whole-batch) training.
    pub microbatch: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            lr_max: 0.05,
            lr_min: 1e-4,
            momentum: 0.9,
            weight_decay: 5e-4,
            microbatch: 8,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Training accuracy.
    pub train_accuracy: f32,
}

/// What one shard's replica reports back to the reducing thread.
struct ShardOutcome {
    /// `loss × samples` (so shard losses sum to the batch total).
    loss_sum: f64,
    /// Correct argmax predictions in the shard.
    correct: usize,
    /// Samples in the shard.
    count: usize,
    /// Wall time of the shard's forward + backward.
    ns: u64,
}

/// Drives SGD training of a [`Network`] on any [`TrainData`] dataset
/// (vision `[N, C, H, W]` or sequence `[N, F, T, 1]` — the shard slicing
/// below is 4-D layout-agnostic).
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
    history: Vec<EpochStats>,
    workers: usize,
}

impl Trainer {
    /// Creates a trainer using the process-wide worker pool size
    /// (`RPBCM_THREADS` / `available_parallelism`) for shard fan-out.
    pub fn new(config: TrainConfig) -> Self {
        Trainer {
            config,
            history: Vec::new(),
            workers: parallel::max_workers(),
        }
    }

    /// Overrides the shard fan-out width. Any value produces bit-identical
    /// training results; this only changes how many shards run
    /// concurrently.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The shard fan-out width this trainer uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The per-epoch history of the last `fit`.
    pub fn history(&self) -> &[EpochStats] {
        &self.history
    }

    /// Trains for the configured epochs and returns final test accuracy.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` or `microbatch` is zero.
    pub fn fit(&mut self, net: &mut Network, data: &impl TrainData) -> f32 {
        assert!(self.config.batch_size > 0, "batch size must be non-zero");
        assert!(self.config.microbatch > 0, "microbatch must be non-zero");
        self.history.clear();
        PARALLEL_WORKERS.set(self.workers as f64);
        let steps_per_epoch = data.train_len().div_ceil(self.config.batch_size);
        let sgd = Sgd {
            lr_max: self.config.lr_max,
            lr_min: self.config.lr_min,
            momentum: self.config.momentum,
            weight_decay: self.config.weight_decay,
            total_steps: self.config.epochs * steps_per_epoch,
        };
        // Persistent per-shard replicas, grown on first use. Replicas carry
        // weights + gradients only: momentum lives in the master's private
        // velocity buffers (replicas never `step`), and replica running
        // batch-norm stats are never read (training forwards use batch
        // statistics; the master's running stats get one pooled update per
        // step below).
        let mut replicas: Vec<Network> = Vec::new();
        let micro = self.config.microbatch;
        let mut step = 0usize;
        for epoch in 0..self.config.epochs {
            let mut loss_sum = 0.0f64;
            let mut correct = 0usize;
            let mut count = 0usize;
            let mut last_lr = 0.0f32;
            for (x, y) in data.train_batches(self.config.batch_size, epoch as u64) {
                let b = y.len();
                let used = b.div_ceil(micro);
                while replicas.len() < used {
                    replicas.push(net.clone());
                }
                // Publish the master weights to every active replica before
                // fanning out (serially — `Network` is `Send`, not `Sync`,
                // and the copies are cheap next to a forward/backward).
                for rep in &mut replicas[..used] {
                    rep.sync_params_from(net);
                }
                let dims = x.dims().to_vec();
                let sample_len: usize = dims[1..].iter().product();
                let outcomes = parallel::par_chunk_map_with(
                    self.workers,
                    &mut replicas[..used],
                    1,
                    |si, rep| {
                        // Shard bodies run with nested fan-outs forced
                        // serial: the shards *are* the parallelism, and a
                        // fully serial body keeps each shard's arithmetic
                        // independent of the worker count.
                        parallel::serial_scope(|| {
                            let t0 = Instant::now();
                            let _trace = telemetry::trace_span("shard", "nn.train.parallel");
                            let rep = &mut rep[0];
                            let lo = si * micro;
                            let hi = (lo + micro).min(b);
                            let xs = Tensor::from_vec(
                                x.as_slice()[lo * sample_len..hi * sample_len].to_vec(),
                                &[hi - lo, dims[1], dims[2], dims[3]],
                            );
                            let logits = rep.forward(&xs, true);
                            let out = softmax_cross_entropy(&logits, &y[lo..hi]);
                            // The loss gradient is divided by the *shard*
                            // size; rescale so the shard gradients sum to
                            // the full-batch mean gradient.
                            let mut grad = out.grad;
                            let scale = (hi - lo) as f32 / b as f32;
                            for g in grad.as_mut_slice() {
                                *g *= scale;
                            }
                            rep.backward(&grad);
                            ShardOutcome {
                                loss_sum: f64::from(out.loss) * (hi - lo) as f64,
                                correct: out.correct,
                                count: hi - lo,
                                ns: t0.elapsed().as_nanos() as u64,
                            }
                        })
                    },
                );
                // Deterministic reduction: always shard 0, 1, 2, … on this
                // thread, whatever order the workers finished in.
                net.zero_grads();
                {
                    let _span = REDUCE_NS.span();
                    let _trace = telemetry::trace_span("grad_reduce", "nn.train.parallel");
                    for rep in &replicas[..used] {
                        net.reduce_grads_from(rep);
                    }
                }
                self.pool_batchnorm_stats(net, &replicas[..used]);
                if telemetry::enabled() {
                    SHARDS.add(used as u64);
                    let mut ns_sum = 0u64;
                    let mut ns_max = 0u64;
                    for o in &outcomes {
                        SHARD_NS.record(o.ns);
                        ns_sum += o.ns;
                        ns_max = ns_max.max(o.ns);
                    }
                    let mean = ns_sum / used as u64;
                    if let Some(permille) = (ns_max * 1000).checked_div(mean) {
                        SHARD_IMBALANCE.record(permille);
                    }
                }
                let update = sgd.update_at(step);
                if telemetry::enabled() {
                    // Gradients are cleared by `step`, so norms must be read
                    // here; the pre-step weight snapshot yields an exact
                    // ‖Δw‖ including momentum and weight decay. All reads —
                    // the update arithmetic is untouched.
                    let (grad_norm, weight_norm) = grad_and_weight_norms(net);
                    let pre: Vec<Vec<f32>> = net
                        .params()
                        .iter()
                        .map(|p| p.value.as_slice().to_vec())
                        .collect();
                    net.step(&update);
                    let mut d2 = 0.0f64;
                    for (p, old) in net.params().iter().zip(&pre) {
                        for (&w, &o) in p.value.as_slice().iter().zip(old) {
                            let d = f64::from(w) - f64::from(o);
                            d2 += d * d;
                        }
                    }
                    let ratio = if weight_norm > 0.0 {
                        d2.sqrt() / weight_norm
                    } else {
                        0.0
                    };
                    GRAD_NORM.set(grad_norm);
                    GRAD_NORM_MAX.set_max(grad_norm);
                    UPDATE_RATIO.set(ratio);
                    UPDATE_RATIO_MAX.set_max(ratio);
                } else {
                    net.step(&update);
                }
                last_lr = update.lr;
                step += 1;
                for o in &outcomes {
                    loss_sum += o.loss_sum;
                    correct += o.correct;
                    count += o.count;
                }
            }
            let stats = EpochStats {
                epoch,
                train_loss: (loss_sum / count as f64) as f32,
                train_accuracy: correct as f32 / count as f32,
            };
            if telemetry::enabled() {
                telemetry::record_gauge(
                    &format!("nn.train.epoch.{epoch:03}.loss"),
                    f64::from(stats.train_loss),
                );
                telemetry::record_gauge(
                    &format!("nn.train.epoch.{epoch:03}.accuracy"),
                    f64::from(stats.train_accuracy),
                );
                telemetry::record_gauge(
                    &format!("nn.train.epoch.{epoch:03}.lr"),
                    f64::from(last_lr),
                );
            }
            self.history.push(stats);
        }
        evaluate(net, data)
    }

    /// Applies one running-statistics update per batch-norm layer on the
    /// master from the count-weighted pool of the shards' batch statistics
    /// (`E[x²]` recombination, accumulated in `f64` in shard order so the
    /// result is worker-count independent).
    fn pool_batchnorm_stats(&self, net: &mut Network, replicas: &[Network]) {
        let mut masters = net.bn_layers_mut();
        if masters.is_empty() {
            return;
        }
        type BnStats<'a> = Vec<(&'a [f32], &'a [f32], usize)>;
        let shard_stats: Vec<BnStats<'_>> = replicas
            .iter()
            .map(|rep| {
                rep.bn_layers()
                    .into_iter()
                    .map(|bn| bn.batch_stats().expect("replica ran a training forward"))
                    .collect()
            })
            .collect();
        for (bi, master) in masters.iter_mut().enumerate() {
            let channels = shard_stats[0][bi].0.len();
            let mut mean_p = vec![0.0f64; channels];
            let mut ex2_p = vec![0.0f64; channels];
            let mut total = 0.0f64;
            for stats in &shard_stats {
                let (mean, var, cnt) = stats[bi];
                let cnt = cnt as f64;
                total += cnt;
                for ci in 0..channels {
                    let m = f64::from(mean[ci]);
                    mean_p[ci] += cnt * m;
                    ex2_p[ci] += cnt * (f64::from(var[ci]) + m * m);
                }
            }
            let mut mean = vec![0.0f32; channels];
            let mut var = vec![0.0f32; channels];
            for ci in 0..channels {
                let m = mean_p[ci] / total;
                mean[ci] = m as f32;
                var[ci] = (ex2_p[ci] / total - m * m) as f32;
            }
            master.update_running_stats(&mean, &var);
        }
    }
}

/// Per-chunk batch size used by [`evaluate`] / [`evaluate_topk`]: keeps the
/// forward batched (one im2col / matmat per chunk, not per sample) while
/// bounding the peak activation footprint on large test splits. Eval-mode
/// forwards use running statistics, so chunking never changes the scores.
const EVAL_BATCH: usize = 64;

/// Shared batched-evaluation core: fraction of test samples whose target is
/// in the top-`k` logits.
fn eval_topk_fraction(net: &mut Network, data: &impl TrainData, k: usize) -> f32 {
    let (x, y) = data.test_set();
    let dims = x.dims().to_vec();
    let sample_len: usize = dims[1..].iter().product();
    let mut correct = 0usize;
    for (ci, chunk) in y.chunks(EVAL_BATCH).enumerate() {
        let lo = ci * EVAL_BATCH;
        let xs = Tensor::from_vec(
            x.as_slice()[lo * sample_len..(lo + chunk.len()) * sample_len].to_vec(),
            &[chunk.len(), dims[1], dims[2], dims[3]],
        );
        let logits = net.forward(&xs, false);
        let classes = logits.dims()[1];
        for (i, &t) in chunk.iter().enumerate() {
            let row = &logits.as_slice()[i * classes..(i + 1) * classes];
            let hit = if k == 1 {
                argmax(row) == t
            } else {
                let mut order: Vec<usize> = (0..classes).collect();
                order.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("finite logits"));
                order[..k.min(classes)].contains(&t)
            };
            if hit {
                correct += 1;
            }
        }
    }
    correct as f32 / y.len() as f32
}

/// Test-set accuracy of a network (eval mode).
pub fn evaluate(net: &mut Network, data: &impl TrainData) -> f32 {
    eval_topk_fraction(net, data, 1)
}

/// Top-k test-set accuracy (the paper's tables report Top-1 and Top-5).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn evaluate_topk(net: &mut Network, data: &impl TrainData, k: usize) -> f32 {
    assert!(k > 0, "k must be non-zero");
    eval_topk_fraction(net, data, k)
}

/// Adapter that lets `rpbcm`'s Algorithm 1 drive a trained [`Network`]:
/// each pruning round fine-tunes for `finetune.epochs` and reports test
/// accuracy. Works over any [`TrainData`] (the default keeps existing
/// vision-pruning call sites unchanged); `Clone`/`Debug` are implemented
/// manually so the dataset type needs neither.
pub struct PrunableTrainedNetwork<D: TrainData = SyntheticVision> {
    /// The network being pruned.
    pub net: Network,
    /// Shared dataset (cloning the adapter must not copy the data).
    pub data: Arc<D>,
    /// Fine-tuning schedule applied after each elimination round.
    pub finetune: TrainConfig,
}

impl<D: TrainData> Clone for PrunableTrainedNetwork<D> {
    fn clone(&self) -> Self {
        PrunableTrainedNetwork {
            net: self.net.clone(),
            data: Arc::clone(&self.data),
            finetune: self.finetune,
        }
    }
}

impl<D: TrainData> std::fmt::Debug for PrunableTrainedNetwork<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrunableTrainedNetwork")
            .field("net", &self.net.name())
            .field("finetune", &self.finetune)
            .finish_non_exhaustive()
    }
}

impl<D: TrainData> PrunableNetwork for PrunableTrainedNetwork<D> {
    fn bcm_norms(&self) -> Vec<f64> {
        self.net.bcm_importances()
    }

    fn eliminate(&mut self, indices: &[usize]) {
        self.net.bcm_eliminate(indices);
    }

    fn fine_tune(&mut self) -> f64 {
        let mut trainer = Trainer::new(self.finetune);
        f64::from(trainer.fit(&mut self.net, &*self.data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{GlobalAvgPool, Layer, Linear};
    use crate::models::{vgg_tiny, ConvMode};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpbcm::BcmWisePruner;

    fn small_data(seed: u64) -> SyntheticVision {
        SyntheticVision::cifar10_like(8, 4, seed)
    }

    fn quick_config() -> TrainConfig {
        TrainConfig {
            epochs: 6,
            batch_size: 16,
            lr_max: 0.05,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn training_beats_chance_on_synthetic_data() {
        let data = small_data(0);
        let mut net = vgg_tiny(ConvMode::Dense, data.num_classes(), 1);
        let mut trainer = Trainer::new(quick_config());
        let acc = trainer.fit(&mut net, &data);
        // 10 classes → chance = 0.1; six epochs separate the textures well
        // (≈0.9+ in practice; the loose bound keeps the test robust).
        assert!(acc > 0.5, "accuracy = {acc}");
        assert_eq!(trainer.history().len(), 6);
        // Loss decreased over training.
        let h = trainer.history();
        assert!(h.last().expect("history").train_loss < h[0].train_loss);
    }

    #[test]
    fn topk_accuracy_is_monotone_in_k() {
        let data = small_data(2);
        let mut net = vgg_tiny(ConvMode::Dense, data.num_classes(), 4);
        let _ = Trainer::new(quick_config()).fit(&mut net, &data);
        let top1 = evaluate_topk(&mut net, &data, 1);
        let top5 = evaluate_topk(&mut net, &data, 5);
        let top_all = evaluate_topk(&mut net, &data, data.num_classes());
        assert!(top5 >= top1);
        assert_eq!(top_all, 1.0);
        assert_eq!(top1, evaluate(&mut net, &data));
    }

    #[test]
    fn training_is_deterministic() {
        let data = small_data(3);
        let run = || {
            let mut net = vgg_tiny(ConvMode::Bcm { block_size: 8 }, data.num_classes(), 7);
            let mut t = Trainer::new(quick_config());
            t.fit(&mut net, &data)
        };
        assert_eq!(run(), run());
    }

    /// A full fingerprint of a training run: final accuracy bits, per-epoch
    /// history bits, and every parameter's final bit pattern.
    fn run_fingerprint(
        data: &SyntheticVision,
        config: TrainConfig,
        workers: usize,
    ) -> (u32, Vec<(u32, u32)>, Vec<u32>) {
        let mut net = vgg_tiny(ConvMode::Bcm { block_size: 8 }, data.num_classes(), 7);
        let mut t = Trainer::new(config).with_workers(workers);
        let acc = t.fit(&mut net, data);
        let hist = t
            .history()
            .iter()
            .map(|s| (s.train_loss.to_bits(), s.train_accuracy.to_bits()))
            .collect();
        let bits = net
            .params()
            .iter()
            .flat_map(|p| p.value.as_slice().iter().map(|v| v.to_bits()))
            .collect();
        (acc.to_bits(), hist, bits)
    }

    #[test]
    fn training_is_bit_exact_across_worker_counts() {
        let data = small_data(11);
        let config = TrainConfig {
            epochs: 2,
            batch_size: 16,
            ..TrainConfig::default()
        };
        let base = run_fingerprint(&data, config, 1);
        for workers in [2, 4] {
            let other = run_fingerprint(&data, config, workers);
            assert_eq!(base.0, other.0, "accuracy differs at {workers} workers");
            assert_eq!(base.1, other.1, "history differs at {workers} workers");
            assert_eq!(base.2, other.2, "weights differ at {workers} workers");
        }
    }

    proptest! {
        /// The gradient-reduction order (and hence every training result)
        /// is independent of the worker count for arbitrary batch/shard
        /// geometry.
        #[test]
        fn prop_reduction_is_worker_count_independent(
            seed in 0u64..16,
            micro in 1usize..6,
            batch in 2usize..10,
            workers in 2usize..6,
        ) {
            let data = SyntheticVision::cifar10_like(2, 1, seed);
            let config = TrainConfig {
                epochs: 1,
                batch_size: batch,
                microbatch: micro,
                ..TrainConfig::default()
            };
            let build = || {
                let mut rng = StdRng::seed_from_u64(seed);
                Network::new(
                    "probe",
                    vec![
                        Box::new(GlobalAvgPool::new()) as Box<dyn Layer>,
                        Box::new(Linear::new(&mut rng, 3, data.num_classes())),
                    ],
                )
            };
            let run = |w: usize| {
                let mut net = build();
                let mut t = Trainer::new(config).with_workers(w);
                t.fit(&mut net, &data);
                net.params()
                    .iter()
                    .flat_map(|p| p.value.as_slice().iter().map(|v| v.to_bits()))
                    .collect::<Vec<u32>>()
            };
            prop_assert_eq!(run(1), run(workers));
        }
    }

    #[test]
    fn algorithm1_prunes_a_real_network() {
        let data = Arc::new(small_data(5));
        let mut net = vgg_tiny(ConvMode::HadaBcm { block_size: 8 }, data.num_classes(), 2);
        let mut trainer = Trainer::new(TrainConfig {
            microbatch: 16,
            ..quick_config()
        });
        let base_acc = trainer.fit(&mut net, &*data);
        let adapter = PrunableTrainedNetwork {
            net,
            data: data.clone(),
            finetune: TrainConfig {
                epochs: 1,
                // Whole-batch statistics: one epoch must re-stabilize the
                // batch-norm layers after a 20% elimination, which the
                // 8-sample ghost-BN shards are too noisy to do.
                microbatch: 16,
                ..quick_config()
            },
        };
        let pruner = BcmWisePruner {
            alpha_init: 0.2,
            alpha_step: 0.2,
            // Permissive floor so at least one round is accepted even on
            // this tiny budget.
            target_accuracy: f64::from(base_acc) * 0.3,
            max_rounds: 3,
        };
        let (best, report) = pruner.run(adapter);
        assert!(report.final_alpha.is_some());
        assert!(best.net.bcm_sparsity() > 0.0);
        assert!(best.net.folded_param_count() < best.net.dense_equiv_param_count());
    }

    #[test]
    fn recurrent_training_beats_chance_on_delayed_recall() {
        use crate::data::SyntheticSequence;
        use crate::models::lstm_classifier;
        // 3 classes + marker channel = 4 features, aligned to BS 4.
        let data = SyntheticSequence::delayed_recall(3, 8, 60, 24, 3);
        let mut net = lstm_classifier(data.features(), 16, data.num_classes(), 4, 5);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 14,
            batch_size: 16,
            lr_max: 0.1,
            weight_decay: 1e-4,
            ..TrainConfig::default()
        });
        let acc = trainer.fit(&mut net, &data);
        // 4 classes → chance = 0.25. The marked symbol sits in the first
        // half of the sequence, so the cell must carry it across at least
        // seq_len/2 distractor steps to score above chance.
        assert!(acc > 0.5, "accuracy = {acc}");
        let h = trainer.history();
        assert!(h.last().expect("history").train_loss < h[0].train_loss);
    }

    #[test]
    fn algorithm1_prunes_a_recurrent_network() {
        use crate::data::SyntheticSequence;
        use crate::models::lstm_classifier;
        let data = Arc::new(SyntheticSequence::delayed_recall(3, 10, 20, 9, 6));
        let mut net = lstm_classifier(data.features(), 8, data.num_classes(), 4, 7);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 6,
            batch_size: 12,
            lr_max: 0.08,
            ..TrainConfig::default()
        });
        let base_acc = trainer.fit(&mut net, &*data);
        let adapter = PrunableTrainedNetwork {
            net,
            data: data.clone(),
            finetune: TrainConfig {
                epochs: 2,
                batch_size: 12,
                lr_max: 0.02,
                ..TrainConfig::default()
            },
        };
        let pruner = BcmWisePruner {
            alpha_init: 0.15,
            alpha_step: 0.15,
            // Permissive floor so at least one round is accepted even on
            // this tiny budget.
            target_accuracy: f64::from(base_acc) * 0.3,
            max_rounds: 3,
        };
        let (best, report) = pruner.run(adapter);
        assert!(report.final_alpha.is_some(), "no round was accepted");
        assert!(
            best.net.bcm_sparsity() > 0.0,
            "no recurrent blocks were pruned"
        );
        // The pruned cell still streams: the skip index survives into a
        // runner without panicking.
        assert!(crate::seq::SeqRunner::from_network(&best.net).is_ok());
    }
}
