//! Training loop, evaluation, and the Algorithm 1 adapter.

use crate::data::SyntheticVision;
use crate::layers::Network;
use crate::loss::softmax_cross_entropy;
use crate::optim::Sgd;
use rpbcm::pruning::PrunableNetwork;
use std::sync::Arc;
use tensor::ops::argmax;

/// Global L2 norm of all accumulated gradients, last training step.
static GRAD_NORM: telemetry::Gauge = telemetry::Gauge::new("nn.train.grad_norm");
/// Largest gradient norm seen across all training steps.
static GRAD_NORM_MAX: telemetry::Gauge = telemetry::Gauge::new("nn.train.grad_norm_max");
/// `‖Δw‖ / ‖w‖` of the last SGD step (weight-relative update magnitude).
static UPDATE_RATIO: telemetry::Gauge = telemetry::Gauge::new("nn.train.update_ratio");
/// Largest update ratio seen across all training steps.
static UPDATE_RATIO_MAX: telemetry::Gauge = telemetry::Gauge::new("nn.train.update_ratio_max");

/// Global L2 norms of `(gradients, weights)` over every trainable
/// parameter — read-only, safe to call between `backward` and `step`
/// (which clears gradients).
fn grad_and_weight_norms(net: &Network) -> (f64, f64) {
    let mut g2 = 0.0f64;
    let mut w2 = 0.0f64;
    for p in net.params() {
        for &g in p.grad.as_slice() {
            g2 += f64::from(g) * f64::from(g);
        }
        for &w in p.value.as_slice() {
            w2 += f64::from(w) * f64::from(w);
        }
    }
    (g2.sqrt(), w2.sqrt())
}

/// Training hyper-parameters (SGD + cosine annealing, as in paper §V-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Maximum learning rate (annealed to `lr_min`).
    pub lr_max: f32,
    /// Minimum learning rate.
    pub lr_min: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            lr_max: 0.05,
            lr_min: 1e-4,
            momentum: 0.9,
            weight_decay: 5e-4,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Training accuracy.
    pub train_accuracy: f32,
}

/// Drives SGD training of a [`Network`] on a [`SyntheticVision`] dataset.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
    history: Vec<EpochStats>,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Trainer {
            config,
            history: Vec::new(),
        }
    }

    /// The per-epoch history of the last `fit`.
    pub fn history(&self) -> &[EpochStats] {
        &self.history
    }

    /// Trains for the configured epochs and returns final test accuracy.
    pub fn fit(&mut self, net: &mut Network, data: &SyntheticVision) -> f32 {
        self.history.clear();
        let steps_per_epoch = data.train_len().div_ceil(self.config.batch_size);
        let sgd = Sgd {
            lr_max: self.config.lr_max,
            lr_min: self.config.lr_min,
            momentum: self.config.momentum,
            weight_decay: self.config.weight_decay,
            total_steps: self.config.epochs * steps_per_epoch,
        };
        let mut step = 0usize;
        for epoch in 0..self.config.epochs {
            let mut loss_sum = 0.0f64;
            let mut correct = 0usize;
            let mut count = 0usize;
            let mut last_lr = 0.0f32;
            for (x, y) in data.train_batches(self.config.batch_size, epoch as u64) {
                let logits = net.forward(&x, true);
                let out = softmax_cross_entropy(&logits, &y);
                net.backward(&out.grad);
                let update = sgd.update_at(step);
                if telemetry::enabled() {
                    // Gradients are cleared by `step`, so norms must be read
                    // here; the pre-step weight snapshot yields an exact
                    // ‖Δw‖ including momentum and weight decay. All reads —
                    // the update arithmetic is untouched.
                    let (grad_norm, weight_norm) = grad_and_weight_norms(net);
                    let pre: Vec<Vec<f32>> = net
                        .params()
                        .iter()
                        .map(|p| p.value.as_slice().to_vec())
                        .collect();
                    net.step(&update);
                    let mut d2 = 0.0f64;
                    for (p, old) in net.params().iter().zip(&pre) {
                        for (&w, &o) in p.value.as_slice().iter().zip(old) {
                            let d = f64::from(w) - f64::from(o);
                            d2 += d * d;
                        }
                    }
                    let ratio = if weight_norm > 0.0 {
                        d2.sqrt() / weight_norm
                    } else {
                        0.0
                    };
                    GRAD_NORM.set(grad_norm);
                    GRAD_NORM_MAX.set_max(grad_norm);
                    UPDATE_RATIO.set(ratio);
                    UPDATE_RATIO_MAX.set_max(ratio);
                } else {
                    net.step(&update);
                }
                last_lr = update.lr;
                step += 1;
                loss_sum += f64::from(out.loss) * y.len() as f64;
                correct += out.correct;
                count += y.len();
            }
            let stats = EpochStats {
                epoch,
                train_loss: (loss_sum / count as f64) as f32,
                train_accuracy: correct as f32 / count as f32,
            };
            if telemetry::enabled() {
                telemetry::record_gauge(
                    &format!("nn.train.epoch.{epoch:03}.loss"),
                    f64::from(stats.train_loss),
                );
                telemetry::record_gauge(
                    &format!("nn.train.epoch.{epoch:03}.accuracy"),
                    f64::from(stats.train_accuracy),
                );
                telemetry::record_gauge(
                    &format!("nn.train.epoch.{epoch:03}.lr"),
                    f64::from(last_lr),
                );
            }
            self.history.push(stats);
        }
        evaluate(net, data)
    }
}

/// Test-set accuracy of a network (eval mode).
pub fn evaluate(net: &mut Network, data: &SyntheticVision) -> f32 {
    let (x, y) = data.test_set();
    let logits = net.forward(&x, false);
    let k = logits.dims()[1];
    let mut correct = 0usize;
    for (i, &t) in y.iter().enumerate() {
        if argmax(&logits.as_slice()[i * k..(i + 1) * k]) == t {
            correct += 1;
        }
    }
    correct as f32 / y.len() as f32
}

/// Top-k test-set accuracy (the paper's tables report Top-1 and Top-5).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn evaluate_topk(net: &mut Network, data: &SyntheticVision, k: usize) -> f32 {
    assert!(k > 0, "k must be non-zero");
    let (x, y) = data.test_set();
    let logits = net.forward(&x, false);
    let classes = logits.dims()[1];
    let mut correct = 0usize;
    for (i, &t) in y.iter().enumerate() {
        let row = &logits.as_slice()[i * classes..(i + 1) * classes];
        let mut order: Vec<usize> = (0..classes).collect();
        order.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("finite logits"));
        if order[..k.min(classes)].contains(&t) {
            correct += 1;
        }
    }
    correct as f32 / y.len() as f32
}

/// Adapter that lets `rpbcm`'s Algorithm 1 drive a trained [`Network`]:
/// each pruning round fine-tunes for `finetune.epochs` and reports test
/// accuracy.
#[derive(Debug, Clone)]
pub struct PrunableTrainedNetwork {
    /// The network being pruned.
    pub net: Network,
    /// Shared dataset (cloning the adapter must not copy the data).
    pub data: Arc<SyntheticVision>,
    /// Fine-tuning schedule applied after each elimination round.
    pub finetune: TrainConfig,
}

impl PrunableNetwork for PrunableTrainedNetwork {
    fn bcm_norms(&self) -> Vec<f64> {
        self.net.bcm_importances()
    }

    fn eliminate(&mut self, indices: &[usize]) {
        self.net.bcm_eliminate(indices);
    }

    fn fine_tune(&mut self) -> f64 {
        let mut trainer = Trainer::new(self.finetune);
        f64::from(trainer.fit(&mut self.net, &self.data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{vgg_tiny, ConvMode};
    use rpbcm::BcmWisePruner;

    fn small_data(seed: u64) -> SyntheticVision {
        SyntheticVision::cifar10_like(8, 4, seed)
    }

    fn quick_config() -> TrainConfig {
        TrainConfig {
            epochs: 6,
            batch_size: 16,
            lr_max: 0.05,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn training_beats_chance_on_synthetic_data() {
        let data = small_data(0);
        let mut net = vgg_tiny(ConvMode::Dense, data.num_classes(), 1);
        let mut trainer = Trainer::new(quick_config());
        let acc = trainer.fit(&mut net, &data);
        // 10 classes → chance = 0.1; six epochs separate the textures well
        // (≈0.9+ in practice; the loose bound keeps the test robust).
        assert!(acc > 0.5, "accuracy = {acc}");
        assert_eq!(trainer.history().len(), 6);
        // Loss decreased over training.
        let h = trainer.history();
        assert!(h.last().expect("history").train_loss < h[0].train_loss);
    }

    #[test]
    fn topk_accuracy_is_monotone_in_k() {
        let data = small_data(2);
        let mut net = vgg_tiny(ConvMode::Dense, data.num_classes(), 4);
        let _ = Trainer::new(quick_config()).fit(&mut net, &data);
        let top1 = evaluate_topk(&mut net, &data, 1);
        let top5 = evaluate_topk(&mut net, &data, 5);
        let top_all = evaluate_topk(&mut net, &data, data.num_classes());
        assert!(top5 >= top1);
        assert_eq!(top_all, 1.0);
        assert_eq!(top1, evaluate(&mut net, &data));
    }

    #[test]
    fn training_is_deterministic() {
        let data = small_data(3);
        let run = || {
            let mut net = vgg_tiny(ConvMode::Bcm { block_size: 8 }, data.num_classes(), 7);
            let mut t = Trainer::new(quick_config());
            t.fit(&mut net, &data)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn algorithm1_prunes_a_real_network() {
        let data = Arc::new(small_data(5));
        let mut net = vgg_tiny(ConvMode::HadaBcm { block_size: 8 }, data.num_classes(), 2);
        let mut trainer = Trainer::new(quick_config());
        let base_acc = trainer.fit(&mut net, &data);
        let adapter = PrunableTrainedNetwork {
            net,
            data: data.clone(),
            finetune: TrainConfig {
                epochs: 1,
                ..quick_config()
            },
        };
        let pruner = BcmWisePruner {
            alpha_init: 0.2,
            alpha_step: 0.2,
            // Permissive floor so at least one round is accepted even on
            // this tiny budget.
            target_accuracy: f64::from(base_acc) * 0.3,
            max_rounds: 3,
        };
        let (best, report) = pruner.run(adapter);
        assert!(report.final_alpha.is_some());
        assert!(best.net.bcm_sparsity() > 0.0);
        assert!(best.net.folded_param_count() < best.net.dense_equiv_param_count());
    }
}
