//! The dynamic micro-batching scheduler.
//!
//! Requests enter a bounded queue; a single worker thread groups
//! same-model, same-mode neighbours into batches and runs them through
//! the engine. A batch dispatches as soon as either
//!
//! - it is **full** — `batch_size` compatible requests are queued, or
//! - it is **stale** — `max_wait` has elapsed since its oldest request
//!   arrived (so a lone request never waits longer than the deadline).
//!
//! Admission control is strict: a request arriving while the queue holds
//! `queue_cap` entries is shed immediately ([`SubmitError::Overloaded`])
//! rather than buffered — the caller turns that into an explicit
//! `overloaded` reply, keeping tail latency bounded under overload.
//!
//! Shutdown is graceful: [`Batcher::shutdown`] stops admissions, then the
//! worker drains every queued request (still batched, no deadline waits)
//! before exiting.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::config::ServeConfig;
use crate::metrics;
use crate::protocol::Payload;
use crate::registry::{Mode, Registry};

/// Why a request was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; the request was shed.
    Overloaded,
    /// The batcher is draining and admits nothing new.
    ShuttingDown,
}

/// A queued request.
struct Pending {
    model: usize,
    mode: Mode,
    input: Payload,
    reply: mpsc::Sender<Payload>,
    enqueued: Instant,
}

struct State {
    queue: VecDeque<Pending>,
    shutting_down: bool,
}

struct Shared {
    cfg: ServeConfig,
    state: Mutex<State>,
    cv: Condvar,
}

/// Handle to the scheduler: submit requests, then shut down gracefully.
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Batcher {
    /// Spawns the batch worker over `registry`.
    pub fn start(cfg: ServeConfig, registry: Registry) -> Batcher {
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutting_down: false,
            }),
            cv: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("serve-batcher".into())
            .spawn(move || worker_loop(&worker_shared, registry))
            .expect("spawn batch worker");
        Batcher {
            shared,
            worker: Mutex::new(Some(worker)),
        }
    }

    /// Submits one request. On admission, the reply (the model output,
    /// same payload variant as the input) arrives on the returned
    /// receiver; a receiver whose sender was dropped means the batcher
    /// shut down before executing the request.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the queue is at capacity,
    /// [`SubmitError::ShuttingDown`] after [`Batcher::shutdown`] began.
    pub fn submit(
        &self,
        model: usize,
        mode: Mode,
        input: Payload,
    ) -> Result<mpsc::Receiver<Payload>, SubmitError> {
        let mut st = self.shared.state.lock().expect("batcher lock");
        if st.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if st.queue.len() >= self.shared.cfg.queue_cap {
            metrics::SHED.add(1);
            return Err(SubmitError::Overloaded);
        }
        let (tx, rx) = mpsc::channel();
        st.queue.push_back(Pending {
            model,
            mode,
            input,
            reply: tx,
            enqueued: Instant::now(),
        });
        metrics::ACCEPTED.add(1);
        let depth = st.queue.len() as f64;
        metrics::QUEUE_DEPTH.set(depth);
        metrics::QUEUE_PEAK.set_max(depth);
        drop(st);
        self.shared.cv.notify_one();
        Ok(rx)
    }

    /// Current queue depth (for tests and load generators).
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().expect("batcher lock").queue.len()
    }

    /// Stops admissions, drains every queued request through the engine,
    /// and joins the worker. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock().expect("batcher lock");
            st.shutting_down = true;
        }
        self.shared.cv.notify_all();
        if let Some(handle) = self.worker.lock().expect("worker lock").take() {
            handle.join().expect("batch worker panicked");
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Takes up to `cap` requests compatible with the queue front's
/// (model, mode) key, preserving arrival order and leaving incompatible
/// requests queued.
fn take_batch(queue: &mut VecDeque<Pending>, cap: usize) -> Vec<Pending> {
    let Some(front) = queue.front() else {
        return Vec::new();
    };
    let key = (front.model, front.mode);
    let mut batch = Vec::new();
    let mut i = 0;
    while i < queue.len() && batch.len() < cap {
        if (queue[i].model, queue[i].mode) == key {
            batch.push(queue.remove(i).expect("index in bounds"));
        } else {
            i += 1;
        }
    }
    batch
}

/// Counts queued requests matching the queue front's (model, mode) key.
fn matching_front(queue: &VecDeque<Pending>) -> usize {
    match queue.front() {
        None => 0,
        Some(front) => {
            let key = (front.model, front.mode);
            queue.iter().filter(|p| (p.model, p.mode) == key).count()
        }
    }
}

fn worker_loop(shared: &Shared, mut registry: Registry) {
    let cfg = shared.cfg;
    loop {
        let batch = {
            let mut st = shared.state.lock().expect("batcher lock");
            loop {
                if st.queue.is_empty() {
                    if st.shutting_down {
                        return;
                    }
                    st = shared.cv.wait(st).expect("batcher lock");
                    continue;
                }
                // Dispatch when full, stale, or draining.
                let full = matching_front(&st.queue) >= cfg.batch_size;
                let oldest = st.queue.front().expect("non-empty").enqueued;
                let age = oldest.elapsed();
                if full || st.shutting_down || age >= cfg.max_wait {
                    let batch = take_batch(&mut st.queue, cfg.batch_size);
                    metrics::QUEUE_DEPTH.set(st.queue.len() as f64);
                    break batch;
                }
                // Sleep until the front request's deadline; a new arrival
                // (which may complete the batch) wakes us early.
                let remaining = cfg.max_wait - age;
                let (guard, _timeout) =
                    shared.cv.wait_timeout(st, remaining).expect("batcher lock");
                st = guard;
            }
        };
        execute(&mut registry, batch);
    }
}

/// Runs one batch through the engine and delivers the replies.
fn execute(registry: &mut Registry, batch: Vec<Pending>) {
    if batch.is_empty() {
        return;
    }
    metrics::BATCH_SIZE.record(batch.len() as u64);
    let model = registry.get_mut(batch[0].model);
    let start = Instant::now();
    let outputs: Vec<Payload> = match batch[0].mode {
        Mode::F32 => {
            let samples: Vec<Vec<f32>> = batch
                .iter()
                .map(|p| match &p.input {
                    Payload::F32(v) => v.clone(),
                    Payload::Fx(_) => unreachable!("mode/payload mismatch"),
                })
                .collect();
            model
                .forward_f32_batch(&samples)
                .into_iter()
                .map(Payload::F32)
                .collect()
        }
        Mode::Fx => {
            // Flatten the payloads straight into the packed container —
            // no per-sample row clones; the i16 lanes ride the FxBatch
            // through every layer and only split back into rows for the
            // per-request replies.
            let fx = model.fx().expect("fx mode unavailable");
            let (q, sample_len) = (fx.qformat(), fx.input_len());
            let mut flat = Vec::with_capacity(batch.len() * sample_len);
            for p in &batch {
                match &p.input {
                    Payload::Fx(v) => flat.extend_from_slice(v),
                    Payload::F32(_) => unreachable!("mode/payload mismatch"),
                }
            }
            let packed = hwsim::FxBatch::from_flat(q, batch.len(), sample_len, flat);
            model
                .forward_fx_batch_packed(packed)
                .into_rows()
                .into_iter()
                .map(Payload::Fx)
                .collect()
        }
    };
    let exec_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    metrics::BATCH_EXEC.record(exec_ns);
    for (pending, output) in batch.into_iter().zip(outputs) {
        let latency = pending.enqueued.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        metrics::LATENCY.record(latency);
        metrics::COMPLETED.add(1);
        // A receiver dropped mid-flight (client hung up) is not an error.
        let _ = pending.reply.send(output);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::layers::{BcmConv2d, ReLU};
    use nn::{CheckpointMeta, Network};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Duration;

    fn tiny_registry(seed: u64) -> (Registry, usize, usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Network::new(
            "tiny",
            vec![
                Box::new(BcmConv2d::new(&mut rng, 4, 4, 3, 1, 1, 4)),
                Box::new(ReLU::new()),
            ],
        );
        let meta = CheckpointMeta {
            input_dims: vec![4, 4, 4],
            frac_bits: 8,
        };
        let model = crate::registry::Model::from_network("tiny", net, meta);
        let input_len = model.input_len();
        let output_len = model.output_len();
        let mut reg = Registry::new();
        reg.insert(model);
        (reg, input_len, output_len)
    }

    #[test]
    fn requests_get_replies() {
        let (reg, input_len, output_len) = tiny_registry(1);
        let batcher = Batcher::start(ServeConfig::default(), reg);
        let rxs: Vec<_> = (0..5)
            .map(|i| {
                batcher
                    .submit(0, Mode::F32, Payload::F32(vec![i as f32 * 0.1; input_len]))
                    .unwrap()
            })
            .collect();
        for rx in rxs {
            let out = rx.recv().expect("reply");
            assert_eq!(out.len(), output_len);
        }
        batcher.shutdown();
    }

    #[test]
    fn overload_sheds_instead_of_buffering() {
        let (reg, input_len, _) = tiny_registry(2);
        let cfg = ServeConfig {
            batch_size: 4,
            max_wait: Duration::from_millis(50),
            queue_cap: 4,
        };
        let batcher = Batcher::start(cfg, reg);
        // Far more than queue_cap submissions in a tight loop: some must
        // shed (the worker can't drain 64 batches instantly).
        let mut shed = 0;
        let mut rxs = Vec::new();
        for _ in 0..64 {
            match batcher.submit(0, Mode::F32, Payload::F32(vec![0.5; input_len])) {
                Ok(rx) => rxs.push(rx),
                Err(SubmitError::Overloaded) => shed += 1,
                Err(SubmitError::ShuttingDown) => unreachable!(),
            }
        }
        assert!(shed > 0, "expected shedding under 16x overload");
        for rx in rxs {
            rx.recv().expect("admitted requests still complete");
        }
        batcher.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let (reg, input_len, _) = tiny_registry(3);
        let cfg = ServeConfig {
            batch_size: 4,
            // Long deadline: queued singles would otherwise linger.
            max_wait: Duration::from_secs(5),
            queue_cap: 64,
        };
        let batcher = Batcher::start(cfg, reg);
        let rxs: Vec<_> = (0..7)
            .map(|_| {
                batcher
                    .submit(0, Mode::F32, Payload::F32(vec![0.25; input_len]))
                    .unwrap()
            })
            .collect();
        batcher.shutdown();
        for rx in rxs {
            rx.recv().expect("shutdown drains in-flight requests");
        }
        assert!(matches!(
            batcher.submit(0, Mode::F32, Payload::F32(vec![0.0; input_len])),
            Err(SubmitError::ShuttingDown)
        ));
    }

    #[test]
    fn stale_singles_dispatch_at_the_deadline() {
        let (reg, input_len, _) = tiny_registry(4);
        let cfg = ServeConfig {
            batch_size: 64,
            max_wait: Duration::from_millis(5),
            queue_cap: 64,
        };
        let batcher = Batcher::start(cfg, reg);
        let rx = batcher
            .submit(0, Mode::F32, Payload::F32(vec![0.1; input_len]))
            .unwrap();
        // A single request must complete despite never filling the batch.
        let out = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("deadline dispatch");
        assert!(!out.is_empty());
        batcher.shutdown();
    }
}
