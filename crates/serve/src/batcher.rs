//! The dynamic micro-batching scheduler — one instance per shard.
//!
//! Requests enter a bounded queue; the shard's batch worker thread
//! groups same-entry, same-mode neighbours into batches and runs them
//! through the engine. A batch dispatches as soon as either
//!
//! - it is **full** — `batch_size` compatible requests are queued, or
//! - it is **stale** — `max_wait` has elapsed since its oldest request
//!   arrived (so a lone request never waits longer than the deadline).
//!
//! Admission control is strict: a request arriving while the queue holds
//! `queue_cap` entries is shed immediately ([`SubmitError::Overloaded`])
//! rather than buffered — the caller turns that into an explicit
//! `overloaded` reply, keeping tail latency bounded under overload.
//!
//! Every queued request carries the `Arc<ModelEntry>` it resolved at
//! admission, so a registry hot-swap mid-queue is harmless: the request
//! executes on the version it was admitted against. Batches group by
//! **entry identity** (the `Arc` pointer), not by name — requests
//! straddling a version flip land in separate batches and never mix
//! versions.
//!
//! Replies leave through a `ReplySink`: an `mpsc` channel for direct
//! embedders and tests, or a connection's sequenced output buffer for
//! the sharded server (the worker encodes the wire frame itself, off
//! the event loop).
//!
//! Shutdown is graceful: [`Batcher::begin_drain`] stops admissions, the
//! worker drains every queued request (still batched, no deadline
//! waits), and [`Batcher::shutdown`] joins it — zero queued requests are
//! dropped.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use telemetry::flight::{
    FlightRecord, STAMP_BATCH, STAMP_ENQUEUE, STAMP_FLUSH, STAMP_INFER_END, STAMP_INFER_START,
};

use crate::config::ServeConfig;
use crate::conn::ConnShared;
use crate::metrics;
use crate::protocol::{self, Payload, Response};
use crate::quota::QuotaGuard;
use crate::registry::{Mode, ModelEntry};

/// Why a request was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; the request was shed.
    Overloaded,
    /// The batcher is draining and admits nothing new.
    ShuttingDown,
}

/// Where a completed request's output goes.
pub(crate) enum ReplySink {
    /// Hand the raw payload to a waiting thread (tests, embedders).
    Channel(mpsc::Sender<Payload>),
    /// Encode the wire response and deposit it in the connection's
    /// sequenced output buffer.
    Conn {
        /// The connection's shared output half.
        conn: Arc<ConnShared>,
        /// The response slot allocated at parse time.
        seq: u64,
        /// Encode as a JSON line instead of a binary frame.
        json: bool,
    },
}

impl ReplySink {
    /// Delivers a successful output through the sink, carrying the
    /// request's flight record along. A connection sink finalizes the
    /// trace when the bytes actually flush; a channel sink has no socket,
    /// so the trace completes (and feeds the stage histograms) at send.
    fn deliver(self, output: Payload, trace: Option<FlightRecord>) {
        match self {
            ReplySink::Channel(tx) => {
                if let Some(mut rec) = trace {
                    rec.stamps_ns[STAMP_FLUSH] = telemetry::flight::now_ns();
                    metrics::record_stages(&rec);
                }
                // A receiver dropped mid-flight (client hung up) is fine.
                let _ = tx.send(output);
            }
            ReplySink::Conn { conn, seq, json } => {
                let resp = Response::Output(output);
                conn.push_reply(seq, encode_for_wire(&resp, json), trace);
            }
        }
    }
}

/// Encodes a response as its on-the-wire bytes: a length-prefixed binary
/// frame, or a newline-terminated JSON line.
pub(crate) fn encode_for_wire(resp: &Response, json: bool) -> Vec<u8> {
    if json {
        let mut line = protocol::render_json_response(resp).into_bytes();
        line.push(b'\n');
        line
    } else {
        let body = protocol::encode_response(resp);
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(
            &u32::try_from(body.len())
                .expect("frame fits u32")
                .to_le_bytes(),
        );
        frame.extend_from_slice(&body);
        frame
    }
}

/// A queued request.
pub(crate) struct Pending {
    pub(crate) entry: Arc<ModelEntry>,
    pub(crate) mode: Mode,
    pub(crate) input: Payload,
    pub(crate) sink: ReplySink,
    /// Held until the reply is delivered; releases the tenant's slot.
    pub(crate) quota: Option<QuotaGuard>,
    pub(crate) enqueued: Instant,
    /// Lifecycle trace, stamped as the request moves through the
    /// scheduler. `None` when telemetry is off or the caller untraced.
    pub(crate) trace: Option<FlightRecord>,
}

/// Batch compatibility key: the *entry identity* (pointer) and mode.
fn key(p: &Pending) -> (usize, Mode) {
    (Arc::as_ptr(&p.entry) as usize, p.mode)
}

/// Publish the queue-depth gauges once per this many admissions. The
/// local high-water mark is still tracked on **every** admission (under
/// the already-held queue lock), so the published peak never misses the
/// true maximum — it just reaches the registry a little later.
const GAUGE_SAMPLE: u64 = 16;

struct State {
    queue: VecDeque<Pending>,
    shutting_down: bool,
    /// Admissions since start; drives gauge sampling.
    admitted: u64,
    /// High-water mark of the queue, tracked locally per admission and
    /// published to [`metrics::QUEUE_PEAK`] every [`GAUGE_SAMPLE`]
    /// admissions and at every dispatch.
    peak: usize,
}

struct Shared {
    cfg: ServeConfig,
    state: Mutex<State>,
    cv: Condvar,
    /// Batch ids handed out at formation time, tagged into traces.
    batch_seq: AtomicU32,
}

/// Handle to one shard's scheduler: submit requests, then drain and join.
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Batcher {
    /// Spawns the batch worker. Models arrive per request as resolved
    /// [`ModelEntry`] references, so the batcher itself holds no
    /// registry state.
    pub fn start(cfg: ServeConfig) -> Batcher {
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutting_down: false,
                admitted: 0,
                peak: 0,
            }),
            cv: Condvar::new(),
            batch_seq: AtomicU32::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("serve-batcher".into())
            .spawn(move || worker_loop(&worker_shared))
            .expect("spawn batch worker");
        Batcher {
            shared,
            worker: Mutex::new(Some(worker)),
        }
    }

    /// Submits one request with a channel reply. On admission, the reply
    /// (the model output, same payload variant as the input) arrives on
    /// the returned receiver; a receiver whose sender was dropped means
    /// the batcher shut down before executing the request.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the queue is at capacity,
    /// [`SubmitError::ShuttingDown`] after draining began.
    pub fn submit(
        &self,
        entry: Arc<ModelEntry>,
        mode: Mode,
        input: Payload,
    ) -> Result<mpsc::Receiver<Payload>, SubmitError> {
        let (tx, rx) = mpsc::channel();
        self.submit_sink(entry, mode, input, ReplySink::Channel(tx), None, None)?;
        Ok(rx)
    }

    /// Submits one request with an arbitrary sink (the sharded server's
    /// entry point). A traced request gets its `enqueue` stamp here.
    pub(crate) fn submit_sink(
        &self,
        entry: Arc<ModelEntry>,
        mode: Mode,
        input: Payload,
        sink: ReplySink,
        quota: Option<QuotaGuard>,
        mut trace: Option<FlightRecord>,
    ) -> Result<(), SubmitError> {
        let mut st = self.shared.state.lock().expect("batcher lock");
        if st.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if st.queue.len() >= self.shared.cfg.queue_cap {
            metrics::SHED.add(1);
            return Err(SubmitError::Overloaded);
        }
        if let Some(rec) = trace.as_mut() {
            rec.stamps_ns[STAMP_ENQUEUE] = telemetry::flight::now_ns();
        }
        st.queue.push_back(Pending {
            entry,
            mode,
            input,
            sink,
            quota,
            enqueued: Instant::now(),
            trace,
        });
        metrics::ACCEPTED.add(1);
        let depth = st.queue.len();
        st.peak = st.peak.max(depth);
        st.admitted += 1;
        // Keep the gauge updates off the per-enqueue hot path: publish
        // every GAUGE_SAMPLE admissions (the worker also publishes at
        // every dispatch, so the high-water mark always lands).
        if st.admitted.is_multiple_of(GAUGE_SAMPLE) {
            metrics::QUEUE_DEPTH.set(depth as f64);
            metrics::QUEUE_PEAK.set_max(st.peak as f64);
        }
        drop(st);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Current queue depth (for tests and load generators).
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().expect("batcher lock").queue.len()
    }

    /// Stops admissions and tells the worker to drain without deadline
    /// waits. Non-blocking and idempotent; pair with
    /// [`Batcher::is_drained`] / [`Batcher::shutdown`].
    pub fn begin_drain(&self) {
        {
            let mut st = self.shared.state.lock().expect("batcher lock");
            st.shutting_down = true;
        }
        self.shared.cv.notify_all();
    }

    /// Whether the worker has finished draining and exited.
    pub fn is_drained(&self) -> bool {
        self.worker
            .lock()
            .expect("worker lock")
            .as_ref()
            .is_none_or(std::thread::JoinHandle::is_finished)
    }

    /// Stops admissions, drains every queued request through the engine,
    /// and joins the worker. Idempotent.
    pub fn shutdown(&self) {
        self.begin_drain();
        if let Some(handle) = self.worker.lock().expect("worker lock").take() {
            handle.join().expect("batch worker panicked");
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Takes up to `cap` requests compatible with the queue front's
/// (entry, mode) key, preserving arrival order and leaving incompatible
/// requests queued.
fn take_batch(queue: &mut VecDeque<Pending>, cap: usize) -> Vec<Pending> {
    let Some(front) = queue.front() else {
        return Vec::new();
    };
    let k = key(front);
    let mut batch = Vec::new();
    let mut i = 0;
    while i < queue.len() && batch.len() < cap {
        if key(&queue[i]) == k {
            batch.push(queue.remove(i).expect("index in bounds"));
        } else {
            i += 1;
        }
    }
    batch
}

/// Counts queued requests matching the queue front's (entry, mode) key.
fn matching_front(queue: &VecDeque<Pending>) -> usize {
    match queue.front() {
        None => 0,
        Some(front) => {
            let k = key(front);
            queue.iter().filter(|p| key(p) == k).count()
        }
    }
}

fn worker_loop(shared: &Shared) {
    let cfg = shared.cfg;
    loop {
        let batch = {
            let mut st = shared.state.lock().expect("batcher lock");
            loop {
                if st.queue.is_empty() {
                    if st.shutting_down {
                        return;
                    }
                    st = shared.cv.wait(st).expect("batcher lock");
                    continue;
                }
                // Dispatch when full, stale, or draining.
                let full = matching_front(&st.queue) >= cfg.batch_size;
                let oldest = st.queue.front().expect("non-empty").enqueued;
                let age = oldest.elapsed();
                if full || st.shutting_down || age >= cfg.max_wait {
                    let mut batch = take_batch(&mut st.queue, cfg.batch_size);
                    metrics::QUEUE_DEPTH.set(st.queue.len() as f64);
                    metrics::QUEUE_PEAK.set_max(st.peak as f64);
                    if batch.iter().any(|p| p.trace.is_some()) {
                        let bid = shared.batch_seq.fetch_add(1, Ordering::Relaxed);
                        let formed = telemetry::flight::now_ns();
                        for rec in batch.iter_mut().filter_map(|p| p.trace.as_mut()) {
                            rec.batch = bid;
                            rec.stamps_ns[STAMP_BATCH] = formed;
                        }
                    }
                    break batch;
                }
                // Sleep until the front request's deadline; a new arrival
                // (which may complete the batch) wakes us early.
                let remaining = cfg.max_wait - age;
                let (guard, _timeout) =
                    shared.cv.wait_timeout(st, remaining).expect("batcher lock");
                st = guard;
            }
        };
        execute(batch);
    }
}

/// Runs one batch through the engine and delivers the replies.
pub(crate) fn execute(mut batch: Vec<Pending>) {
    if batch.is_empty() {
        return;
    }
    metrics::BATCH_SIZE.record(batch.len() as u64);
    let entry = Arc::clone(&batch[0].entry);
    if batch.iter().any(|p| p.trace.is_some()) {
        let t = telemetry::flight::now_ns();
        for rec in batch.iter_mut().filter_map(|p| p.trace.as_mut()) {
            rec.stamps_ns[STAMP_INFER_START] = t;
        }
    }
    let start = Instant::now();
    let outputs: Vec<Payload> = match batch[0].mode {
        Mode::F32 => {
            let samples: Vec<Vec<f32>> = batch
                .iter()
                .map(|p| match &p.input {
                    Payload::F32(v) => v.clone(),
                    Payload::Fx(_) => unreachable!("mode/payload mismatch"),
                })
                .collect();
            entry
                .forward_f32_batch(&samples)
                .into_iter()
                .map(Payload::F32)
                .collect()
        }
        Mode::Fx => {
            // Flatten the payloads straight into the packed container —
            // no per-sample row clones; the i16 lanes ride the FxBatch
            // through every layer and only split back into rows for the
            // per-request replies.
            let fx = entry.fx().expect("fx mode unavailable");
            let (q, sample_len) = (fx.qformat(), fx.input_len());
            let mut flat = Vec::with_capacity(batch.len() * sample_len);
            for p in &batch {
                match &p.input {
                    Payload::Fx(v) => flat.extend_from_slice(v),
                    Payload::F32(_) => unreachable!("mode/payload mismatch"),
                }
            }
            let packed = hwsim::FxBatch::from_flat(q, batch.len(), sample_len, flat);
            entry
                .forward_fx_batch_packed(packed)
                .into_rows()
                .into_iter()
                .map(Payload::Fx)
                .collect()
        }
    };
    let exec_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    metrics::BATCH_EXEC.record(exec_ns);
    if batch.iter().any(|p| p.trace.is_some()) {
        let t = telemetry::flight::now_ns();
        for rec in batch.iter_mut().filter_map(|p| p.trace.as_mut()) {
            rec.stamps_ns[STAMP_INFER_END] = t;
        }
    }
    for (pending, output) in batch.into_iter().zip(outputs) {
        let latency = pending.enqueued.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        metrics::LATENCY.record(latency);
        metrics::COMPLETED.add(1);
        pending.sink.deliver(output, pending.trace);
        // The quota guard drops here: the slot frees as the reply lands.
        drop(pending.quota);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Model, Registry};
    use nn::layers::{BcmConv2d, ReLU};
    use nn::{CheckpointMeta, Network};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::time::Duration;

    fn tiny_entry(seed: u64) -> (Arc<ModelEntry>, usize, usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Network::new(
            "tiny",
            vec![
                Box::new(BcmConv2d::new(&mut rng, 4, 4, 3, 1, 1, 4)),
                Box::new(ReLU::new()),
            ],
        );
        let meta = CheckpointMeta {
            input_dims: vec![4, 4, 4],
            frac_bits: 8,
        };
        let reg = Registry::new();
        let entry = reg.publish(Model::from_network("tiny", net, meta));
        let input_len = entry.input_len();
        let output_len = entry.output_len();
        (entry, input_len, output_len)
    }

    #[test]
    fn requests_get_replies() {
        let (entry, input_len, output_len) = tiny_entry(1);
        let batcher = Batcher::start(ServeConfig::default());
        let rxs: Vec<_> = (0..5)
            .map(|i| {
                batcher
                    .submit(
                        Arc::clone(&entry),
                        Mode::F32,
                        Payload::F32(vec![i as f32 * 0.1; input_len]),
                    )
                    .unwrap()
            })
            .collect();
        for rx in rxs {
            let out = rx.recv().expect("reply");
            assert_eq!(out.len(), output_len);
        }
        batcher.shutdown();
    }

    #[test]
    fn overload_sheds_instead_of_buffering() {
        let (entry, input_len, _) = tiny_entry(2);
        let cfg = ServeConfig {
            batch_size: 4,
            max_wait: Duration::from_millis(50),
            queue_cap: 4,
            ..ServeConfig::default()
        };
        let batcher = Batcher::start(cfg);
        // Far more than queue_cap submissions in a tight loop: some must
        // shed (the worker can't drain 64 batches instantly).
        let mut shed = 0;
        let mut rxs = Vec::new();
        for _ in 0..64 {
            match batcher.submit(
                Arc::clone(&entry),
                Mode::F32,
                Payload::F32(vec![0.5; input_len]),
            ) {
                Ok(rx) => rxs.push(rx),
                Err(SubmitError::Overloaded) => shed += 1,
                Err(SubmitError::ShuttingDown) => unreachable!(),
            }
        }
        assert!(shed > 0, "expected shedding under 16x overload");
        for rx in rxs {
            rx.recv().expect("admitted requests still complete");
        }
        batcher.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let (entry, input_len, _) = tiny_entry(3);
        let cfg = ServeConfig {
            batch_size: 4,
            // Long deadline: queued singles would otherwise linger.
            max_wait: Duration::from_secs(5),
            queue_cap: 64,
            ..ServeConfig::default()
        };
        let batcher = Batcher::start(cfg);
        let rxs: Vec<_> = (0..7)
            .map(|_| {
                batcher
                    .submit(
                        Arc::clone(&entry),
                        Mode::F32,
                        Payload::F32(vec![0.25; input_len]),
                    )
                    .unwrap()
            })
            .collect();
        batcher.shutdown();
        for rx in rxs {
            rx.recv().expect("shutdown drains in-flight requests");
        }
        assert!(matches!(
            batcher.submit(entry, Mode::F32, Payload::F32(vec![0.0; input_len])),
            Err(SubmitError::ShuttingDown)
        ));
    }

    #[test]
    fn stale_singles_dispatch_at_the_deadline() {
        let (entry, input_len, _) = tiny_entry(4);
        let cfg = ServeConfig {
            batch_size: 64,
            max_wait: Duration::from_millis(5),
            queue_cap: 64,
            ..ServeConfig::default()
        };
        let batcher = Batcher::start(cfg);
        let rx = batcher
            .submit(entry, Mode::F32, Payload::F32(vec![0.1; input_len]))
            .unwrap();
        // A single request must complete despite never filling the batch.
        let out = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("deadline dispatch");
        assert!(!out.is_empty());
        batcher.shutdown();
    }

    #[test]
    fn batches_never_mix_entry_versions() {
        // Two versions of the same name: jobs group by entry identity.
        let (v1, input_len, _) = tiny_entry(5);
        let (v2, _, _) = tiny_entry(6);
        let mut queue: VecDeque<Pending> = VecDeque::new();
        for entry in [&v1, &v2, &v1, &v2] {
            let (tx, _rx) = mpsc::channel();
            queue.push_back(Pending {
                entry: Arc::clone(entry),
                mode: Mode::F32,
                input: Payload::F32(vec![0.0; input_len]),
                sink: ReplySink::Channel(tx),
                quota: None,
                enqueued: Instant::now(),
                trace: None,
            });
        }
        let batch = take_batch(&mut queue, 8);
        assert_eq!(batch.len(), 2, "only same-version jobs batch together");
        assert!(
            batch.iter().all(|p| Arc::ptr_eq(&p.entry, &v1)),
            "front key wins"
        );
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn sampled_gauges_still_capture_the_queue_high_water_mark() {
        telemetry::set_enabled(true);
        let (entry, input_len, _) = tiny_entry(7);
        let cfg = ServeConfig {
            // The batch never fills and never goes stale, so the queue
            // holds every submission until drain dispatches them.
            batch_size: 64,
            max_wait: Duration::from_secs(30),
            queue_cap: 64,
            ..ServeConfig::default()
        };
        let batcher = Batcher::start(cfg);
        // Fewer submissions than GAUGE_SAMPLE: the per-enqueue sampled
        // publish never fires, so only the dispatch-time publish can
        // surface the peak — which must still be the true high water.
        let depth = 5;
        assert!((depth as u64) < GAUGE_SAMPLE);
        let rxs: Vec<_> = (0..depth)
            .map(|_| {
                batcher
                    .submit(
                        Arc::clone(&entry),
                        Mode::F32,
                        Payload::F32(vec![0.5; input_len]),
                    )
                    .unwrap()
            })
            .collect();
        assert_eq!(batcher.queue_depth(), depth);
        batcher.shutdown();
        for rx in rxs {
            rx.recv().expect("drain executes queued requests");
        }
        if telemetry::enabled() {
            assert!(
                metrics::QUEUE_PEAK.value() >= depth as f64,
                "dispatch-time publish must land the high-water mark \
                 even when the admission sampling never fired"
            );
        }
    }
}
