//! A minimal blocking client for the binary protocol, plus a one-shot
//! JSON-mode helper. Used by the loopback tests, the `exp_serve` load
//! generator, and as the reference implementation for external clients.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{self, Payload, Request, Response, Status, WireError, HANDSHAKE};

/// A binary-mode connection to a serve instance.
pub struct Client {
    stream: TcpStream,
}

/// A client-visible request failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Wire(WireError),
    /// The server answered with a non-`ok` status.
    Rejected(Status, String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Rejected(status, msg) => {
                write!(f, "server replied {}: {msg}", status.name())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

impl Client {
    /// Connects and performs the binary-mode handshake.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.write_all(&HANDSHAKE)?;
        stream.flush()?;
        Ok(Client { stream })
    }

    fn round_trip(&mut self, req: &Request, fx: bool) -> Result<Response, ClientError> {
        protocol::write_frame(&mut self.stream, &protocol::encode_request(req))?;
        let reply = protocol::read_frame(&mut self.stream)?;
        Ok(protocol::decode_response(&reply, fx)?)
    }

    fn expect_output(resp: Response) -> Result<Payload, ClientError> {
        match resp {
            Response::Output(p) => Ok(p),
            Response::Error(status, msg) => Err(ClientError::Rejected(status, msg)),
            Response::Stats(_) | Response::Session { .. } => Err(ClientError::Wire(
                WireError::Malformed("mistyped reply to payload request".into()),
            )),
        }
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or a non-`ok` reply.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let resp = self.round_trip(&Request::Ping, false)?;
        Self::expect_output(resp).map(|_| ())
    }

    /// Runs one float sample through `model` on the spectral fast path.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] carries explicit `overloaded` /
    /// `shutting_down` / validation statuses.
    pub fn infer_f32(&mut self, model: &str, input: &[f32]) -> Result<Vec<f32>, ClientError> {
        let req = Request::Infer {
            model: model.to_string(),
            input: Payload::F32(input.to_vec()),
        };
        match Self::expect_output(self.round_trip(&req, false)?)? {
            Payload::F32(v) => Ok(v),
            Payload::Fx(_) => Err(ClientError::Wire(WireError::Malformed(
                "fx reply to f32 request".into(),
            ))),
        }
    }

    /// Runs one fixed-point sample through `model` on the hwsim datapath.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] carries explicit `overloaded` /
    /// `shutting_down` / validation statuses.
    pub fn infer_fx(&mut self, model: &str, input: &[i16]) -> Result<Vec<i16>, ClientError> {
        let req = Request::Infer {
            model: model.to_string(),
            input: Payload::Fx(input.to_vec()),
        };
        match Self::expect_output(self.round_trip(&req, true)?)? {
            Payload::Fx(v) => Ok(v),
            Payload::F32(_) => Err(ClientError::Wire(WireError::Malformed(
                "f32 reply to fx request".into(),
            ))),
        }
    }

    /// Declares this connection's tenant for quota accounting. Connections
    /// that never say hello are accounted under the anonymous tenant `""`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or a non-`ok` reply.
    pub fn hello(&mut self, tenant: &str) -> Result<(), ClientError> {
        let req = Request::Hello {
            tenant: tenant.to_string(),
        };
        let resp = self.round_trip(&req, false)?;
        Self::expect_output(resp).map(|_| ())
    }

    /// Asks the server to shut down (the host decides when to act on it).
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or a non-`ok` reply.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let resp = self.round_trip(&Request::Shutdown, false)?;
        Self::expect_output(resp).map(|_| ())
    }

    /// Fetches the server's versioned stats snapshot — a JSON document
    /// with the configuration, model catalog, quota state, per-shard
    /// queue depth and stage-latency summaries, and the full telemetry
    /// report (see `docs/PROTOCOL.md` §3.4).
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport failure or a non-`ok` reply.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        protocol::write_frame(&mut self.stream, &protocol::encode_request(&Request::Stats))?;
        let reply = protocol::read_frame(&mut self.stream)?;
        match protocol::decode_stats_response(&reply)? {
            Response::Stats(doc) => Ok(doc),
            Response::Error(status, msg) => Err(ClientError::Rejected(status, msg)),
            _ => Err(ClientError::Wire(WireError::Malformed(
                "mistyped reply to stats request".into(),
            ))),
        }
    }

    /// Opens a stateful streaming session against `model`. Returns the
    /// session id and the model version the session is pinned to — later
    /// hot swaps (`Registry::publish`) never affect an open session.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] with `bad_request` when the model has no
    /// streaming form (e.g. a convolutional stack), `unknown_model`,
    /// `overloaded` at the session cap, or `quota_exceeded`.
    pub fn open_session(&mut self, model: &str, fx: bool) -> Result<(u64, u64), ClientError> {
        let req = Request::SessionOpen {
            model: model.to_string(),
            fx,
        };
        protocol::write_frame(&mut self.stream, &protocol::encode_request(&req))?;
        let reply = protocol::read_frame(&mut self.stream)?;
        match protocol::decode_session_response(&reply)? {
            Response::Session { session, version } => Ok((session, version)),
            Response::Error(status, msg) => Err(ClientError::Rejected(status, msg)),
            _ => Err(ClientError::Wire(WireError::Malformed(
                "mistyped reply to session_open".into(),
            ))),
        }
    }

    /// Advances a float session by one timestep and returns the per-step
    /// output (head logits, or the last hidden state for headless nets).
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] with `bad_request` on unknown/expired
    /// session ids, mode mismatches, or a wrong input width.
    pub fn session_step_f32(&mut self, session: u64, x: &[f32]) -> Result<Vec<f32>, ClientError> {
        let req = Request::SessionStep {
            session,
            input: Payload::F32(x.to_vec()),
        };
        match Self::expect_output(self.round_trip(&req, false)?)? {
            Payload::F32(v) => Ok(v),
            Payload::Fx(_) => Err(ClientError::Wire(WireError::Malformed(
                "fx reply to f32 session step".into(),
            ))),
        }
    }

    /// Advances a fixed-point session by one timestep.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] with `bad_request` on unknown/expired
    /// session ids, mode mismatches, or a wrong input width.
    pub fn session_step_fx(&mut self, session: u64, x: &[i16]) -> Result<Vec<i16>, ClientError> {
        let req = Request::SessionStep {
            session,
            input: Payload::Fx(x.to_vec()),
        };
        match Self::expect_output(self.round_trip(&req, true)?)? {
            Payload::Fx(v) => Ok(v),
            Payload::F32(_) => Err(ClientError::Wire(WireError::Malformed(
                "f32 reply to fx session step".into(),
            ))),
        }
    }

    /// Closes a session, releasing its server-side state and quota slot.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] with `bad_request` when the id is
    /// unknown (or already expired).
    pub fn close_session(&mut self, session: u64) -> Result<(), ClientError> {
        let resp = self.round_trip(&Request::SessionClose { session }, false)?;
        Self::expect_output(resp).map(|_| ())
    }
}

/// Sends one JSON-mode request line and returns the raw response line —
/// the debugging path, e.g.
/// `json_round_trip(addr, r#"{"op":"ping"}"#)`.
///
/// # Errors
///
/// Propagates socket errors; a missing response line surfaces as
/// [`WireError::Closed`].
pub fn json_round_trip(addr: impl ToSocketAddrs, line: &str) -> Result<String, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    if reader.read_line(&mut reply)? == 0 {
        return Err(ClientError::Wire(WireError::Closed));
    }
    Ok(reply.trim_end().to_string())
}
