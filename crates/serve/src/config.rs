//! Serving configuration and its `RPBCM_SERVE_*` environment knobs.

use std::time::Duration;

/// Tunables of the sharded reactor and micro-batching scheduler.
///
/// Defaults come from [`ServeConfig::default`]; [`ServeConfig::from_env`]
/// overlays the `RPBCM_SERVE_*` environment variables (parsed through
/// [`telemetry::env`], so malformed values fall back with a one-line
/// warning instead of panicking):
///
/// | Variable                   | Meaning                             | Default |
/// |----------------------------|-------------------------------------|---------|
/// | `RPBCM_SERVE_BATCH`        | max batch size B                    | 8       |
/// | `RPBCM_SERVE_MAX_WAIT_US`  | batch-fill deadline T (µs)          | 2000    |
/// | `RPBCM_SERVE_QUEUE_CAP`    | per-shard admission queue bound     | 64      |
/// | `RPBCM_SERVE_SHARDS`       | reactor shard count                 | cores, capped at 8 |
/// | `RPBCM_SERVE_TENANT_QUOTA` | per-tenant in-flight cap (0 = none) | 0       |
/// | `RPBCM_SERVE_SLO_P99_US`   | p99 latency SLO (µs, 0 = off)       | 0       |
/// | `RPBCM_SERVE_SLO_SHED_PCT` | shed-rate SLO (%, 0 = off)          | 0       |
/// | `RPBCM_SERVE_SLO_DIR`      | flight-recorder dump directory      | `.`     |
/// | `RPBCM_SERVE_SESSION_TTL_MS` | idle-session expiry (ms, 0 = never) | 60000 |
/// | `RPBCM_SERVE_SESSION_CAP`  | max open sessions server-wide       | 1024    |
/// | `RPBCM_SERVE_SESSION_GANG` | session-gang lane width (≤1 = off)  | 8       |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum requests per dispatched batch (B). A batch launches as
    /// soon as B same-model, same-mode requests are queued.
    pub batch_size: usize,
    /// How long the scheduler holds an incomplete batch open after its
    /// first request arrives (T) before dispatching it short.
    pub max_wait: Duration,
    /// Bounded-queue admission limit **per shard**: a request arriving
    /// while the shard's queue holds this many entries is shed with an
    /// explicit `overloaded` reply instead of being buffered.
    pub queue_cap: usize,
    /// Reactor shard count. Each shard is one event-loop thread plus
    /// one batch worker; connections are dealt to shards round-robin.
    /// Clamped to at least 1.
    pub shards: usize,
    /// Per-tenant in-flight request cap. `0` disables enforcement
    /// (in-flight counts are still tracked); a positive value makes the
    /// `quota_exceeded` status live (see [`crate::quota`]).
    pub tenant_quota: usize,
    /// p99 request-latency SLO in microseconds. `0` disables the
    /// watchdog check; a positive value arms the SLO watchdog thread,
    /// which dumps a flight-recorder snapshot when the observed p99
    /// (over recent completed traces) exceeds it. Requires telemetry
    /// (`RPBCM_TELEMETRY=1`) — without it no traces are recorded and
    /// the watchdog sees nothing.
    pub slo_p99_us: usize,
    /// Shed-rate SLO in percent (shed / offered over the watchdog
    /// window). `0` disables the check; see [`ServeConfig::slo_p99_us`]
    /// for the telemetry requirement. The dump directory comes from
    /// `RPBCM_SERVE_SLO_DIR` (default: the working directory), read at
    /// dump time.
    pub slo_shed_pct: usize,
    /// Idle streaming-session time-to-live: a session untouched for this
    /// long is expired by its shard's sweep (its next `session_step`
    /// answers `bad_request`, and its quota slot is released). `0`
    /// disables expiry — sessions then live until closed or their
    /// connection drops.
    pub session_ttl: Duration,
    /// Server-wide cap on concurrently open streaming sessions; an open
    /// past the cap is refused with `overloaded`. Clamped to at least 1.
    pub session_cap: usize,
    /// Session-gang lane width: when a readiness burst delivers
    /// `session_step` frames for several live sessions on one shard,
    /// same-model-version same-mode steps are grouped into lane gangs of
    /// up to this many sessions and executed as one lane-form step
    /// (ragged tails allowed). `0` or `1` disables ganging — every step
    /// then runs scalar inline. Per-session replies are bit-identical
    /// either way; the knob only trades throughput.
    pub session_gang: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_size: 8,
            max_wait: Duration::from_micros(2000),
            queue_cap: 64,
            shards: default_shards(),
            tenant_quota: 0,
            slo_p99_us: 0,
            slo_shed_pct: 0,
            session_ttl: Duration::from_millis(60_000),
            session_cap: 1024,
            session_gang: 8,
        }
    }
}

/// One shard per available core, capped at 8 — past that, loopback
/// serving is batcher-bound, not reactor-bound.
fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

impl ServeConfig {
    /// The defaults overlaid with any `RPBCM_SERVE_*` variables set in
    /// the environment (see the type-level table).
    pub fn from_env() -> Self {
        let d = ServeConfig::default();
        ServeConfig {
            batch_size: telemetry::env::usize_or("RPBCM_SERVE_BATCH", d.batch_size).max(1),
            max_wait: Duration::from_micros(telemetry::env::usize_or(
                "RPBCM_SERVE_MAX_WAIT_US",
                d.max_wait.subsec_micros() as usize,
            ) as u64),
            queue_cap: telemetry::env::usize_or("RPBCM_SERVE_QUEUE_CAP", d.queue_cap).max(1),
            shards: telemetry::env::usize_or("RPBCM_SERVE_SHARDS", d.shards).max(1),
            tenant_quota: telemetry::env::usize_or("RPBCM_SERVE_TENANT_QUOTA", d.tenant_quota),
            slo_p99_us: telemetry::env::usize_or("RPBCM_SERVE_SLO_P99_US", d.slo_p99_us),
            slo_shed_pct: telemetry::env::usize_or("RPBCM_SERVE_SLO_SHED_PCT", d.slo_shed_pct),
            session_ttl: Duration::from_millis(telemetry::env::usize_or(
                "RPBCM_SERVE_SESSION_TTL_MS",
                d.session_ttl.as_millis() as usize,
            ) as u64),
            session_cap: telemetry::env::usize_or("RPBCM_SERVE_SESSION_CAP", d.session_cap).max(1),
            session_gang: telemetry::env::usize_or("RPBCM_SERVE_SESSION_GANG", d.session_gang),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.batch_size >= 1);
        assert!(c.queue_cap >= c.batch_size);
        assert!(c.max_wait > Duration::ZERO);
        assert!(c.shards >= 1);
        assert_eq!(c.tenant_quota, 0);
        assert_eq!(c.slo_p99_us, 0, "SLO watchdog is off by default");
        assert_eq!(c.slo_shed_pct, 0, "SLO watchdog is off by default");
        assert_eq!(c.session_ttl, Duration::from_millis(60_000));
        assert!(c.session_cap >= 1);
        assert_eq!(c.session_gang, 8, "lane gangs default to the PE width");
    }
}
