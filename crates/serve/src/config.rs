//! Serving configuration and its `RPBCM_SERVE_*` environment knobs.

use std::time::Duration;

/// Tunables of the sharded reactor and micro-batching scheduler.
///
/// Defaults come from [`ServeConfig::default`]; [`ServeConfig::from_env`]
/// overlays the `RPBCM_SERVE_*` environment variables (parsed through
/// [`telemetry::env`], so malformed values fall back with a one-line
/// warning instead of panicking):
///
/// | Variable                   | Meaning                             | Default |
/// |----------------------------|-------------------------------------|---------|
/// | `RPBCM_SERVE_BATCH`        | max batch size B                    | 8       |
/// | `RPBCM_SERVE_MAX_WAIT_US`  | batch-fill deadline T (µs)          | 2000    |
/// | `RPBCM_SERVE_QUEUE_CAP`    | per-shard admission queue bound     | 64      |
/// | `RPBCM_SERVE_SHARDS`       | reactor shard count                 | cores, capped at 8 |
/// | `RPBCM_SERVE_TENANT_QUOTA` | per-tenant in-flight cap (0 = none) | 0       |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum requests per dispatched batch (B). A batch launches as
    /// soon as B same-model, same-mode requests are queued.
    pub batch_size: usize,
    /// How long the scheduler holds an incomplete batch open after its
    /// first request arrives (T) before dispatching it short.
    pub max_wait: Duration,
    /// Bounded-queue admission limit **per shard**: a request arriving
    /// while the shard's queue holds this many entries is shed with an
    /// explicit `overloaded` reply instead of being buffered.
    pub queue_cap: usize,
    /// Reactor shard count. Each shard is one event-loop thread plus
    /// one batch worker; connections are dealt to shards round-robin.
    /// Clamped to at least 1.
    pub shards: usize,
    /// Per-tenant in-flight request cap. `0` disables enforcement
    /// (in-flight counts are still tracked); a positive value makes the
    /// `quota_exceeded` status live (see [`crate::quota`]).
    pub tenant_quota: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_size: 8,
            max_wait: Duration::from_micros(2000),
            queue_cap: 64,
            shards: default_shards(),
            tenant_quota: 0,
        }
    }
}

/// One shard per available core, capped at 8 — past that, loopback
/// serving is batcher-bound, not reactor-bound.
fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

impl ServeConfig {
    /// The defaults overlaid with any `RPBCM_SERVE_*` variables set in
    /// the environment (see the type-level table).
    pub fn from_env() -> Self {
        let d = ServeConfig::default();
        ServeConfig {
            batch_size: telemetry::env::usize_or("RPBCM_SERVE_BATCH", d.batch_size).max(1),
            max_wait: Duration::from_micros(telemetry::env::usize_or(
                "RPBCM_SERVE_MAX_WAIT_US",
                d.max_wait.subsec_micros() as usize,
            ) as u64),
            queue_cap: telemetry::env::usize_or("RPBCM_SERVE_QUEUE_CAP", d.queue_cap).max(1),
            shards: telemetry::env::usize_or("RPBCM_SERVE_SHARDS", d.shards).max(1),
            tenant_quota: telemetry::env::usize_or("RPBCM_SERVE_TENANT_QUOTA", d.tenant_quota),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.batch_size >= 1);
        assert!(c.queue_cap >= c.batch_size);
        assert!(c.max_wait > Duration::ZERO);
        assert!(c.shards >= 1);
        assert_eq!(c.tenant_quota, 0);
    }
}
