//! Per-connection response sequencing, shared between a shard's event
//! loop and the batch workers that complete its requests.
//!
//! The RPBS protocol promises clients that **responses arrive in request
//! order** — that is what lets them pipeline without request ids. In the
//! sharded server a connection's requests finish out of order (an inline
//! validation error is ready instantly; a batched inference lands
//! whenever its batch executes), so every request is assigned a sequence
//! number at parse time and its encoded reply is buffered in a
//! `ConnShared` until all earlier replies are buffered too. Only the
//! contiguous run from the front is ever written to the socket.
//!
//! All socket *writes* stay on the shard thread that owns the
//! connection; batch workers only deposit bytes here and ring the
//! shard's `Notifier`.

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use telemetry::flight::{FlightRecord, FlightRing, STAMP_FLUSH};

use crate::metrics;
use crate::reactor::Waker;

/// Compact the write buffer once this many consumed bytes accumulate at
/// its front.
const COMPACT_AT: usize = 64 << 10;

/// A shard's cross-thread completion mailbox: batch workers mark the
/// connections they completed replies for, then wake the shard's poller.
pub(crate) struct Notifier {
    dirty: Mutex<Vec<usize>>,
    waker: Waker,
}

impl Notifier {
    pub(crate) fn new(waker: Waker) -> Arc<Notifier> {
        Arc::new(Notifier {
            dirty: Mutex::new(Vec::new()),
            waker,
        })
    }

    /// Records that `token`'s connection has new bytes to flush and wakes
    /// the shard. Duplicate marks coalesce at drain time.
    pub(crate) fn mark_dirty(&self, token: usize) {
        self.dirty.lock().expect("notifier lock").push(token);
        self.waker.wake();
    }

    /// Takes the set of connections marked since the last drain.
    pub(crate) fn take_dirty(&self) -> Vec<usize> {
        std::mem::take(&mut *self.dirty.lock().expect("notifier lock"))
    }

    /// Wakes the shard without marking any connection (used for shutdown
    /// and new-connection handoff).
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }

    /// Drains coalesced wake bytes (shard thread only).
    pub(crate) fn drain_wakes(&self) {
        self.waker.drain();
    }
}

struct OutQueue {
    /// Next sequence number to hand out at request parse time.
    next_seq: u64,
    /// The sequence number the next flushed reply must carry.
    next_flush: u64,
    /// Completed replies waiting for their predecessors, each with the
    /// flight record to finalize once its bytes hit the socket.
    pending: BTreeMap<u64, (Vec<u8>, Option<FlightRecord>)>,
    /// Wire-ready bytes in send order.
    buf: Vec<u8>,
    /// Bytes of `buf` already written to the socket.
    off: usize,
    /// Absolute stream offset of `buf[0]` (total bytes ever promoted
    /// minus what `buf` still holds) — lets traced replies be matched
    /// against flush progress across compactions.
    base: u64,
    /// Traced replies promoted into `buf`, in send order: the absolute
    /// stream offset at which each reply's last byte will have been
    /// written, and its flight record awaiting the final stamp.
    inflight: VecDeque<(u64, FlightRecord)>,
}

/// The half of a connection that batch workers can touch: sequence
/// allocation and ordered reply buffering. The shard thread keeps the
/// socket itself and is the only writer.
pub(crate) struct ConnShared {
    token: usize,
    notifier: Arc<Notifier>,
    /// The owning shard's flight-recorder ring; completed traces land
    /// here once their reply bytes reach the socket.
    ring: Arc<FlightRing>,
    out: Mutex<OutQueue>,
}

impl ConnShared {
    pub(crate) fn new(
        token: usize,
        notifier: Arc<Notifier>,
        ring: Arc<FlightRing>,
    ) -> Arc<ConnShared> {
        Arc::new(ConnShared {
            token,
            notifier,
            ring,
            out: Mutex::new(OutQueue {
                next_seq: 0,
                next_flush: 0,
                pending: BTreeMap::new(),
                buf: Vec::new(),
                off: 0,
                base: 0,
                inflight: VecDeque::new(),
            }),
        })
    }

    /// The poller token of the owning connection.
    pub(crate) fn token(&self) -> usize {
        self.token
    }

    /// Assigns the next response slot. Every allocated slot must
    /// eventually receive exactly one [`ConnShared::push_reply`], or the
    /// connection's output wedges behind the gap.
    pub(crate) fn alloc_seq(&self) -> u64 {
        let mut out = self.out.lock().expect("conn out lock");
        let seq = out.next_seq;
        out.next_seq += 1;
        seq
    }

    /// Deposits the encoded reply for slot `seq` (with the request's
    /// flight record, if it is being traced), moves the contiguous run
    /// into the write buffer, and marks the connection dirty. Traced
    /// replies get their `reply_flushed` stamp when [`ConnShared::flush`]
    /// later confirms the bytes left for the socket.
    pub(crate) fn push_reply(&self, seq: u64, frame: Vec<u8>, trace: Option<FlightRecord>) {
        {
            let mut out = self.out.lock().expect("conn out lock");
            out.pending.insert(seq, (frame, trace));
            while let Some((frame, trace)) = {
                let next = out.next_flush;
                out.pending.remove(&next)
            } {
                out.buf.extend_from_slice(&frame);
                out.next_flush += 1;
                if let Some(rec) = trace {
                    let end = out.base + out.buf.len() as u64;
                    out.inflight.push_back((end, rec));
                }
            }
        }
        self.notifier.mark_dirty(self.token);
    }

    /// Writes as much buffered output as the socket accepts right now.
    /// Returns `Ok(true)` when the buffer emptied, `Ok(false)` when the
    /// socket backpressured (`WouldBlock`) — the caller should add
    /// writable interest and retry on the writable event.
    ///
    /// # Errors
    ///
    /// Socket errors other than `WouldBlock` (the connection is dead).
    pub(crate) fn flush(&self, stream: &mut impl Write) -> io::Result<bool> {
        let mut out = self.out.lock().expect("conn out lock");
        while out.off < out.buf.len() {
            match stream.write(&out.buf[out.off..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => out.off += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.finalize_flushed(&mut out);
        if out.off == out.buf.len() {
            let len = out.buf.len() as u64;
            out.base += len;
            out.buf.clear();
            out.off = 0;
            Ok(true)
        } else {
            if out.off >= COMPACT_AT {
                let off = out.off;
                out.buf.drain(..off);
                out.base += off as u64;
                out.off = 0;
            }
            Ok(false)
        }
    }

    /// Stamps `reply_flushed` on every traced reply whose bytes have now
    /// been handed to the socket, feeds the completed record into the
    /// `serve.stage.*` histograms, and pushes it into the shard's flight
    /// ring. Replies still owed to a dead connection never get here, so
    /// incomplete traces are dropped rather than recorded.
    fn finalize_flushed(&self, out: &mut OutQueue) {
        let flushed = out.base + out.off as u64;
        while out.inflight.front().is_some_and(|(end, _)| *end <= flushed) {
            let (_, mut rec) = out.inflight.pop_front().expect("checked front");
            rec.stamps_ns[STAMP_FLUSH] = telemetry::flight::now_ns();
            metrics::record_stages(&rec);
            self.ring.push(&rec);
        }
    }

    /// Whether any reply is still buffered or still owed to an allocated
    /// slot — i.e. the connection cannot be closed without dropping a
    /// response.
    pub(crate) fn has_backlog(&self) -> bool {
        let out = self.out.lock().expect("conn out lock");
        out.off < out.buf.len() || !out.pending.is_empty() || out.next_flush < out.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactor::Poller;

    fn shared() -> Arc<ConnShared> {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new(&mut poller).unwrap();
        let ring = Arc::new(FlightRing::new(16));
        ConnShared::new(1, Notifier::new(waker), ring)
    }

    #[test]
    fn out_of_order_replies_flush_in_sequence_order() {
        let conn = shared();
        let a = conn.alloc_seq();
        let b = conn.alloc_seq();
        let c = conn.alloc_seq();
        conn.push_reply(c, vec![3], None);
        conn.push_reply(a, vec![1], None);
        assert!(conn.has_backlog());
        let mut wire = Vec::new();
        // Only the contiguous run (reply 1) may flush while 2 is owed.
        assert!(conn.flush(&mut wire).unwrap());
        assert_eq!(wire, vec![1]);
        conn.push_reply(b, vec![2], None);
        assert!(conn.flush(&mut wire).unwrap());
        assert_eq!(wire, vec![1, 2, 3]);
        assert!(!conn.has_backlog());
    }

    #[test]
    fn allocated_but_unanswered_slots_count_as_backlog() {
        let conn = shared();
        let _gap = conn.alloc_seq();
        assert!(conn.has_backlog());
    }

    #[test]
    fn traced_replies_land_in_the_ring_only_after_their_bytes_flush() {
        telemetry::set_enabled(true);
        let conn = shared();
        let a = conn.alloc_seq();
        let b = conn.alloc_seq();
        let mut rec = FlightRecord {
            trace_id: 42,
            ..FlightRecord::default()
        };
        for s in 0..STAMP_FLUSH {
            rec.stamps_ns[s] = (s + 1) as u64;
        }
        // Reply `b` is traced but sequenced behind the untraced `a`, so
        // nothing may finalize until both frames reach the socket.
        conn.push_reply(b, vec![9, 9], Some(rec));
        let mut wire = Vec::new();
        assert!(conn.flush(&mut wire).unwrap());
        assert!(wire.is_empty());
        if telemetry::enabled() {
            assert_eq!(conn.ring.snapshot().len(), 0);
        }
        conn.push_reply(a, vec![7], None);
        assert!(conn.flush(&mut wire).unwrap());
        assert_eq!(wire, vec![7, 9, 9]);
        if telemetry::enabled() {
            let recs = conn.ring.snapshot();
            assert_eq!(recs.len(), 1);
            assert_eq!(recs[0].trace_id, 42);
            assert!(recs[0].is_complete(), "flush stamped the final stage");
        }
        // Leave telemetry enabled: other tests in this binary assert
        // monotonic gauges and clearing the override mid-run would race.
    }
}
