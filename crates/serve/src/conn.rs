//! Per-connection response sequencing, shared between a shard's event
//! loop and the batch workers that complete its requests.
//!
//! The RPBS protocol promises clients that **responses arrive in request
//! order** — that is what lets them pipeline without request ids. In the
//! sharded server a connection's requests finish out of order (an inline
//! validation error is ready instantly; a batched inference lands
//! whenever its batch executes), so every request is assigned a sequence
//! number at parse time and its encoded reply is buffered in a
//! `ConnShared` until all earlier replies are buffered too. Only the
//! contiguous run from the front is ever written to the socket.
//!
//! All socket *writes* stay on the shard thread that owns the
//! connection; batch workers only deposit bytes here and ring the
//! shard's `Notifier`.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use crate::reactor::Waker;

/// Compact the write buffer once this many consumed bytes accumulate at
/// its front.
const COMPACT_AT: usize = 64 << 10;

/// A shard's cross-thread completion mailbox: batch workers mark the
/// connections they completed replies for, then wake the shard's poller.
pub(crate) struct Notifier {
    dirty: Mutex<Vec<usize>>,
    waker: Waker,
}

impl Notifier {
    pub(crate) fn new(waker: Waker) -> Arc<Notifier> {
        Arc::new(Notifier {
            dirty: Mutex::new(Vec::new()),
            waker,
        })
    }

    /// Records that `token`'s connection has new bytes to flush and wakes
    /// the shard. Duplicate marks coalesce at drain time.
    pub(crate) fn mark_dirty(&self, token: usize) {
        self.dirty.lock().expect("notifier lock").push(token);
        self.waker.wake();
    }

    /// Takes the set of connections marked since the last drain.
    pub(crate) fn take_dirty(&self) -> Vec<usize> {
        std::mem::take(&mut *self.dirty.lock().expect("notifier lock"))
    }

    /// Wakes the shard without marking any connection (used for shutdown
    /// and new-connection handoff).
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }

    /// Drains coalesced wake bytes (shard thread only).
    pub(crate) fn drain_wakes(&self) {
        self.waker.drain();
    }
}

struct OutQueue {
    /// Next sequence number to hand out at request parse time.
    next_seq: u64,
    /// The sequence number the next flushed reply must carry.
    next_flush: u64,
    /// Completed replies waiting for their predecessors.
    pending: BTreeMap<u64, Vec<u8>>,
    /// Wire-ready bytes in send order.
    buf: Vec<u8>,
    /// Bytes of `buf` already written to the socket.
    off: usize,
}

/// The half of a connection that batch workers can touch: sequence
/// allocation and ordered reply buffering. The shard thread keeps the
/// socket itself and is the only writer.
pub(crate) struct ConnShared {
    token: usize,
    notifier: Arc<Notifier>,
    out: Mutex<OutQueue>,
}

impl ConnShared {
    pub(crate) fn new(token: usize, notifier: Arc<Notifier>) -> Arc<ConnShared> {
        Arc::new(ConnShared {
            token,
            notifier,
            out: Mutex::new(OutQueue {
                next_seq: 0,
                next_flush: 0,
                pending: BTreeMap::new(),
                buf: Vec::new(),
                off: 0,
            }),
        })
    }

    /// The poller token of the owning connection.
    pub(crate) fn token(&self) -> usize {
        self.token
    }

    /// Assigns the next response slot. Every allocated slot must
    /// eventually receive exactly one [`ConnShared::push_reply`], or the
    /// connection's output wedges behind the gap.
    pub(crate) fn alloc_seq(&self) -> u64 {
        let mut out = self.out.lock().expect("conn out lock");
        let seq = out.next_seq;
        out.next_seq += 1;
        seq
    }

    /// Deposits the encoded reply for slot `seq`, moves the contiguous
    /// run into the write buffer, and marks the connection dirty.
    pub(crate) fn push_reply(&self, seq: u64, frame: Vec<u8>) {
        {
            let mut out = self.out.lock().expect("conn out lock");
            out.pending.insert(seq, frame);
            while let Some(frame) = {
                let next = out.next_flush;
                out.pending.remove(&next)
            } {
                out.buf.extend_from_slice(&frame);
                out.next_flush += 1;
            }
        }
        self.notifier.mark_dirty(self.token);
    }

    /// Writes as much buffered output as the socket accepts right now.
    /// Returns `Ok(true)` when the buffer emptied, `Ok(false)` when the
    /// socket backpressured (`WouldBlock`) — the caller should add
    /// writable interest and retry on the writable event.
    ///
    /// # Errors
    ///
    /// Socket errors other than `WouldBlock` (the connection is dead).
    pub(crate) fn flush(&self, stream: &mut impl Write) -> io::Result<bool> {
        let mut out = self.out.lock().expect("conn out lock");
        while out.off < out.buf.len() {
            match stream.write(&out.buf[out.off..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => out.off += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if out.off == out.buf.len() {
            out.buf.clear();
            out.off = 0;
            Ok(true)
        } else {
            if out.off >= COMPACT_AT {
                let off = out.off;
                out.buf.drain(..off);
                out.off = 0;
            }
            Ok(false)
        }
    }

    /// Whether any reply is still buffered or still owed to an allocated
    /// slot — i.e. the connection cannot be closed without dropping a
    /// response.
    pub(crate) fn has_backlog(&self) -> bool {
        let out = self.out.lock().expect("conn out lock");
        out.off < out.buf.len() || !out.pending.is_empty() || out.next_flush < out.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactor::Poller;

    fn shared() -> Arc<ConnShared> {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new(&mut poller).unwrap();
        ConnShared::new(1, Notifier::new(waker))
    }

    #[test]
    fn out_of_order_replies_flush_in_sequence_order() {
        let conn = shared();
        let a = conn.alloc_seq();
        let b = conn.alloc_seq();
        let c = conn.alloc_seq();
        conn.push_reply(c, vec![3]);
        conn.push_reply(a, vec![1]);
        assert!(conn.has_backlog());
        let mut wire = Vec::new();
        // Only the contiguous run (reply 1) may flush while 2 is owed.
        assert!(conn.flush(&mut wire).unwrap());
        assert_eq!(wire, vec![1]);
        conn.push_reply(b, vec![2]);
        assert!(conn.flush(&mut wire).unwrap());
        assert_eq!(wire, vec![1, 2, 3]);
        assert!(!conn.has_backlog());
    }

    #[test]
    fn allocated_but_unanswered_slots_count_as_backlog() {
        let conn = shared();
        let _gap = conn.alloc_seq();
        assert!(conn.has_backlog());
    }
}
