//! rpbcm-serve: a batched inference serving engine over the pruned-BCM
//! fast path.
//!
//! The RP-BCM accelerator's throughput story (§V) assumes work arrives in
//! batches that keep the datapath busy; this crate supplies the software
//! side of that story. A multi-threaded TCP server admits single-sample
//! inference requests, a dynamic micro-batching scheduler groups them
//! (dispatching when a batch fills to `B` or its oldest request has
//! waited `T`), and batches execute through either
//!
//! - the **float fast path** — the cached spectral-weight
//!   `Network::forward` inference route, or
//! - the **fixed-point datapath** ("FPGA mode") — the [`hwsim`] 16-bit
//!   eMAC pipeline, when the deployed model is a stride-1 BCM conv stack.
//!
//! Batching never changes results: every op in both stacks treats batch
//! samples independently, so a batched reply is bit-identical to serving
//! the request alone (the loopback e2e tests assert exactly this).
//!
//! # Anatomy
//!
//! - [`protocol`] — the wire format: length-prefixed binary frames
//!   behind an `RPBS` handshake, plus a line-delimited JSON debug mode.
//! - [`registry`] — deployed [`Model`]s (loaded from `.rpbcm`
//!   checkpoints or wrapped in process) and the batch execution engine.
//! - [`batcher`] — the bounded-queue micro-batching scheduler with
//!   explicit `overloaded` shedding and graceful drain.
//! - [`server`] / [`client`] — the TCP front end and its reference
//!   client.
//! - [`config`] — `RPBCM_SERVE_*` environment knobs.
//!
//! Telemetry probes (`serve.*` counters, queue-depth gauge, batch-size
//! and latency histograms) flow through the workspace [`telemetry`]
//! registry and surface in the bench harness dumps.
//!
//! # Example
//!
//! ```no_run
//! use serve::{Client, Model, Registry, ServeConfig, Server};
//!
//! let mut registry = Registry::new();
//! registry.load_file(std::path::Path::new("model.rpbcm")).unwrap();
//! let server = Server::bind("127.0.0.1:0", ServeConfig::from_env(), registry).unwrap();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let output = client.infer_f32("model", &vec![0.0; 3 * 16 * 16]).unwrap();
//! println!("{} logits", output.len());
//! server.shutdown();
//! ```

mod metrics;

pub mod batcher;
pub mod client;
pub mod config;
pub mod protocol;
pub mod registry;
pub mod server;

pub use batcher::{Batcher, SubmitError};
pub use client::{Client, ClientError};
pub use config::ServeConfig;
pub use protocol::{Payload, Request, Response, Status};
pub use registry::{FxModel, Mode, Model, ModelInfo, Registry};
pub use server::Server;
