//! rpbcm-serve: an event-driven, sharded inference serving engine over
//! the pruned-BCM fast path.
//!
//! The RP-BCM accelerator's throughput story (§V) assumes work arrives in
//! batches that keep the datapath busy; this crate supplies the software
//! side of that story at production connection counts. A nonblocking
//! acceptor deals connections to thread-per-core **reactor shards**
//! (readiness loops over `epoll`/`poll` — see [`reactor`]); each shard
//! parses requests zero-copy out of pooled per-connection buffers and
//! feeds its own dynamic micro-batching scheduler (dispatching when a
//! batch fills to `B` or its oldest request has waited `T`). Batches
//! execute through either
//!
//! - the **float fast path** — the cached spectral-weight
//!   `Network::forward` inference route, or
//! - the **fixed-point datapath** ("FPGA mode") — the [`hwsim`] 16-bit
//!   eMAC pipeline, when the deployed model is a stride-1 BCM conv stack.
//!
//! Batching never changes results: every op in both stacks treats batch
//! samples independently, so a batched reply is bit-identical to serving
//! the request alone (the loopback e2e tests assert exactly this).
//!
//! # Anatomy
//!
//! - [`protocol`] — the wire format: length-prefixed binary frames
//!   behind an `RPBS` handshake, plus a line-delimited JSON debug mode.
//!   The normative byte-level spec lives in [`spec`] (compiled from
//!   `docs/PROTOCOL.md`, so its examples cannot rot).
//! - [`registry`] — deployed [`Model`]s (loaded from `.rpbcm`
//!   checkpoints or wrapped in process) with **versioned hot swap**:
//!   publishing under an existing name atomically flips which weights
//!   new requests resolve while in-flight requests finish on the old
//!   version.
//! - [`reactor`] — the std-only readiness layer (`epoll` on Linux,
//!   `poll` elsewhere on Unix) plus its cross-thread [`reactor::Waker`].
//! - [`batcher`] — the bounded-queue micro-batching scheduler with
//!   explicit `overloaded` shedding and graceful drain; one per shard.
//! - [`quota`] — per-tenant in-flight admission quotas behind the
//!   `hello` opcode.
//! - [`server`] / [`client`] — the sharded TCP front end and its
//!   blocking reference client.
//! - [`config`] — `RPBCM_SERVE_*` environment knobs (operator guide:
//!   `docs/OPERATIONS.md`).
//!
//! # Observability
//!
//! Every admitted request carries a [`telemetry::flight::FlightRecord`]:
//! a trace id plus seven lifecycle stamps (parse, admit, enqueue,
//! batch-formed, infer-start, infer-end, reply-flushed) taken as it
//! moves shard → batcher → socket, finalized into per-shard bounded
//! lock-free flight rings when the reply bytes actually flush. Three
//! surfaces expose them:
//!
//! - the **`stats` opcode** — a versioned JSON snapshot (config, model
//!   catalog, quota state, per-shard queue depth and stage-latency
//!   summaries, full telemetry report) over the wire via
//!   [`Client::stats`] or [`Server::stats_snapshot`];
//! - the **SLO watchdog** — armed by `RPBCM_SERVE_SLO_P99_US` /
//!   `RPBCM_SERVE_SLO_SHED_PCT`, it dumps the recent traces plus a
//!   stats snapshot to a timestamped JSON file and a Perfetto-openable
//!   Chrome-trace twin on violation ([`Server::dump_flight`] forces
//!   one);
//! - the **`serve.stage.*` histograms** — per-interval lifecycle
//!   latencies in the workspace [`telemetry`] registry, next to the
//!   existing `serve.*` counters, queue gauges and per-shard
//!   `serve.shard.*` load counters, all surfaced in the bench harness
//!   dumps.
//!
//! Tracing obeys the workspace telemetry contract: it only ever counts
//! and stamps — replies are bit-identical with tracing on, off, or
//! compiled out.
//!
//! # Example
//!
//! ```no_run
//! use serve::{Client, Model, Registry, ServeConfig, Server};
//!
//! let registry = Registry::new();
//! registry.load_file(std::path::Path::new("model.rpbcm")).unwrap();
//! let server = Server::bind("127.0.0.1:0", ServeConfig::from_env(), registry).unwrap();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let output = client.infer_f32("model", &vec![0.0; 3 * 16 * 16]).unwrap();
//! println!("{} logits", output.len());
//!
//! // Hot swap: publish a new version under the same name. In-flight
//! // requests finish on the old weights; new requests get the new ones.
//! let v2 = Model::load_file(std::path::Path::new("model-v2.rpbcm")).unwrap();
//! server.registry().publish(v2);
//! server.shutdown();
//! ```

#![deny(missing_docs)]

mod metrics;
mod shard;
mod stats;

pub mod batcher;
pub mod client;
pub mod config;
pub mod conn;
pub mod protocol;
pub mod quota;
pub mod reactor;
pub mod registry;
pub mod server;
pub mod session;
pub mod spec;

pub use batcher::{Batcher, SubmitError};
pub use client::{Client, ClientError};
pub use config::ServeConfig;
pub use protocol::{Payload, Request, Response, Status};
pub use quota::{QuotaGuard, QuotaTable};
pub use registry::{FxModel, Mode, Model, ModelEntry, ModelInfo, Registry};
pub use server::Server;
pub use session::{FxSeqRunner, FxSeqRunnerBatch, SeqModel};
