//! Telemetry probes for the serving hot path.
//!
//! All metrics flow through the workspace [`telemetry`] registry, so
//! `RPBCM_TELEMETRY=1` (or `telemetry::set_enabled(true)`) turns them on
//! and the bench harness dumps them into `results/TELEMETRY_serve.json`
//! alongside every other subsystem's probes.

/// Requests admitted into the batch queue.
pub(crate) static ACCEPTED: telemetry::Counter = telemetry::Counter::new("serve.requests.accepted");

/// Requests shed by admission control (queue at capacity).
pub(crate) static SHED: telemetry::Counter = telemetry::Counter::new("serve.requests.shed");

/// Requests whose batch executed and whose reply was delivered.
pub(crate) static COMPLETED: telemetry::Counter =
    telemetry::Counter::new("serve.requests.completed");

/// Requests rejected before queueing (malformed frame, unknown model,
/// wrong input length).
pub(crate) static REJECTED: telemetry::Counter = telemetry::Counter::new("serve.requests.rejected");

/// Instantaneous batch-queue depth, sampled at every enqueue/dispatch.
pub(crate) static QUEUE_DEPTH: telemetry::Gauge = telemetry::Gauge::new("serve.queue.depth");

/// High-water mark of the batch queue.
pub(crate) static QUEUE_PEAK: telemetry::Gauge = telemetry::Gauge::new("serve.queue.peak_depth");

/// Distribution of dispatched batch sizes.
pub(crate) static BATCH_SIZE: telemetry::Histogram = telemetry::Histogram::new("serve.batch.size");

/// Wall time of one batch execution through the engine (nanoseconds).
pub(crate) static BATCH_EXEC: telemetry::Histogram =
    telemetry::Histogram::new("serve.batch.exec_ns");

/// End-to-end queue latency per request: enqueue to reply (nanoseconds).
pub(crate) static LATENCY: telemetry::Histogram =
    telemetry::Histogram::new("serve.request.latency_ns");

/// Connections registered with a reactor shard.
pub(crate) static CONNS_ACCEPTED: telemetry::Counter =
    telemetry::Counter::new("serve.conns.accepted");

/// Connections torn down (clean close, violation, or drain deadline).
pub(crate) static CONNS_CLOSED: telemetry::Counter = telemetry::Counter::new("serve.conns.closed");

/// Requests denied because their tenant was at its in-flight quota.
pub(crate) static QUOTA_DENIED: telemetry::Counter =
    telemetry::Counter::new("serve.requests.quota_denied");
