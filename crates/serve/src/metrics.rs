//! Telemetry probes for the serving hot path.
//!
//! All metrics flow through the workspace [`telemetry`] registry, so
//! `RPBCM_TELEMETRY=1` (or `telemetry::set_enabled(true)`) turns them on
//! and the bench harness dumps them into `results/TELEMETRY_serve.json`
//! alongside every other subsystem's probes.

/// Requests admitted into the batch queue.
pub(crate) static ACCEPTED: telemetry::Counter = telemetry::Counter::new("serve.requests.accepted");

/// Requests shed by admission control (queue at capacity).
pub(crate) static SHED: telemetry::Counter = telemetry::Counter::new("serve.requests.shed");

/// Requests whose batch executed and whose reply was delivered.
pub(crate) static COMPLETED: telemetry::Counter =
    telemetry::Counter::new("serve.requests.completed");

/// Requests rejected before queueing (malformed frame, unknown model,
/// wrong input length).
pub(crate) static REJECTED: telemetry::Counter = telemetry::Counter::new("serve.requests.rejected");

/// Instantaneous batch-queue depth, sampled at every enqueue/dispatch.
pub(crate) static QUEUE_DEPTH: telemetry::Gauge = telemetry::Gauge::new("serve.queue.depth");

/// High-water mark of the batch queue.
pub(crate) static QUEUE_PEAK: telemetry::Gauge = telemetry::Gauge::new("serve.queue.peak_depth");

/// Distribution of dispatched batch sizes.
pub(crate) static BATCH_SIZE: telemetry::Histogram = telemetry::Histogram::new("serve.batch.size");

/// Wall time of one batch execution through the engine (nanoseconds).
pub(crate) static BATCH_EXEC: telemetry::Histogram =
    telemetry::Histogram::new("serve.batch.exec_ns");

/// End-to-end queue latency per request: enqueue to reply (nanoseconds).
pub(crate) static LATENCY: telemetry::Histogram =
    telemetry::Histogram::new("serve.request.latency_ns");

/// Connections registered with a reactor shard.
pub(crate) static CONNS_ACCEPTED: telemetry::Counter =
    telemetry::Counter::new("serve.conns.accepted");

/// Connections torn down (clean close, violation, or drain deadline).
pub(crate) static CONNS_CLOSED: telemetry::Counter = telemetry::Counter::new("serve.conns.closed");

/// Requests denied because their tenant was at its in-flight quota.
pub(crate) static QUOTA_DENIED: telemetry::Counter =
    telemetry::Counter::new("serve.requests.quota_denied");

/// Streaming sessions opened (`session_open` accepted).
pub(crate) static SESSIONS_OPENED: telemetry::Counter =
    telemetry::Counter::new("serve.sessions.opened");

/// Streaming sessions closed by the client (`session_close`).
pub(crate) static SESSIONS_CLOSED: telemetry::Counter =
    telemetry::Counter::new("serve.sessions.closed");

/// Streaming sessions expired by the idle-TTL sweep.
pub(crate) static SESSIONS_EXPIRED: telemetry::Counter =
    telemetry::Counter::new("serve.sessions.expired");

/// Timesteps served across all streaming sessions (`session_step` ok).
pub(crate) static SESSION_STEPS: telemetry::Counter =
    telemetry::Counter::new("serve.sessions.steps");

/// Wall time of one session-step execution (nanoseconds). A gang-formed
/// step records once for the whole gang — divide by the paired
/// `serve.session.gang_width` sample for a per-session figure.
pub(crate) static SESSION_STEP_NS: telemetry::Histogram =
    telemetry::Histogram::new("serve.session.step_ns");

/// Lane occupancy of executed session steps: width 1 is a scalar step,
/// 2..=gang is a lane gang.
pub(crate) static SESSION_GANG_WIDTH: telemetry::Histogram =
    telemetry::Histogram::new("serve.session.gang_width");

/// Lane gangs executed (width ≥ 2 only).
pub(crate) static SESSION_GANGS: telemetry::Counter =
    telemetry::Counter::new("serve.sessions.gangs");

/// Timesteps that rode a lane gang (width ≥ 2).
pub(crate) static SESSION_STEPS_GANGED: telemetry::Counter =
    telemetry::Counter::new("serve.sessions.steps_ganged");

/// Timesteps executed scalar (gang disabled, or a gang of one).
pub(crate) static SESSION_STEPS_SCALAR: telemetry::Counter =
    telemetry::Counter::new("serve.sessions.steps_scalar");

// ---------------------------------------------------------------------
// Per-stage lifecycle latency (fed from completed flight records; see
// `telemetry::flight` and the stamping sites in shard/batcher/conn).
// ---------------------------------------------------------------------

/// parse → admit: request validation and quota acquisition.
pub(crate) static STAGE_ADMIT: telemetry::Histogram =
    telemetry::Histogram::new("serve.stage.admit_ns");

/// admit → enqueue: batcher submission (queue lock + capacity check).
pub(crate) static STAGE_ENQUEUE: telemetry::Histogram =
    telemetry::Histogram::new("serve.stage.enqueue_ns");

/// enqueue → batch-formed: time waiting in the queue for a batch.
pub(crate) static STAGE_BATCH_WAIT: telemetry::Histogram =
    telemetry::Histogram::new("serve.stage.batch_wait_ns");

/// batch-formed → infer-start: batch assembly before the engine call.
pub(crate) static STAGE_DISPATCH: telemetry::Histogram =
    telemetry::Histogram::new("serve.stage.dispatch_ns");

/// infer-start → infer-end: engine execution of the whole batch.
pub(crate) static STAGE_INFER: telemetry::Histogram =
    telemetry::Histogram::new("serve.stage.infer_ns");

/// infer-end → reply-flushed: reply encode, sequencing and socket write.
pub(crate) static STAGE_REPLY: telemetry::Histogram =
    telemetry::Histogram::new("serve.stage.reply_ns");

/// parse → reply-flushed: the whole request lifecycle.
pub(crate) static STAGE_TOTAL: telemetry::Histogram =
    telemetry::Histogram::new("serve.stage.total_ns");

/// SLO watchdog violations that produced a flight-recorder dump.
pub(crate) static SLO_VIOLATIONS: telemetry::Counter =
    telemetry::Counter::new("serve.slo.violations");

/// The six interval histograms, indexed like
/// [`telemetry::flight::INTERVAL_NAMES`].
pub(crate) static STAGE_INTERVALS: [&telemetry::Histogram; 6] = [
    &STAGE_ADMIT,
    &STAGE_ENQUEUE,
    &STAGE_BATCH_WAIT,
    &STAGE_DISPATCH,
    &STAGE_INFER,
    &STAGE_REPLY,
];

/// Feeds one completed flight record into the `serve.stage.*`
/// histograms. Incomplete records (a stamp lost to a dead connection)
/// are skipped rather than recorded as garbage deltas.
pub(crate) fn record_stages(rec: &telemetry::flight::FlightRecord) {
    if !rec.is_complete() {
        return;
    }
    for (i, h) in STAGE_INTERVALS.iter().enumerate() {
        h.record(rec.interval_ns(i));
    }
    STAGE_TOTAL.record(rec.total_ns());
}
