//! The rpbcm-serve wire protocol (RPBS): length-prefixed binary frames,
//! plus a line-delimited JSON mode for debugging.
//!
//! The **normative byte-level specification** lives in
//! `docs/PROTOCOL.md` (compiled into the crate docs as [`crate::spec`],
//! so its examples are checked by `cargo test`). This module is the
//! reference codec.
//!
//! # Handshake
//!
//! A connection's first bytes pick the mode:
//!
//! - `RPBS` (4 bytes) — binary mode for the rest of the connection.
//! - `{` — line-delimited JSON mode; every request is one JSON object
//!   on one line, every response likewise.
//!
//! # Binary frames
//!
//! Both directions use `u32` little-endian length + payload. Request
//! payloads:
//!
//! ```text
//! u8 opcode            0 = ping, 1 = infer (f32), 2 = infer (fx/i16),
//!                      3 = shutdown, 4 = hello, 5 = stats,
//!                      6 = session_open, 7 = session_step,
//!                      8 = session_close
//! infer only:
//!   u8    model name length, then UTF-8 name bytes
//!   u32   element count
//!   values  f32 LE (opcode 1) or i16 LE (opcode 2)
//! hello only:
//!   u8    tenant name length, then UTF-8 tenant bytes
//! session_open only:
//!   u8    mode: 0 = f32, 1 = fx
//!   u8    model name length, then UTF-8 name bytes
//! session_step only:
//!   u8    mode: 0 = f32, 1 = fx (must match the session's mode)
//!   u64   session id, LE
//!   u32   element count
//!   values  f32 LE (mode 0) or i16 LE (mode 1)
//! session_close only:
//!   u64   session id, LE
//! ```
//!
//! Response payloads:
//!
//! ```text
//! u8 status            0 ok, 1 overloaded, 2 bad_request,
//!                      3 shutting_down, 4 unknown_model,
//!                      5 quota_exceeded
//! ok infer / session_step / session_close:
//!             u32 element count + values (same scalar type as request;
//!             a session_close ok body is an empty f32 payload)
//! ok stats:   u32 byte length + UTF-8 JSON snapshot document
//! ok session_open:
//!             u64 session id + u64 pinned model version, both LE
//! non-ok:     u32 message length + UTF-8 diagnostic
//! ```
//!
//! There are no request ids, so an `ok` body is typed by the request it
//! answers: clients decode infer replies with [`decode_response`], stats
//! replies with [`decode_stats_response`], and session-open replies with
//! [`decode_session_response`].
//!
//! The exact bytes, cross-checked (an fx infer of two words against
//! model `"m"`, and its ok reply):
//!
//! ```
//! use serve::protocol::{decode_request, decode_response, encode_request,
//!     encode_response, Payload, Request, Response};
//!
//! let req = Request::Infer { model: "m".into(), input: Payload::Fx(vec![7, -1]) };
//! let bytes = encode_request(&req);
//! assert_eq!(bytes, [
//!     2,                      // opcode: infer (fx)
//!     1, b'm',                // name length + name
//!     2, 0, 0, 0,             // element count, u32 LE
//!     7, 0,                   // 7_i16 LE
//!     0xFF, 0xFF,             // -1_i16 LE
//! ]);
//! assert_eq!(decode_request(&bytes).unwrap(), req);
//!
//! let resp = Response::Output(Payload::Fx(vec![42]));
//! let bytes = encode_response(&resp);
//! assert_eq!(bytes, [
//!     0,                      // status: ok
//!     1, 0, 0, 0,             // element count, u32 LE
//!     42, 0,                  // 42_i16 LE
//! ]);
//! assert_eq!(decode_response(&bytes, true).unwrap(), resp);
//! ```
//!
//! # Ordering
//!
//! Responses are delivered **in request order** on each connection;
//! there are no request ids. Clients may pipeline freely.
//!
//! # JSON mode
//!
//! Requests: `{"op":"ping"}`, `{"op":"shutdown"}`, `{"op":"stats"}`,
//! `{"op":"hello","tenant":"<name>"}`,
//! `{"op":"infer","model":"<name>","mode":"f32"|"fx","input":[...]}`,
//! `{"op":"session_open","model":"<name>","mode":"f32"|"fx"}`,
//! `{"op":"session_step","session":<id>,"mode":"f32"|"fx","input":[...]}`,
//! or `{"op":"session_close","session":<id>}`.
//! Responses: `{"status":"ok","output":[...]}`,
//! `{"status":"ok","stats":{...}}` (stats only),
//! `{"status":"ok","session":<id>,"version":<v>}` (session_open only) or
//! `{"status":"<error>","error":"<diagnostic>"}`. The parser accepts
//! exactly this shape — it is a debugging convenience, not a general
//! JSON implementation.

use std::io::{Read, Write};

/// Binary-mode connection preamble.
pub const HANDSHAKE: [u8; 4] = *b"RPBS";

/// Upper bound on a single frame; larger lengths are treated as protocol
/// corruption rather than honored as allocations.
pub const MAX_FRAME: usize = 64 << 20;

/// Outcome of one request, as carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The request was served.
    Ok,
    /// Admission control shed the request (queue at capacity).
    Overloaded,
    /// The request was malformed (bad opcode, wrong input length, …).
    BadRequest,
    /// The server is draining and no longer admits requests.
    ShuttingDown,
    /// The named model is not in the registry.
    UnknownModel,
    /// The connection's tenant is at its in-flight quota.
    QuotaExceeded,
}

impl Status {
    /// Wire code.
    pub fn code(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Overloaded => 1,
            Status::BadRequest => 2,
            Status::ShuttingDown => 3,
            Status::UnknownModel => 4,
            Status::QuotaExceeded => 5,
        }
    }

    /// Parses a wire code.
    pub fn from_code(c: u8) -> Option<Status> {
        Some(match c {
            0 => Status::Ok,
            1 => Status::Overloaded,
            2 => Status::BadRequest,
            3 => Status::ShuttingDown,
            4 => Status::UnknownModel,
            5 => Status::QuotaExceeded,
            _ => return None,
        })
    }

    /// Stable lower-snake name (used by the JSON mode).
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Overloaded => "overloaded",
            Status::BadRequest => "bad_request",
            Status::ShuttingDown => "shutting_down",
            Status::UnknownModel => "unknown_model",
            Status::QuotaExceeded => "quota_exceeded",
        }
    }
}

/// Numeric payload of an inference request or reply: the scalar type
/// selects the engine path (f32 → float fast path, i16 → hwsim
/// fixed-point datapath).
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Float samples for the spectral fast path.
    F32(Vec<f32>),
    /// Q-format words for the fixed-point datapath ("FPGA mode").
    Fx(Vec<i16>),
}

impl Payload {
    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            Payload::F32(v) => v.len(),
            Payload::Fx(v) => v.len(),
        }
    }

    /// Whether the payload holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// One sample for one model.
    Infer {
        /// Registry model name.
        model: String,
        /// The sample; its variant selects float vs fixed-point.
        input: Payload,
    },
    /// Ask the server to drain and exit.
    Shutdown,
    /// Declare the connection's tenant for admission quotas.
    Hello {
        /// Tenant name the connection's subsequent requests count
        /// against.
        tenant: String,
    },
    /// Ask for a versioned introspection snapshot (registry metrics,
    /// per-shard stage-latency histograms, queue/quota state).
    Stats,
    /// Open a stateful streaming session against a model. The server
    /// pins the session to the handling shard, resolves the model
    /// version **once**, and holds the recurrent hidden state
    /// server-side until close or idle expiry.
    SessionOpen {
        /// Registry model name.
        model: String,
        /// `true` for the fixed-point datapath, `false` for float.
        fx: bool,
    },
    /// Advance an open session by one timestep.
    SessionStep {
        /// Session id from the open reply.
        session: u64,
        /// One timestep of input; its variant must match the session's
        /// mode.
        input: Payload,
    },
    /// Close a session and release its state and quota slot.
    SessionClose {
        /// Session id from the open reply.
        session: u64,
    },
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Served: the model output, same scalar type as the request.
    Output(Payload),
    /// A `stats` reply: the snapshot as one UTF-8 JSON document.
    Stats(String),
    /// A `session_open` reply: the session id and the model version the
    /// session is pinned to (hot swaps never change it mid-session).
    Session {
        /// Server-assigned session id, unique per connection lifetime.
        session: u64,
        /// The registry version resolved at open.
        version: u64,
    },
    /// Not served; carries the status and a short diagnostic.
    Error(Status, String),
}

/// Protocol failure while reading a frame.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection between frames.
    Closed,
    /// Socket error.
    Io(std::io::Error),
    /// The frame violates the format (bad opcode, oversized, …).
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Binary framing
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).expect("frame fits u32");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. [`WireError::Closed`] when the peer
/// hung up cleanly before the length prefix.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len4 = [0u8; 4];
    read_exact_or_closed(r, &mut len4, true)?;
    let len = u32::from_le_bytes(len4) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Malformed(format!("frame of {len} bytes")));
    }
    let mut buf = vec![0u8; len];
    read_exact_or_closed(r, &mut buf, false)?;
    Ok(buf)
}

/// `read_exact` that maps a clean EOF at a frame boundary to
/// [`WireError::Closed`] and mid-frame EOF to [`WireError::Malformed`].
fn read_exact_or_closed(
    r: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<(), WireError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if at_boundary && filled == 0 {
                    Err(WireError::Closed)
                } else {
                    Err(WireError::Malformed("eof inside frame".into()))
                };
            }
            Ok(n) => filled += n,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

fn put_u32(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&u32::try_from(v).expect("count fits u32").to_le_bytes());
}

/// Encodes a request payload (without the length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Ping => out.push(0),
        Request::Infer { model, input } => {
            out.push(match input {
                Payload::F32(_) => 1,
                Payload::Fx(_) => 2,
            });
            out.push(u8::try_from(model.len()).expect("model name fits u8"));
            out.extend_from_slice(model.as_bytes());
            put_u32(&mut out, input.len());
            match input {
                Payload::F32(vs) => {
                    for v in vs {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
                Payload::Fx(vs) => {
                    for v in vs {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        Request::Shutdown => out.push(3),
        Request::Hello { tenant } => {
            out.push(4);
            out.push(u8::try_from(tenant.len()).expect("tenant name fits u8"));
            out.extend_from_slice(tenant.as_bytes());
        }
        Request::Stats => out.push(5),
        Request::SessionOpen { model, fx } => {
            out.push(6);
            out.push(u8::from(*fx));
            out.push(u8::try_from(model.len()).expect("model name fits u8"));
            out.extend_from_slice(model.as_bytes());
        }
        Request::SessionStep { session, input } => {
            out.push(7);
            out.push(match input {
                Payload::F32(_) => 0,
                Payload::Fx(_) => 1,
            });
            out.extend_from_slice(&session.to_le_bytes());
            put_u32(&mut out, input.len());
            match input {
                Payload::F32(vs) => {
                    for v in vs {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
                Payload::Fx(vs) => {
                    for v in vs {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        Request::SessionClose { session } => {
            out.push(8);
            out.extend_from_slice(&session.to_le_bytes());
        }
    }
    out
}

/// Decodes a request payload.
///
/// # Errors
///
/// [`WireError::Malformed`] on unknown opcodes or inconsistent lengths.
pub fn decode_request(buf: &[u8]) -> Result<Request, WireError> {
    let bad = |m: &str| WireError::Malformed(m.into());
    let (&op, rest) = buf.split_first().ok_or_else(|| bad("empty request"))?;
    match op {
        0 => {
            if rest.is_empty() {
                Ok(Request::Ping)
            } else {
                Err(bad("trailing bytes after ping"))
            }
        }
        3 => {
            if rest.is_empty() {
                Ok(Request::Shutdown)
            } else {
                Err(bad("trailing bytes after shutdown"))
            }
        }
        5 => {
            if rest.is_empty() {
                Ok(Request::Stats)
            } else {
                Err(bad("trailing bytes after stats"))
            }
        }
        4 => {
            let (&tenant_len, rest) = rest.split_first().ok_or_else(|| bad("missing tenant"))?;
            if rest.len() != tenant_len as usize {
                return Err(bad("tenant length disagrees with body"));
            }
            let tenant = std::str::from_utf8(rest)
                .map_err(|_| bad("non-UTF-8 tenant name"))?
                .to_string();
            Ok(Request::Hello { tenant })
        }
        1 | 2 => {
            let (&name_len, rest) = rest.split_first().ok_or_else(|| bad("missing name"))?;
            let name_len = name_len as usize;
            if rest.len() < name_len + 4 {
                return Err(bad("truncated infer header"));
            }
            let model = std::str::from_utf8(&rest[..name_len])
                .map_err(|_| bad("non-UTF-8 model name"))?
                .to_string();
            let rest = &rest[name_len..];
            let count = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            let rest = &rest[4..];
            let scalar = if op == 1 { 4 } else { 2 };
            if rest.len() != count * scalar {
                return Err(bad("input length disagrees with count"));
            }
            let input = if op == 1 {
                Payload::F32(
                    rest.chunks_exact(4)
                        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .collect(),
                )
            } else {
                Payload::Fx(
                    rest.chunks_exact(2)
                        .map(|c| i16::from_le_bytes([c[0], c[1]]))
                        .collect(),
                )
            };
            Ok(Request::Infer { model, input })
        }
        6 => {
            let (&mode, rest) = rest.split_first().ok_or_else(|| bad("missing mode"))?;
            let fx = match mode {
                0 => false,
                1 => true,
                _ => return Err(bad("unknown session mode")),
            };
            let (&name_len, rest) = rest.split_first().ok_or_else(|| bad("missing name"))?;
            if rest.len() != name_len as usize {
                return Err(bad("model name length disagrees with body"));
            }
            let model = std::str::from_utf8(rest)
                .map_err(|_| bad("non-UTF-8 model name"))?
                .to_string();
            Ok(Request::SessionOpen { model, fx })
        }
        7 => {
            let (&mode, rest) = rest.split_first().ok_or_else(|| bad("missing mode"))?;
            if rest.len() < 12 {
                return Err(bad("truncated session_step header"));
            }
            let session = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes"));
            let count = u32::from_le_bytes([rest[8], rest[9], rest[10], rest[11]]) as usize;
            let rest = &rest[12..];
            let input = match mode {
                0 => {
                    if rest.len() != count * 4 {
                        return Err(bad("input length disagrees with count"));
                    }
                    Payload::F32(
                        rest.chunks_exact(4)
                            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                            .collect(),
                    )
                }
                1 => {
                    if rest.len() != count * 2 {
                        return Err(bad("input length disagrees with count"));
                    }
                    Payload::Fx(
                        rest.chunks_exact(2)
                            .map(|c| i16::from_le_bytes([c[0], c[1]]))
                            .collect(),
                    )
                }
                _ => return Err(bad("unknown session mode")),
            };
            Ok(Request::SessionStep { session, input })
        }
        8 => {
            if rest.len() != 8 {
                return Err(bad("session_close wants exactly a u64 id"));
            }
            let session = u64::from_le_bytes(rest.try_into().expect("8 bytes"));
            Ok(Request::SessionClose { session })
        }
        other => Err(bad(&format!("unknown opcode {other}"))),
    }
}

/// Encodes a response payload (without the length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Output(payload) => {
            out.push(Status::Ok.code());
            put_u32(&mut out, payload.len());
            match payload {
                Payload::F32(vs) => {
                    for v in vs {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
                Payload::Fx(vs) => {
                    for v in vs {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        Response::Stats(doc) => {
            out.push(Status::Ok.code());
            put_u32(&mut out, doc.len());
            out.extend_from_slice(doc.as_bytes());
        }
        Response::Session { session, version } => {
            out.push(Status::Ok.code());
            out.extend_from_slice(&session.to_le_bytes());
            out.extend_from_slice(&version.to_le_bytes());
        }
        Response::Error(status, msg) => {
            out.push(status.code());
            put_u32(&mut out, msg.len());
            out.extend_from_slice(msg.as_bytes());
        }
    }
    out
}

/// Decodes a response payload. `fx` tells the decoder which scalar type
/// an `ok` body carries (the protocol echoes the request's type).
///
/// Only for replies to *infer-shaped* requests — a `stats` reply's `ok`
/// body is a JSON document, decoded by [`decode_stats_response`].
///
/// # Errors
///
/// [`WireError::Malformed`] on unknown status codes or inconsistent
/// lengths.
pub fn decode_response(buf: &[u8], fx: bool) -> Result<Response, WireError> {
    let bad = |m: &str| WireError::Malformed(m.into());
    let (&code, rest) = buf.split_first().ok_or_else(|| bad("empty response"))?;
    let status = Status::from_code(code).ok_or_else(|| bad("unknown status"))?;
    if rest.len() < 4 {
        return Err(bad("truncated response"));
    }
    let count = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    let rest = &rest[4..];
    match status {
        Status::Ok => {
            let scalar = if fx { 2 } else { 4 };
            if rest.len() != count * scalar {
                return Err(bad("output length disagrees with count"));
            }
            let payload = if fx {
                Payload::Fx(
                    rest.chunks_exact(2)
                        .map(|c| i16::from_le_bytes([c[0], c[1]]))
                        .collect(),
                )
            } else {
                Payload::F32(
                    rest.chunks_exact(4)
                        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .collect(),
                )
            };
            Ok(Response::Output(payload))
        }
        _ => {
            if rest.len() != count {
                return Err(bad("diagnostic length disagrees with count"));
            }
            let msg = std::str::from_utf8(rest)
                .map_err(|_| bad("non-UTF-8 diagnostic"))?
                .to_string();
            Ok(Response::Error(status, msg))
        }
    }
}

/// Decodes a reply to a `stats` request: an `ok` body is `u32` byte
/// length + a UTF-8 JSON snapshot document ([`Response::Stats`]); a
/// non-ok body is the usual diagnostic ([`Response::Error`]).
///
/// # Errors
///
/// [`WireError::Malformed`] on unknown status codes or inconsistent
/// lengths.
pub fn decode_stats_response(buf: &[u8]) -> Result<Response, WireError> {
    let bad = |m: &str| WireError::Malformed(m.into());
    let (&code, rest) = buf.split_first().ok_or_else(|| bad("empty response"))?;
    let status = Status::from_code(code).ok_or_else(|| bad("unknown status"))?;
    if rest.len() < 4 {
        return Err(bad("truncated response"));
    }
    let count = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    let rest = &rest[4..];
    if rest.len() != count {
        return Err(bad("body length disagrees with count"));
    }
    let text = std::str::from_utf8(rest)
        .map_err(|_| bad("non-UTF-8 body"))?
        .to_string();
    match status {
        Status::Ok => Ok(Response::Stats(text)),
        _ => Ok(Response::Error(status, text)),
    }
}

/// Decodes a reply to a `session_open` request: an `ok` body is two
/// `u64` LE words — session id then pinned model version
/// ([`Response::Session`]); a non-ok body is the usual diagnostic.
///
/// # Errors
///
/// [`WireError::Malformed`] on unknown status codes or inconsistent
/// lengths.
pub fn decode_session_response(buf: &[u8]) -> Result<Response, WireError> {
    let bad = |m: &str| WireError::Malformed(m.into());
    let (&code, rest) = buf.split_first().ok_or_else(|| bad("empty response"))?;
    let status = Status::from_code(code).ok_or_else(|| bad("unknown status"))?;
    match status {
        Status::Ok => {
            if rest.len() != 16 {
                return Err(bad("session_open ok body wants two u64 words"));
            }
            let session = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes"));
            let version = u64::from_le_bytes(rest[8..].try_into().expect("8 bytes"));
            Ok(Response::Session { session, version })
        }
        _ => {
            if rest.len() < 4 {
                return Err(bad("truncated response"));
            }
            let count = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            let rest = &rest[4..];
            if rest.len() != count {
                return Err(bad("diagnostic length disagrees with count"));
            }
            let msg = std::str::from_utf8(rest)
                .map_err(|_| bad("non-UTF-8 diagnostic"))?
                .to_string();
            Ok(Response::Error(status, msg))
        }
    }
}

// ---------------------------------------------------------------------
// JSON debug mode
// ---------------------------------------------------------------------

/// Parses one JSON-mode request line (see module docs for the accepted
/// shape).
///
/// # Errors
///
/// [`WireError::Malformed`] with a diagnostic for anything outside the
/// accepted subset.
pub fn parse_json_request(line: &str) -> Result<Request, WireError> {
    let bad = |m: &str| WireError::Malformed(m.into());
    let obj = json_object(line).ok_or_else(|| bad("not a JSON object"))?;
    let op = json_string(&obj, "op").ok_or_else(|| bad("missing \"op\""))?;
    match op.as_str() {
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "stats" => Ok(Request::Stats),
        "hello" => {
            let tenant = json_string(&obj, "tenant").ok_or_else(|| bad("missing \"tenant\""))?;
            Ok(Request::Hello { tenant })
        }
        "infer" => {
            let model = json_string(&obj, "model").ok_or_else(|| bad("missing \"model\""))?;
            let mode = json_string(&obj, "mode").unwrap_or_else(|| "f32".to_string());
            let nums = json_numbers(&obj, "input").ok_or_else(|| bad("missing \"input\""))?;
            let input = match mode.as_str() {
                "f32" => Payload::F32(nums.iter().map(|&v| v as f32).collect()),
                "fx" => {
                    let mut words = Vec::with_capacity(nums.len());
                    for &v in &nums {
                        if v.fract() != 0.0
                            || !(f64::from(i16::MIN)..=f64::from(i16::MAX)).contains(&v)
                        {
                            return Err(bad("fx input values must be i16 integers"));
                        }
                        words.push(v as i16);
                    }
                    Payload::Fx(words)
                }
                other => return Err(bad(&format!("unknown mode {other:?}"))),
            };
            Ok(Request::Infer { model, input })
        }
        "session_open" => {
            let model = json_string(&obj, "model").ok_or_else(|| bad("missing \"model\""))?;
            let mode = json_string(&obj, "mode").unwrap_or_else(|| "f32".to_string());
            let fx = match mode.as_str() {
                "f32" => false,
                "fx" => true,
                other => return Err(bad(&format!("unknown mode {other:?}"))),
            };
            Ok(Request::SessionOpen { model, fx })
        }
        "session_step" => {
            let session = json_u64(&obj, "session").ok_or_else(|| bad("missing \"session\""))?;
            let mode = json_string(&obj, "mode").unwrap_or_else(|| "f32".to_string());
            let nums = json_numbers(&obj, "input").ok_or_else(|| bad("missing \"input\""))?;
            let input = match mode.as_str() {
                "f32" => Payload::F32(nums.iter().map(|&v| v as f32).collect()),
                "fx" => {
                    let mut words = Vec::with_capacity(nums.len());
                    for &v in &nums {
                        if v.fract() != 0.0
                            || !(f64::from(i16::MIN)..=f64::from(i16::MAX)).contains(&v)
                        {
                            return Err(bad("fx input values must be i16 integers"));
                        }
                        words.push(v as i16);
                    }
                    Payload::Fx(words)
                }
                other => return Err(bad(&format!("unknown mode {other:?}"))),
            };
            Ok(Request::SessionStep { session, input })
        }
        "session_close" => {
            let session = json_u64(&obj, "session").ok_or_else(|| bad("missing \"session\""))?;
            Ok(Request::SessionClose { session })
        }
        other => Err(bad(&format!("unknown op {other:?}"))),
    }
}

/// Renders a response as one JSON line (no trailing newline).
pub fn render_json_response(resp: &Response) -> String {
    match resp {
        Response::Output(payload) => {
            let mut s = String::from("{\"status\":\"ok\",\"output\":[");
            match payload {
                Payload::F32(vs) => {
                    for (i, v) in vs.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        // Ryu-style shortest output is unnecessary; debug
                        // formatting round-trips f32 exactly.
                        s.push_str(&format!("{v:?}"));
                    }
                }
                Payload::Fx(vs) => {
                    for (i, v) in vs.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        s.push_str(&v.to_string());
                    }
                }
            }
            s.push_str("]}");
            s
        }
        Response::Stats(doc) => {
            // The snapshot is itself JSON; embed it raw, folding any
            // pretty-printing newlines so the reply stays one line.
            format!(
                "{{\"status\":\"ok\",\"stats\":{}}}",
                doc.replace('\n', " ").trim()
            )
        }
        Response::Session { session, version } => {
            format!("{{\"status\":\"ok\",\"session\":{session},\"version\":{version}}}")
        }
        Response::Error(status, msg) => {
            format!(
                "{{\"status\":\"{}\",\"error\":\"{}\"}}",
                status.name(),
                msg.replace('\\', "\\\\").replace('"', "\\\"")
            )
        }
    }
}

/// The flat key/value view of one small JSON object: string values kept
/// verbatim, arrays kept as their raw bracketed text.
type JsonObj = Vec<(String, JsonValue)>;

enum JsonValue {
    Str(String),
    Array(Vec<f64>),
    Num(f64),
}

fn json_string(obj: &JsonObj, key: &str) -> Option<String> {
    obj.iter().find_map(|(k, v)| match v {
        JsonValue::Str(s) if k == key => Some(s.clone()),
        _ => None,
    })
}

fn json_numbers(obj: &JsonObj, key: &str) -> Option<Vec<f64>> {
    obj.iter().find_map(|(k, v)| match v {
        JsonValue::Array(a) if k == key => Some(a.clone()),
        _ => None,
    })
}

fn json_number(obj: &JsonObj, key: &str) -> Option<f64> {
    obj.iter().find_map(|(k, v)| match v {
        JsonValue::Num(n) if k == key => Some(*n),
        _ => None,
    })
}

/// Parses a non-negative integer field that must fit a `u64` exactly
/// (session ids on the JSON path).
fn json_u64(obj: &JsonObj, key: &str) -> Option<u64> {
    let n = json_number(obj, key)?;
    if n.fract() != 0.0 || !(0.0..=u64::MAX as f64).contains(&n) {
        return None;
    }
    Some(n as u64)
}

/// Hand-rolled parser for one flat object of string and numeric-array
/// values — the only JSON the debug mode speaks.
fn json_object(line: &str) -> Option<JsonObj> {
    let s = line.trim();
    let inner = s.strip_prefix('{')?.strip_suffix('}')?;
    let mut obj = Vec::new();
    let mut rest = inner.trim_start();
    while !rest.is_empty() {
        rest = rest.strip_prefix('"')?;
        let end = rest.find('"')?;
        let key = rest[..end].to_string();
        rest = rest[end + 1..].trim_start().strip_prefix(':')?.trim_start();
        if let Some(tail) = rest.strip_prefix('"') {
            let end = tail.find('"')?;
            obj.push((key, JsonValue::Str(tail[..end].to_string())));
            rest = &tail[end + 1..];
        } else if let Some(tail) = rest.strip_prefix('[') {
            let end = tail.find(']')?;
            let body = &tail[..end];
            let mut nums = Vec::new();
            for part in body.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                nums.push(part.parse::<f64>().ok()?);
            }
            obj.push((key, JsonValue::Array(nums)));
            rest = &tail[end + 1..];
        } else {
            // A bare number runs to the next comma or the object end.
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            let n = rest[..end].trim().parse::<f64>().ok()?;
            obj.push((key, JsonValue::Num(n)));
            rest = &rest[end..];
        }
        rest = rest.trim_start();
        rest = match rest.strip_prefix(',') {
            Some(r) => r.trim_start(),
            None => {
                if rest.is_empty() {
                    rest
                } else {
                    return None;
                }
            }
        };
    }
    Some(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_request_round_trips() {
        for req in [
            Request::Ping,
            Request::Shutdown,
            Request::Hello {
                tenant: "team-a".into(),
            },
            Request::Infer {
                model: "mlp".into(),
                input: Payload::F32(vec![1.5, -2.25, 0.0]),
            },
            Request::Infer {
                model: "conv".into(),
                input: Payload::Fx(vec![-7, 0, 1234]),
            },
            Request::Stats,
            Request::SessionOpen {
                model: "lstm".into(),
                fx: false,
            },
            Request::SessionOpen {
                model: "lstm".into(),
                fx: true,
            },
            Request::SessionStep {
                session: u64::MAX - 1,
                input: Payload::F32(vec![0.5, -0.25]),
            },
            Request::SessionStep {
                session: 3,
                input: Payload::Fx(vec![-7, 0, 1234]),
            },
            Request::SessionClose { session: 42 },
        ] {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn session_frames_have_the_documented_layout() {
        let open = encode_request(&Request::SessionOpen {
            model: "m".into(),
            fx: true,
        });
        assert_eq!(open, [6, 1, 1, b'm']);
        let step = encode_request(&Request::SessionStep {
            session: 0x0102,
            input: Payload::Fx(vec![7]),
        });
        assert_eq!(step, [7, 1, 2, 1, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 7, 0]);
        let close = encode_request(&Request::SessionClose { session: 9 });
        assert_eq!(close, [8, 9, 0, 0, 0, 0, 0, 0, 0]);

        let opened = Response::Session {
            session: 9,
            version: 2,
        };
        let bytes = encode_response(&opened);
        assert_eq!(bytes, [0, 9, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(decode_session_response(&bytes).unwrap(), opened);
    }

    #[test]
    fn malformed_session_frames_are_rejected() {
        // Unknown mode byte.
        assert!(decode_request(&[6, 2, 1, b'm']).is_err());
        // Name length disagrees with body.
        assert!(decode_request(&[6, 0, 4, b'm']).is_err());
        // Truncated step header.
        assert!(decode_request(&[7, 0, 1, 0, 0]).is_err());
        // Count says one fx word, body holds none.
        assert!(decode_request(&[7, 1, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0]).is_err());
        // Close with a short id.
        assert!(decode_request(&[8, 1, 2, 3]).is_err());
        // Session-open ok reply must be exactly two u64 words.
        assert!(decode_session_response(&[0, 1, 2, 3]).is_err());
        // Errors decode on the session reply path too.
        let err = Response::Error(Status::UnknownModel, "no such model".into());
        assert_eq!(
            decode_session_response(&encode_response(&err)).unwrap(),
            err
        );
    }

    #[test]
    fn stats_round_trips_and_rejects_trailing_bytes() {
        assert_eq!(encode_request(&Request::Stats), [5]);
        assert!(decode_request(&[5, 0]).is_err());

        let resp = Response::Stats("{\"stats_version\":1}".into());
        let bytes = encode_response(&resp);
        assert_eq!(bytes[0], 0, "a stats reply is an ok-status body");
        assert_eq!(decode_stats_response(&bytes).unwrap(), resp);
        // Errors decode identically on both reply paths.
        let err = Response::Error(Status::ShuttingDown, "draining".into());
        assert_eq!(decode_stats_response(&encode_response(&err)).unwrap(), err);
        // Truncated body.
        assert!(decode_stats_response(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_stats_response(&[]).is_err());
    }

    #[test]
    fn binary_response_round_trips() {
        let ok = Response::Output(Payload::F32(vec![0.5, -1.0]));
        let bytes = encode_response(&ok);
        assert_eq!(decode_response(&bytes, false).unwrap(), ok);
        let okx = Response::Output(Payload::Fx(vec![17, -3]));
        let bytes = encode_response(&okx);
        assert_eq!(decode_response(&bytes, true).unwrap(), okx);
        let err = Response::Error(Status::Overloaded, "queue full".into());
        let bytes = encode_response(&err);
        assert_eq!(decode_response(&bytes, false).unwrap(), err);
        let quota = Response::Error(Status::QuotaExceeded, "tenant at limit".into());
        let bytes = encode_response(&quota);
        assert_eq!(bytes[0], 5);
        assert_eq!(decode_response(&bytes, false).unwrap(), quota);
    }

    #[test]
    fn malformed_binary_is_rejected() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[9]).is_err());
        assert!(decode_request(&[0, 1]).is_err());
        // Count says 2 floats, body has one.
        let mut buf = vec![1u8, 1, b'm', 2, 0, 0, 0];
        buf.extend_from_slice(&1.0f32.to_le_bytes());
        assert!(decode_request(&buf).is_err());
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(matches!(read_frame(&mut r), Err(WireError::Closed)));
    }

    #[test]
    fn json_requests_parse() {
        assert_eq!(
            parse_json_request("{\"op\":\"ping\"}").unwrap(),
            Request::Ping
        );
        let req = parse_json_request(
            "{\"op\":\"infer\",\"model\":\"mlp\",\"mode\":\"f32\",\"input\":[1.5,-2,0.25]}",
        )
        .unwrap();
        assert_eq!(
            req,
            Request::Infer {
                model: "mlp".into(),
                input: Payload::F32(vec![1.5, -2.0, 0.25]),
            }
        );
        let req = parse_json_request(
            "{\"op\":\"infer\",\"model\":\"m\",\"mode\":\"fx\",\"input\":[3,-4]}",
        )
        .unwrap();
        assert_eq!(
            req,
            Request::Infer {
                model: "m".into(),
                input: Payload::Fx(vec![3, -4]),
            }
        );
        assert!(parse_json_request(
            "{\"op\":\"infer\",\"model\":\"m\",\"mode\":\"fx\",\"input\":[1.5]}"
        )
        .is_err());
        assert!(parse_json_request("not json").is_err());
        assert!(parse_json_request("{\"op\":\"explode\"}").is_err());
        assert_eq!(
            parse_json_request("{\"op\":\"hello\",\"tenant\":\"t0\"}").unwrap(),
            Request::Hello {
                tenant: "t0".into()
            }
        );
        assert!(parse_json_request("{\"op\":\"hello\"}").is_err());
    }

    #[test]
    fn json_session_requests_parse() {
        assert_eq!(
            parse_json_request("{\"op\":\"session_open\",\"model\":\"lstm\",\"mode\":\"fx\"}")
                .unwrap(),
            Request::SessionOpen {
                model: "lstm".into(),
                fx: true,
            }
        );
        assert_eq!(
            parse_json_request("{\"op\":\"session_open\",\"model\":\"lstm\"}").unwrap(),
            Request::SessionOpen {
                model: "lstm".into(),
                fx: false,
            }
        );
        assert_eq!(
            parse_json_request("{\"op\":\"session_step\",\"session\":7,\"input\":[1.5,-2]}")
                .unwrap(),
            Request::SessionStep {
                session: 7,
                input: Payload::F32(vec![1.5, -2.0]),
            }
        );
        assert_eq!(
            parse_json_request(
                "{\"op\":\"session_step\",\"session\":7,\"mode\":\"fx\",\"input\":[3,-4]}"
            )
            .unwrap(),
            Request::SessionStep {
                session: 7,
                input: Payload::Fx(vec![3, -4]),
            }
        );
        assert_eq!(
            parse_json_request("{\"op\":\"session_close\",\"session\":12}").unwrap(),
            Request::SessionClose { session: 12 }
        );
        // Fractional and negative session ids are rejected.
        assert!(parse_json_request("{\"op\":\"session_close\",\"session\":1.5}").is_err());
        assert!(parse_json_request("{\"op\":\"session_close\",\"session\":-1}").is_err());
        assert!(parse_json_request("{\"op\":\"session_step\",\"session\":1}").is_err());
        assert_eq!(
            render_json_response(&Response::Session {
                session: 3,
                version: 1
            }),
            "{\"status\":\"ok\",\"session\":3,\"version\":1}"
        );
    }

    #[test]
    fn json_responses_render() {
        assert_eq!(
            render_json_response(&Response::Output(Payload::Fx(vec![1, -2]))),
            "{\"status\":\"ok\",\"output\":[1,-2]}"
        );
        assert_eq!(
            parse_json_request("{\"op\":\"stats\"}").unwrap(),
            Request::Stats
        );
        let rendered = render_json_response(&Response::Stats("{\"a\":\n1}".into()));
        assert_eq!(rendered, "{\"status\":\"ok\",\"stats\":{\"a\": 1}}");
        assert!(!rendered.contains('\n'), "JSON mode replies are one line");
        assert_eq!(
            render_json_response(&Response::Error(Status::ShuttingDown, "draining".into())),
            "{\"status\":\"shutting_down\",\"error\":\"draining\"}"
        );
    }
}
