//! Per-tenant admission quotas.
//!
//! A connection declares its tenant with the `hello` opcode (connections
//! that never do share the anonymous tenant `""`). Each tenant may hold
//! at most `RPBCM_SERVE_TENANT_QUOTA` requests in flight across the
//! whole server — counted from admission until the reply is delivered —
//! so one chatty tenant cannot monopolize every shard's batch queue. A
//! request over quota is answered with an explicit `quota_exceeded`
//! status and costs the server nothing downstream.
//!
//! A limit of `0` (the default) disables enforcement; in-flight counts
//! are still tracked so the probe surface stays meaningful.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Server-wide per-tenant in-flight accounting.
pub struct QuotaTable {
    limit: usize,
    tenants: Mutex<HashMap<String, Arc<AtomicUsize>>>,
}

impl QuotaTable {
    /// A table enforcing `limit` in-flight requests per tenant
    /// (`0` = track but never deny).
    pub fn new(limit: usize) -> QuotaTable {
        QuotaTable {
            limit,
            tenants: Mutex::new(HashMap::new()),
        }
    }

    /// The configured per-tenant limit (`0` = unlimited).
    pub fn limit(&self) -> usize {
        self.limit
    }

    fn cell(&self, tenant: &str) -> Arc<AtomicUsize> {
        let mut map = self.tenants.lock().expect("quota lock");
        match map.get(tenant) {
            Some(cell) => Arc::clone(cell),
            None => {
                let cell = Arc::new(AtomicUsize::new(0));
                map.insert(tenant.to_string(), Arc::clone(&cell));
                cell
            }
        }
    }

    /// Claims one in-flight slot for `tenant`. `None` means the tenant is
    /// at its limit and the request must be denied. The slot is released
    /// when the returned guard drops (reply delivered — or abandoned).
    pub fn try_acquire(&self, tenant: &str) -> Option<QuotaGuard> {
        let cell = self.cell(tenant);
        let limit = self.limit;
        cell.fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
            if limit > 0 && cur >= limit {
                None
            } else {
                Some(cur + 1)
            }
        })
        .ok()?;
        Some(QuotaGuard { cell })
    }

    /// Current in-flight count for `tenant`.
    pub fn in_flight(&self, tenant: &str) -> usize {
        self.cell(tenant).load(Ordering::Acquire)
    }

    /// Every known tenant with its current in-flight count, sorted by
    /// tenant name (for the `stats` snapshot).
    pub fn snapshot(&self) -> Vec<(String, usize)> {
        let map = self.tenants.lock().expect("quota lock");
        let mut rows: Vec<(String, usize)> = map
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Acquire)))
            .collect();
        rows.sort();
        rows
    }
}

/// RAII in-flight slot: dropping it returns the slot to the tenant.
pub struct QuotaGuard {
    cell: Arc<AtomicUsize>,
}

impl Drop for QuotaGuard {
    fn drop(&mut self) {
        self.cell.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_denies_at_the_limit_and_releases_on_drop() {
        let table = QuotaTable::new(2);
        let a = table.try_acquire("t").expect("slot 1");
        let _b = table.try_acquire("t").expect("slot 2");
        assert!(table.try_acquire("t").is_none(), "limit reached");
        assert_eq!(table.in_flight("t"), 2);
        // Other tenants are unaffected.
        assert!(table.try_acquire("u").is_some());
        drop(a);
        assert!(table.try_acquire("t").is_some(), "slot freed by drop");
    }

    #[test]
    fn zero_limit_tracks_without_denying() {
        let table = QuotaTable::new(0);
        let guards: Vec<_> = (0..64).map(|_| table.try_acquire("t").unwrap()).collect();
        assert_eq!(table.in_flight("t"), 64);
        drop(guards);
        assert_eq!(table.in_flight("t"), 0);
    }
}
