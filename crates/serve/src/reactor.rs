//! Std-only readiness polling over raw file descriptors.
//!
//! The serving tier's event loop needs exactly three primitives: register
//! a socket for readable/writable interest, block until something is
//! ready, and wake the loop from another thread. This module supplies
//! them with no dependencies beyond `std` and the platform's C library
//! (which every `std` program already links):
//!
//! - **Linux** — `epoll` via direct FFI (`epoll_create1` /
//!   `epoll_ctl` / `epoll_wait`), the same O(ready) readiness machinery
//!   every production event loop on Linux sits on. Level-triggered, so a
//!   handler that does not drain a socket is re-notified instead of
//!   silently stalled.
//! - **Other Unix** — `poll(2)` over the registered fd set. O(n) per
//!   wait, still correct; the shard fd counts this fallback sees in
//!   practice keep n small.
//! - **Non-Unix** — a documented busy-poll: every registered token is
//!   reported ready after a short sleep, and the nonblocking sockets
//!   sort out truth via `WouldBlock`. Correct everywhere, efficient
//!   nowhere; only the build portability matters on such hosts.
//!
//! The [`Waker`] is a nonblocking self-pipe registered like any other
//! fd: cross-thread code (batch workers finishing a reply, the server
//! initiating shutdown) writes one byte and the blocked [`Poller::wait`]
//! returns. Wakes coalesce — the pipe is drained, not counted.
//!
//! Everything here is deliberately oblivious to *what* the fds are;
//! `shard.rs` owns the connection semantics. The module is public so the
//! bench crate's multiplexed load generator can drive ten thousand
//! client sockets through the same machinery the server uses.

use std::io;
use std::time::Duration;

/// Token value reserved by convention for the [`Waker`]'s read end.
pub const WAKER_TOKEN: usize = usize::MAX;

/// What a registered fd wants to be notified about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Notify when a read would make progress (or the peer hung up).
    pub readable: bool,
    /// Notify when a write would make progress.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read + write interest — a connection with backpressured output.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: usize,
    /// A read would make progress.
    pub readable: bool,
    /// A write would make progress.
    pub writable: bool,
    /// The peer hung up or the fd errored; the owner should read to EOF
    /// (level-triggered readiness keeps reporting it) and close.
    pub hangup: bool,
}

/// The raw descriptor type registrations use.
#[cfg(unix)]
pub type Fd = std::os::fd::RawFd;

/// The raw descriptor type registrations use (ignored by the non-Unix
/// busy-poll fallback).
#[cfg(not(unix))]
pub type Fd = i64;

/// Returns the registrable descriptor of a TCP stream.
pub fn stream_fd(stream: &std::net::TcpStream) -> Fd {
    #[cfg(unix)]
    {
        std::os::fd::AsRawFd::as_raw_fd(stream)
    }
    #[cfg(not(unix))]
    {
        let _ = stream;
        0
    }
}

/// Returns the registrable descriptor of a TCP listener.
pub fn listener_fd(listener: &std::net::TcpListener) -> Fd {
    #[cfg(unix)]
    {
        std::os::fd::AsRawFd::as_raw_fd(listener)
    }
    #[cfg(not(unix))]
    {
        let _ = listener;
        0
    }
}

// ---------------------------------------------------------------------
// Linux: epoll
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Fd, Interest};
    use std::io;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// The kernel's `struct epoll_event`. x86-64 declares it packed in
    /// the UAPI headers; other architectures use natural layout.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    /// epoll-backed readiness queue.
    pub struct Poller {
        epfd: i32,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&self, op: i32, fd: Fd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub fn add(&mut self, fd: Fd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: Fd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn remove(&mut self, fd: Fd) -> io::Result<()> {
            // The event argument is ignored for DEL on modern kernels but
            // must be non-null on pre-2.6.9 ones; pass a dummy.
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let timeout_ms = match timeout {
                None => -1,
                Some(d) => i32::try_from(d.as_millis().min(i32::MAX as u128)).unwrap_or(i32::MAX),
            };
            let n = loop {
                let ret = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as i32,
                        timeout_ms,
                    )
                };
                match cvt(ret) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &self.buf[..n] {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data as usize,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

// ---------------------------------------------------------------------
// Other Unix: poll(2)
// ---------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{Event, Fd, Interest};
    use std::io;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    fn mask(interest: Interest) -> i16 {
        let mut m = 0;
        if interest.readable {
            m |= POLLIN;
        }
        if interest.writable {
            m |= POLLOUT;
        }
        m
    }

    /// poll(2)-backed readiness queue: the registered set is rebuilt into
    /// a `pollfd` array on every wait.
    pub struct Poller {
        entries: Vec<(Fd, usize, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                entries: Vec::new(),
            })
        }

        pub fn add(&mut self, fd: Fd, token: usize, interest: Interest) -> io::Result<()> {
            self.entries.push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: Fd, token: usize, interest: Interest) -> io::Result<()> {
            for e in &mut self.entries {
                if e.0 == fd {
                    *e = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn remove(&mut self, fd: Fd) -> io::Result<()> {
            self.entries.retain(|e| e.0 != fd);
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .entries
                .iter()
                .map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: mask(interest),
                    revents: 0,
                })
                .collect();
            let timeout_ms = match timeout {
                None => -1,
                Some(d) => i32::try_from(d.as_millis().min(i32::MAX as u128)).unwrap_or(i32::MAX),
            };
            loop {
                let ret = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
                if ret >= 0 {
                    break;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            }
            for (pfd, &(_, token, _)) in fds.iter().zip(&self.entries) {
                if pfd.revents != 0 {
                    out.push(Event {
                        token,
                        readable: pfd.revents & POLLIN != 0,
                        writable: pfd.revents & POLLOUT != 0,
                        hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------
// Non-Unix: busy-poll fallback
// ---------------------------------------------------------------------

#[cfg(not(unix))]
mod sys {
    use super::{Event, Fd, Interest};
    use std::io;
    use std::time::Duration;

    /// Busy-poll fallback: reports every registered token ready after a
    /// short sleep; the nonblocking sockets resolve truth via
    /// `WouldBlock`. Keeps non-Unix builds compiling and correct.
    pub struct Poller {
        entries: Vec<(Fd, usize, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                entries: Vec::new(),
            })
        }

        pub fn add(&mut self, fd: Fd, token: usize, interest: Interest) -> io::Result<()> {
            self.entries.push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: Fd, token: usize, interest: Interest) -> io::Result<()> {
            for e in &mut self.entries {
                if e.0 == fd {
                    *e = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn remove(&mut self, fd: Fd) -> io::Result<()> {
            self.entries.retain(|e| e.0 != fd);
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let nap = timeout
                .unwrap_or(Duration::from_millis(1))
                .min(Duration::from_millis(1));
            std::thread::sleep(nap);
            for &(_, token, interest) in &self.entries {
                out.push(Event {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                    hangup: false,
                });
            }
            Ok(())
        }
    }
}

/// A readiness queue over raw fds (see the module docs for the backend
/// selected per platform).
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Creates an empty poller.
    ///
    /// # Errors
    ///
    /// Propagates the platform's queue-creation failure (fd exhaustion).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: sys::Poller::new()?,
        })
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Propagates the platform registration failure (bad fd, duplicate
    /// registration on epoll).
    pub fn add(&mut self, fd: Fd, token: usize, interest: Interest) -> io::Result<()> {
        self.inner.add(fd, token, interest)
    }

    /// Updates the interest set of a registered fd.
    ///
    /// # Errors
    ///
    /// Fails when `fd` was never registered.
    pub fn modify(&mut self, fd: Fd, token: usize, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd, token, interest)
    }

    /// Deregisters `fd`. Must be called *before* closing the descriptor
    /// (a closed fd deregisters itself from epoll, but the poll fallback
    /// keeps polling it and would see `POLLNVAL`).
    ///
    /// # Errors
    ///
    /// Propagates the platform deregistration failure.
    pub fn remove(&mut self, fd: Fd) -> io::Result<()> {
        self.inner.remove(fd)
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` = block indefinitely), appending the readiness
    /// events to `out`. `out` is *not* cleared first. `EINTR` is retried
    /// internally.
    ///
    /// # Errors
    ///
    /// Propagates platform wait failures other than interruption.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.wait(out, timeout)
    }
}

// ---------------------------------------------------------------------
// Waker
// ---------------------------------------------------------------------

#[cfg(unix)]
mod waker_sys {
    use std::io;

    extern "C" {
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    const F_SETFL: i32 = 4;
    const O_NONBLOCK: i32 = 0o4000;

    pub struct Pipe {
        pub read_fd: i32,
        write_fd: i32,
    }

    impl Pipe {
        pub fn new() -> io::Result<Pipe> {
            let mut fds = [0i32; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                if unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) } < 0 {
                    let e = io::Error::last_os_error();
                    unsafe {
                        close(fds[0]);
                        close(fds[1]);
                    }
                    return Err(e);
                }
            }
            Ok(Pipe {
                read_fd: fds[0],
                write_fd: fds[1],
            })
        }

        pub fn wake(&self) {
            // A full pipe means a wake is already pending; both outcomes
            // leave the poller due to return, so errors are ignorable.
            let byte = 1u8;
            unsafe { write(self.write_fd, &byte, 1) };
        }

        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            while unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) } > 0 {}
        }
    }

    impl Drop for Pipe {
        fn drop(&mut self) {
            unsafe {
                close(self.read_fd);
                close(self.write_fd);
            }
        }
    }
}

/// Cross-thread wakeup for a blocked [`Poller::wait`].
///
/// On Unix this is a nonblocking self-pipe whose read end is registered
/// in the poller under [`WAKER_TOKEN`]; [`Waker::wake`] writes one byte.
/// On other platforms the busy-poll backend's short timeout substitutes
/// and [`Waker::wake`] is a no-op.
pub struct Waker {
    #[cfg(unix)]
    pipe: waker_sys::Pipe,
}

impl Waker {
    /// Creates the waker and registers its read end in `poller` under
    /// [`WAKER_TOKEN`].
    ///
    /// # Errors
    ///
    /// Propagates pipe-creation or registration failure.
    pub fn new(poller: &mut Poller) -> io::Result<Waker> {
        #[cfg(unix)]
        {
            let pipe = waker_sys::Pipe::new()?;
            poller.add(pipe.read_fd, WAKER_TOKEN, Interest::READ)?;
            Ok(Waker { pipe })
        }
        #[cfg(not(unix))]
        {
            let _ = poller;
            Ok(Waker {})
        }
    }

    /// Makes the owning poller's current (or next) wait return promptly.
    /// Callable from any thread; wakes coalesce.
    pub fn wake(&self) {
        #[cfg(unix)]
        self.pipe.wake();
    }

    /// Drains pending wake bytes. The event loop calls this when it sees
    /// [`WAKER_TOKEN`] so level-triggered readiness does not spin.
    pub fn drain(&self) {
        #[cfg(unix)]
        self.pipe.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poller_sees_readable_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .add(stream_fd(&server_side), 7, Interest::READ)
            .unwrap();

        client.write_all(b"x").unwrap();
        client.flush().unwrap();

        let mut events = Vec::new();
        // Generous timeout: loopback delivery is immediate in practice.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "expected readable event, got {events:?}"
        );
        poller.remove(stream_fd(&server_side)).unwrap();
    }

    #[test]
    fn waker_unblocks_wait() {
        let mut poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&mut poller).unwrap());
        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        // Unix: the wake byte arrives as WAKER_TOKEN readability. The
        // busy-poll fallback returns on timeout with no events; both are
        // prompt returns, which is the contract.
        #[cfg(unix)]
        {
            assert!(events.iter().any(|e| e.token == WAKER_TOKEN));
            waker.drain();
        }
        t.join().unwrap();
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .add(stream_fd(&server_side), 3, Interest::READ)
            .unwrap();
        drop(client);

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        // A close is surfaced as hangup and/or readable-EOF depending on
        // the backend; either lets the owner discover the close by
        // reading.
        assert!(
            events
                .iter()
                .any(|e| e.token == 3 && (e.hangup || e.readable)),
            "expected close notification, got {events:?}"
        );
    }
}
