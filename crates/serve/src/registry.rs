//! Deployed-model registry with versioned hot-swap, and the batch
//! execution engine.
//!
//! A [`Model`] wraps one deployed (folded, pruned) [`nn::Network`] plus
//! everything the scheduler needs to run it: the per-sample input/output
//! lengths for admission-time validation, and — when the network is an
//! fx-compatible conv stack — a pre-quantized [`FxModel`] mirroring it on
//! the hwsim fixed-point datapath ("FPGA mode").
//!
//! # Hot-swap
//!
//! Publishing a [`Model`] into the [`Registry`] wraps it in a versioned,
//! immutable [`ModelEntry`] behind an [`Arc`]. Request admission calls
//! [`Registry::resolve`], which returns the *newest* entry under the
//! name — and that `Arc` rides with the request through the batch queue,
//! so a version flip is atomic from the traffic's point of view:
//!
//! - requests admitted before the flip execute on the old entry they
//!   already hold (never a mix of versions inside one request),
//! - requests admitted after the flip resolve the new entry,
//! - the old version's weights are freed exactly when its last in-flight
//!   request completes (the `Arc` strong count hits zero) — a lossless
//!   drain with no coordination beyond reference counting.
//!
//! Batch execution is bit-identical to per-request execution on both
//! paths: every float forward op treats batch rows independently, and the
//! fx batch kernel ([`hwsim::inference::conv_forward_fx_batch_packed`])
//! preserves each sample's fixed-point operation sequence exactly —
//! batching only amortizes the per-dispatch plan build and weight
//! streams. The float path locks its `Network` per dispatch
//! (`Network::forward` takes `&mut self` for workspace reuse); the fx
//! path is lock-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hwsim::inference::{
    conv_forward_fx, conv_forward_fx_batch_packed, conv_forward_fx_batch_scalar, FxWeights,
};
use hwsim::{FxBatch, QFormat};
use nn::layers::checkpoint::LayerSnapshot;
use nn::{CheckpointError, CheckpointMeta, Network};
use tensor::Tensor;

use crate::session::SeqModel;

/// Which engine path a request wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Float spectral fast path (`Network::forward`, train = false).
    F32,
    /// hwsim 16-bit fixed-point datapath.
    Fx,
}

/// One stage of the fixed-point mirror of a conv stack.
enum FxStage {
    /// A folded BCM convolution, spectra pre-quantized.
    Conv(FxWeights),
    /// Elementwise `max(0)` on the i16 activations.
    Relu,
}

/// The hwsim fixed-point mirror of an fx-compatible model: a stack of
/// stride-1, "same"-padded folded BCM convolutions and ReLUs over a fixed
/// `[c, h, w]` input.
pub struct FxModel {
    q: QFormat,
    h: usize,
    w: usize,
    input_len: usize,
    output_len: usize,
    stages: Vec<FxStage>,
}

impl FxModel {
    /// Builds the fixed-point mirror from the network's layer snapshots.
    /// Returns `None` when the network is not an fx-compatible conv stack:
    /// fx mode supports exactly stride-1 BCM convolutions with symmetric
    /// "same" padding interleaved with ReLUs, over a rank-3 `[c, h, w]`
    /// input.
    fn build(net: &Network, meta: &CheckpointMeta) -> Option<FxModel> {
        let [c, h, w] = *meta.input_dims.as_slice() else {
            return None;
        };
        let q = QFormat::new(meta.frac_bits as u32);
        let mut stages = Vec::new();
        let mut channels = c;
        for layer in net.layers() {
            match layer.snapshot()? {
                LayerSnapshot::Relu => stages.push(FxStage::Relu),
                LayerSnapshot::BcmConv2d {
                    c_in,
                    c_out,
                    kernel,
                    stride,
                    pad,
                    ..
                } => {
                    if c_in != channels || stride != 1 || pad != (kernel - 1) / 2 {
                        return None;
                    }
                    let folded = layer.bcm()?.folded();
                    stages.push(FxStage::Conv(FxWeights::from_folded(q, &folded)));
                    channels = c_out;
                }
                _ => return None,
            }
        }
        if stages.is_empty() {
            return None;
        }
        Some(FxModel {
            q,
            h,
            w,
            input_len: c * h * w,
            output_len: channels * h * w,
            stages,
        })
    }

    /// The Q-format the model was calibrated for.
    pub fn qformat(&self) -> QFormat {
        self.q
    }

    /// Per-sample input length in i16 words.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Per-sample output length in i16 words.
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// Runs one sample through the fixed-point stack.
    pub fn forward(&self, sample: &[i16]) -> Vec<i16> {
        assert_eq!(sample.len(), self.input_len, "fx sample length");
        let mut cur = sample.to_vec();
        for stage in &self.stages {
            match stage {
                FxStage::Conv(wts) => cur = conv_forward_fx(self.q, wts, &cur, self.h, self.w),
                FxStage::Relu => {
                    for v in &mut cur {
                        *v = (*v).max(0);
                    }
                }
            }
        }
        cur
    }

    /// Runs a packed batch through the fixed-point stack via the
    /// vectorized lane kernels ([`conv_forward_fx_batch_packed`]): the
    /// `i16` words stay in the [`FxBatch`] container end to end — one
    /// flat buffer in, one flat buffer out, no per-sample row splits
    /// between layers. Each layer's eMAC plans and weight streams are
    /// prepared once per dispatch instead of once per sample — the
    /// amortization micro-batching exists to buy — and the lane form
    /// additionally shares each weight load across every sample in the
    /// batch. Outputs are bit-identical per sample to
    /// [`FxModel::forward`].
    pub fn forward_batch_packed(&self, batch: FxBatch) -> FxBatch {
        assert!(!batch.is_empty(), "empty fx batch");
        assert_eq!(batch.sample_len(), self.input_len, "fx sample length");
        assert_eq!(batch.format(), self.q, "fx batch format");
        let mut cur = batch;
        for stage in &self.stages {
            match stage {
                FxStage::Conv(wts) => {
                    cur = conv_forward_fx_batch_packed(wts, &cur, self.h, self.w);
                }
                FxStage::Relu => {
                    for v in cur.as_flat_mut() {
                        *v = (*v).max(0);
                    }
                }
            }
        }
        cur
    }

    /// Row-vector convenience over [`FxModel::forward_batch_packed`]:
    /// packs the rows into an [`FxBatch`], runs the lane datapath, and
    /// splits the result back into per-sample rows.
    pub fn forward_batch(&self, samples: &[Vec<i16>]) -> Vec<Vec<i16>> {
        self.forward_batch_packed(FxBatch::from_rows(self.q, samples))
            .into_rows()
    }

    /// Reference batch execution on the **scalar oracle** kernel
    /// ([`conv_forward_fx_batch_scalar`]). Bit-identical to
    /// [`FxModel::forward_batch`]; kept callable (not test-gated) so
    /// `exp_serve` can measure the engine-level scalar-vs-lane speedup at
    /// runtime.
    pub fn forward_batch_scalar(&self, samples: &[Vec<i16>]) -> Vec<Vec<i16>> {
        let n = samples.len();
        assert!(n > 0, "empty fx batch");
        let mut cur = Vec::with_capacity(n * self.input_len);
        for s in samples {
            assert_eq!(s.len(), self.input_len, "fx sample length");
            cur.extend_from_slice(s);
        }
        for stage in &self.stages {
            match stage {
                FxStage::Conv(wts) => {
                    cur = conv_forward_fx_batch_scalar(self.q, wts, &cur, n, self.h, self.w);
                }
                FxStage::Relu => {
                    for v in &mut cur {
                        *v = (*v).max(0);
                    }
                }
            }
        }
        let row = cur.len() / n;
        cur.chunks_exact(row).map(<[i16]>::to_vec).collect()
    }
}

/// A loaded model artifact: the network, its checkpoint metadata, and
/// (when fx-compatible) its fixed-point mirror. Publish it into a
/// [`Registry`] to serve it.
pub struct Model {
    name: String,
    net: Network,
    meta: CheckpointMeta,
    input_len: usize,
    output_len: usize,
    fx: Option<FxModel>,
    seq: Option<SeqModel>,
}

impl Model {
    /// Wraps a deployed network for serving under `name`, warming the
    /// spectral weight caches with one zero-sample forward (which also
    /// derives the output length).
    ///
    /// # Panics
    ///
    /// Panics if the network cannot forward a `[1, ...input_dims]` zero
    /// tensor — the checkpoint metadata disagrees with the stack.
    pub fn from_network(name: &str, mut net: Network, meta: CheckpointMeta) -> Model {
        let mut dims = vec![1usize];
        dims.extend_from_slice(&meta.input_dims);
        let warm = net.forward(&Tensor::zeros(&dims), false);
        let output_len = warm.len();
        let input_len = meta.sample_len();
        let fx = FxModel::build(&net, &meta);
        let seq = SeqModel::build(&net, &meta);
        Model {
            name: name.to_string(),
            net,
            meta,
            input_len,
            output_len,
            fx,
            seq,
        }
    }

    /// Loads a `.rpbcm` checkpoint and wraps it for serving; the model is
    /// named after the checkpoint's network name.
    ///
    /// # Errors
    ///
    /// Propagates [`CheckpointError`] from [`Network::load`].
    pub fn load_file(path: &std::path::Path) -> Result<Model, CheckpointError> {
        let (net, meta) = Network::load(path)?;
        let name = net.name().to_string();
        Ok(Model::from_network(&name, net, meta))
    }

    /// The registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Checkpoint metadata (input shape, Q-format).
    pub fn meta(&self) -> &CheckpointMeta {
        &self.meta
    }

    /// Per-sample float input length.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Per-sample float output length.
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// The fixed-point mirror, when the stack is fx-compatible.
    pub fn fx(&self) -> Option<&FxModel> {
        self.fx.as_ref()
    }

    /// The streaming-session templates, when the stack is a recurrent
    /// sequence model (see [`crate::session`]).
    pub fn seq(&self) -> Option<&SeqModel> {
        self.seq.as_ref()
    }
}

/// One published, immutable version of a model — what requests actually
/// execute against. Admission resolves an `Arc<ModelEntry>` and the
/// request carries it to execution, so a registry flip never changes the
/// version an in-flight request runs on.
pub struct ModelEntry {
    name: String,
    version: u64,
    meta: CheckpointMeta,
    input_len: usize,
    output_len: usize,
    /// `Network::forward` needs `&mut self` (workspace reuse), so the
    /// float path serializes per entry. The fx path below is lock-free.
    net: Mutex<Network>,
    fx: Option<FxModel>,
    seq: Option<SeqModel>,
}

impl ModelEntry {
    fn new(model: Model, version: u64) -> ModelEntry {
        ModelEntry {
            name: model.name,
            version,
            meta: model.meta,
            input_len: model.input_len,
            output_len: model.output_len,
            net: Mutex::new(model.net),
            fx: model.fx,
            seq: model.seq,
        }
    }

    /// The registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registry-assigned publication version (monotonic across the
    /// whole registry, so later publications always compare greater).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Checkpoint metadata (input shape, Q-format).
    pub fn meta(&self) -> &CheckpointMeta {
        &self.meta
    }

    /// Per-sample float input length.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Per-sample float output length.
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// The fixed-point mirror, when the stack is fx-compatible.
    pub fn fx(&self) -> Option<&FxModel> {
        self.fx.as_ref()
    }

    /// The streaming-session templates, when the stack is a recurrent
    /// sequence model. Sessions opened against this entry hold its `Arc`,
    /// so a hot swap never changes the weights mid-session.
    pub fn seq(&self) -> Option<&SeqModel> {
        self.seq.as_ref()
    }

    /// Runs a float batch: returns the per-sample output rows.
    /// Bit-identical to forwarding each sample alone — every layer in the
    /// stack treats batch rows independently in inference mode.
    pub fn forward_f32_batch(&self, samples: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let n = samples.len();
        assert!(n > 0, "empty batch");
        let mut flat = Vec::with_capacity(n * self.input_len);
        for s in samples {
            assert_eq!(s.len(), self.input_len, "f32 sample length");
            flat.extend_from_slice(s);
        }
        let mut dims = vec![n];
        dims.extend_from_slice(&self.meta.input_dims);
        let out = {
            let mut net = self.net.lock().expect("model net lock");
            net.forward(&Tensor::from_vec(flat, &dims), false)
        };
        let row = self.output_len;
        out.as_slice().chunks(row).map(<[f32]>::to_vec).collect()
    }

    /// Runs a fixed-point batch through the shared-plan batched datapath
    /// ([`FxModel::forward_batch`]); every sample's output stays
    /// bit-identical to a per-request [`FxModel::forward`] call.
    ///
    /// # Panics
    ///
    /// Panics if the model has no fx mirror — callers gate on
    /// [`ModelEntry::fx`] at admission time.
    pub fn forward_fx_batch(&self, samples: &[Vec<i16>]) -> Vec<Vec<i16>> {
        let fx = self.fx.as_ref().expect("fx mode unavailable");
        fx.forward_batch(samples)
    }

    /// Packed-container variant of [`ModelEntry::forward_fx_batch`] — the
    /// batch worker's entry point: the request payloads are flattened
    /// straight into an [`FxBatch`] and the `i16` lanes never leave it
    /// until reply split.
    ///
    /// # Panics
    ///
    /// Panics if the model has no fx mirror.
    pub fn forward_fx_batch_packed(&self, batch: FxBatch) -> FxBatch {
        let fx = self.fx.as_ref().expect("fx mode unavailable");
        fx.forward_batch_packed(batch)
    }
}

/// Descriptor the server validates requests against without touching the
/// engine-owned entries.
#[derive(Debug, Clone)]
pub struct ModelInfo {
    /// Registry name.
    pub name: String,
    /// Publication version of the newest entry under this name.
    pub version: u64,
    /// Per-sample float input length.
    pub input_len: usize,
    /// Per-sample float output length.
    pub output_len: usize,
    /// Per-sample fx input length, when fx mode is available.
    pub fx_input_len: Option<usize>,
    /// Whether streaming sessions can be opened against this model.
    pub streamable: bool,
}

/// The set of deployed models a server instance offers, with versioned
/// hot-swap (see the module docs). All methods take `&self`: the
/// registry is shared across shards and mutated live.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Arc<ModelEntry>>>,
    next_version: AtomicU64,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Publishes a model version, returning its entry. A publication
    /// under an existing name **is** the hot-swap: [`Registry::resolve`]
    /// returns the new entry from this call on, requests already holding
    /// the old entry finish on it, and the old version is dropped from
    /// the registry immediately (its weights are freed once the last
    /// in-flight reference releases).
    pub fn publish(&self, model: Model) -> Arc<ModelEntry> {
        let version = self.next_version.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = Arc::new(ModelEntry::new(model, version));
        let mut entries = self.entries.lock().expect("registry lock");
        // Retire prior versions of the same name in place so the catalog
        // keeps publication order for distinct names.
        match entries.iter().position(|e| e.name() == entry.name()) {
            Some(i) => entries[i] = Arc::clone(&entry),
            None => entries.push(Arc::clone(&entry)),
        }
        entry
    }

    /// [`Registry::publish`] under its historical name.
    pub fn insert(&self, model: Model) -> Arc<ModelEntry> {
        self.publish(model)
    }

    /// Loads a `.rpbcm` checkpoint and publishes it.
    ///
    /// # Errors
    ///
    /// Propagates [`CheckpointError`] from [`Model::load_file`].
    pub fn load_file(&self, path: &std::path::Path) -> Result<Arc<ModelEntry>, CheckpointError> {
        Ok(self.publish(Model::load_file(path)?))
    }

    /// The current entry under `name` — the newest published version.
    pub fn resolve(&self, name: &str) -> Option<Arc<ModelEntry>> {
        self.entries
            .lock()
            .expect("registry lock")
            .iter()
            .find(|e| e.name() == name)
            .map(Arc::clone)
    }

    /// Number of served names.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("registry lock").len()
    }

    /// Whether the registry serves nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().expect("registry lock").is_empty()
    }

    /// Immutable descriptors of every served name (newest versions).
    pub fn catalog(&self) -> Vec<ModelInfo> {
        self.entries
            .lock()
            .expect("registry lock")
            .iter()
            .map(|e| ModelInfo {
                name: e.name().to_string(),
                version: e.version(),
                input_len: e.input_len(),
                output_len: e.output_len(),
                fx_input_len: e.fx().map(FxModel::input_len),
                streamable: e.seq().is_some(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::layers::{BcmConv2d, Flatten, HadaBcmConv2d, Linear, ReLU};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn conv_stack(seed: u64) -> (Network, CheckpointMeta) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Network::new(
            "convstack",
            vec![
                Box::new(BcmConv2d::new(&mut rng, 4, 8, 3, 1, 1, 4)),
                Box::new(ReLU::new()),
                Box::new(BcmConv2d::new(&mut rng, 8, 4, 3, 1, 1, 4)),
            ],
        );
        let meta = CheckpointMeta {
            input_dims: vec![4, 5, 5],
            frac_bits: 8,
        };
        (net, meta)
    }

    #[test]
    fn conv_stack_gets_an_fx_mirror() {
        let (net, meta) = conv_stack(1);
        let model = Model::from_network("m", net, meta);
        assert_eq!(model.input_len(), 4 * 5 * 5);
        assert_eq!(model.output_len(), 4 * 5 * 5);
        let fx = model.fx().expect("fx mode");
        assert_eq!(fx.input_len(), 4 * 5 * 5);
        assert_eq!(fx.output_len(), 4 * 5 * 5);
    }

    #[test]
    fn folded_hadabcm_stack_gets_an_fx_mirror() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = Network::new(
            "hada",
            vec![
                Box::new(HadaBcmConv2d::new(&mut rng, 4, 4, 3, 1, 1, 4)),
                Box::new(ReLU::new()),
            ],
        );
        let meta = CheckpointMeta {
            input_dims: vec![4, 4, 4],
            frac_bits: 8,
        };
        let model = Model::from_network("hada", net, meta);
        assert!(model.fx().is_some());
    }

    #[test]
    fn dense_tails_disable_fx_mode() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = Network::new(
            "mixed",
            vec![
                Box::new(BcmConv2d::new(&mut rng, 4, 4, 3, 1, 1, 4)),
                Box::new(ReLU::new()),
                Box::new(Flatten::new()),
                Box::new(Linear::new(&mut rng, 4 * 4 * 4, 3)),
            ],
        );
        let meta = CheckpointMeta {
            input_dims: vec![4, 4, 4],
            frac_bits: 8,
        };
        let model = Model::from_network("mixed", net, meta);
        assert!(model.fx().is_none());
        assert_eq!(model.output_len(), 3);
    }

    #[test]
    fn f32_batches_are_bit_identical_to_single_samples() {
        let (net, meta) = conv_stack(4);
        let reg = Registry::new();
        let entry = reg.publish(Model::from_network("m", net, meta));
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<Vec<f32>> = (0..5)
            .map(|_| {
                (0..entry.input_len())
                    .map(|_| rand::Rng::gen_range(&mut rng, -1.0f32..1.0))
                    .collect()
            })
            .collect();
        let batched = entry.forward_f32_batch(&samples);
        for (s, b) in samples.iter().zip(&batched) {
            let single = &entry.forward_f32_batch(std::slice::from_ref(s))[0];
            let a: Vec<u32> = single.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, bb);
        }
    }

    #[test]
    fn fx_batches_match_direct_hwsim_inference() {
        let (net, meta) = conv_stack(6);
        let reg = Registry::new();
        let entry = reg.publish(Model::from_network("m", net, meta));
        let fx = entry.fx().unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<Vec<i16>> = (0..4)
            .map(|_| {
                (0..fx.input_len())
                    .map(|_| rand::Rng::gen_range(&mut rng, -256i16..256))
                    .collect()
            })
            .collect();
        let batched = entry.forward_fx_batch(&samples);
        for (s, b) in samples.iter().zip(&batched) {
            assert_eq!(&fx.forward(s), b);
        }
    }

    #[test]
    fn fx_scalar_oracle_matches_lane_batch() {
        let (net, meta) = conv_stack(10);
        let model = Model::from_network("m", net, meta);
        let fx = model.fx().unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<Vec<i16>> = (0..6)
            .map(|_| {
                (0..fx.input_len())
                    .map(|_| rand::Rng::gen_range(&mut rng, -256i16..256))
                    .collect()
            })
            .collect();
        let lane = fx.forward_batch(&samples);
        let scalar = fx.forward_batch_scalar(&samples);
        assert_eq!(lane, scalar, "lane engine diverged from scalar oracle");
        let packed = fx.forward_batch_packed(FxBatch::from_rows(fx.qformat(), &samples));
        assert_eq!(packed.into_rows(), lane);
    }

    #[test]
    fn publish_hot_swaps_resolution_and_keeps_old_arcs_alive() {
        let reg = Registry::new();
        let (net, meta) = conv_stack(8);
        let v1 = reg.publish(Model::from_network("a", net, meta));
        assert_eq!(v1.version(), 1);
        // A request in flight holds v1 across the flip.
        let in_flight = reg.resolve("a").unwrap();
        let (net, meta) = conv_stack(9);
        let v2 = reg.publish(Model::from_network("a", net, meta));
        assert_eq!(v2.version(), 2);
        assert_eq!(reg.resolve("a").unwrap().version(), 2);
        assert_eq!(in_flight.version(), 1, "in-flight ref still runs v1");
        assert_eq!(reg.len(), 1, "old version retired from the catalog");
        let cat = reg.catalog();
        assert_eq!(cat.len(), 1);
        assert_eq!(cat[0].version, 2);
        assert!(cat[0].fx_input_len.is_some());
        // The registry no longer pins v1: only local refs keep it alive.
        drop(v2);
        assert_eq!(Arc::strong_count(&v1), 2, "v1 + in_flight only");
    }
}
