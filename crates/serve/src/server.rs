//! The TCP front end: a dedicated acceptor feeding thread-per-core
//! reactor shards.
//!
//! [`Server::bind`] starts one acceptor thread (nonblocking listener on
//! its own [`Poller`]) and `cfg.shards` shard
//! threads (the `shard` module). The acceptor deals accepted sockets
//! to shards round-robin, so connection counts stay balanced by
//! construction; each shard owns its connections' I/O, its own batcher,
//! and its slice of admission control. The process never spawns a
//! thread per connection — thread count is `1 + shards + shards`
//! (acceptor, reactors, batch workers) regardless of connection count.
//!
//! # Hot swap
//!
//! The model registry lives behind [`Server::registry`] and stays fully
//! shared and mutable-through-`&self` while the server runs: publishing
//! a new [`Model`](crate::Model) under an existing name atomically
//! flips which version new requests resolve, while requests already
//! admitted ride their `Arc<ModelEntry>` and finish on the old weights
//! (see [`crate::registry`]). No pause, no drain, no dropped request.
//!
//! # Graceful shutdown
//!
//! [`Server::shutdown`] stops the acceptor first (no new connections),
//! then asks every shard to drain: queued requests still execute and
//! answer, responses flush, and late requests get explicit
//! `shutting_down` replies. A request that got `ok` on the wire was
//! really executed; one that got `shutting_down` was really not.

use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::batcher::Batcher;
use crate::config::ServeConfig;
use crate::conn::Notifier;
use crate::quota::QuotaTable;
use crate::reactor::{self, Event, Interest, Poller, Waker};
use crate::registry::Registry;
use crate::shard::{ShardHandle, ShardStats};

/// How long the acceptor blocks before re-checking the stop flag.
const ACCEPT_TICK: Duration = Duration::from_millis(50);

/// Flight-recorder ring capacity per shard (completed traces kept).
const FLIGHT_CAPACITY: usize = 1024;

/// State shared by the acceptor, the shards and the [`Server`] handle.
pub(crate) struct ServerShared {
    /// The configuration the server was started with.
    pub cfg: ServeConfig,
    /// The live model catalog; resolved per request, hot-swappable.
    pub registry: Arc<Registry>,
    /// Per-tenant in-flight admission quotas.
    pub quotas: QuotaTable,
    /// Set by [`Server::shutdown`]; every loop polls it.
    pub stop: AtomicBool,
    /// Set by a remote `shutdown` request; hosts poll it via
    /// [`Server::shutdown_requested`].
    pub remote_shutdown: AtomicBool,
    /// Wire-level violations observed (handshake, framing, decode).
    pub protocol_errors: AtomicU64,
    /// Every shard's cross-thread face, set once during bind (before
    /// any shard thread starts) so request handlers can assemble
    /// cross-shard `stats` snapshots.
    pub shards: OnceLock<Vec<Arc<ShardHandle>>>,
    /// Flight-recorder dumps written so far (`(json, chrome_trace)`
    /// path pairs), newest last.
    pub flight_dumps: Mutex<Vec<(PathBuf, PathBuf)>>,
    /// Streaming sessions currently open across all shards, checked
    /// against `cfg.session_cap` at `session_open`.
    pub active_sessions: AtomicU64,
}

impl ServerShared {
    /// The shard handles (always set after [`Server::bind`] returns).
    pub(crate) fn shard_handles(&self) -> &[Arc<ShardHandle>] {
        self.shards.get().map_or(&[], Vec::as_slice)
    }
}

/// A running serve instance.
pub struct Server {
    shared: Arc<ServerShared>,
    shards: Vec<Arc<ShardHandle>>,
    local_addr: SocketAddr,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor and `cfg.shards` reactor shards, each with its own
    /// batch worker.
    ///
    /// # Errors
    ///
    /// Propagates socket and poller errors from binding and shard
    /// setup.
    pub fn bind(
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
        registry: Registry,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            cfg,
            registry: Arc::new(registry),
            quotas: QuotaTable::new(cfg.tenant_quota),
            stop: AtomicBool::new(false),
            remote_shutdown: AtomicBool::new(false),
            protocol_errors: AtomicU64::new(0),
            shards: OnceLock::new(),
            flight_dumps: Mutex::new(Vec::new()),
            active_sessions: AtomicU64::new(0),
        });

        // Build every shard handle (and its poller) before spawning any
        // thread, so the shared handle list is complete by the time the
        // first request can ask for a cross-shard stats snapshot.
        let n_shards = cfg.shards.max(1);
        let mut shards = Vec::with_capacity(n_shards);
        let mut pollers = Vec::with_capacity(n_shards);
        for index in 0..n_shards {
            let mut poller = Poller::new()?;
            let waker = Waker::new(&mut poller)?;
            let handle = Arc::new(ShardHandle {
                index,
                inbox: Mutex::new(Vec::new()),
                notifier: Notifier::new(waker),
                batcher: Batcher::start(cfg),
                stats: ShardStats::default(),
                ring: Arc::new(telemetry::flight::FlightRing::new(FLIGHT_CAPACITY)),
                gang_seq: std::sync::atomic::AtomicU32::new(0),
            });
            shards.push(handle);
            pollers.push(poller);
        }
        shared
            .shards
            .set(shards.clone())
            .unwrap_or_else(|_| unreachable!("shards set once during bind"));

        let mut threads = Vec::with_capacity(n_shards + 2);
        for (handle, poller) in shards.iter().zip(pollers) {
            let thread_handle = Arc::clone(handle);
            let thread_shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-shard-{}", handle.index))
                    .spawn(move || crate::shard::run(&thread_handle, &thread_shared, poller))
                    .expect("spawn shard thread"),
            );
        }

        let accept_shared = Arc::clone(&shared);
        let accept_shards = shards.clone();
        threads.push(
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &accept_shared, &accept_shards))
                .expect("spawn accept loop"),
        );

        if cfg.slo_p99_us > 0 || cfg.slo_shed_pct > 0 {
            let watch_shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-slo-watchdog".into())
                    .spawn(move || crate::stats::watchdog_loop(&watch_shared))
                    .expect("spawn SLO watchdog"),
            );
        }

        Ok(Server {
            shared,
            shards,
            local_addr,
            threads: Mutex::new(threads),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The live model registry. Publishing a model under an existing
    /// name hot-swaps it: requests admitted after the publish run the
    /// new version, requests already in flight finish on the old one.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// Whether a client sent the `shutdown` opcode. Hosts embedding the
    /// server (e.g. `exp_serve --listen`) poll this to decide when to
    /// call [`Server::shutdown`].
    pub fn shutdown_requested(&self) -> bool {
        self.shared.remote_shutdown.load(Ordering::SeqCst)
    }

    /// Wire-level protocol violations seen so far.
    pub fn protocol_errors(&self) -> u64 {
        self.shared.protocol_errors.load(Ordering::SeqCst)
    }

    /// Streaming sessions currently open across all shards.
    pub fn active_sessions(&self) -> u64 {
        self.shared.active_sessions.load(Ordering::SeqCst)
    }

    /// The per-tenant quota table (in-flight counts and the limit).
    pub fn quotas(&self) -> &QuotaTable {
        &self.shared.quotas
    }

    /// The versioned stats snapshot — the same JSON document the `stats`
    /// opcode returns over the wire (see `docs/PROTOCOL.md` §3.4).
    pub fn stats_snapshot(&self) -> String {
        crate::stats::stats_json(&self.shared)
    }

    /// Forces a flight-recorder dump right now (as the SLO watchdog
    /// would on a violation) and returns the `(json, chrome_trace)`
    /// path pair. Files land in `RPBCM_SERVE_SLO_DIR` (default: the
    /// working directory).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from writing either file.
    pub fn dump_flight(&self, reason: &str) -> std::io::Result<(PathBuf, PathBuf)> {
        crate::stats::dump_flight(&self.shared, reason)
    }

    /// Every flight-recorder dump written so far (watchdog-triggered or
    /// forced), as `(json, chrome_trace)` path pairs, oldest first.
    pub fn flight_dumps(&self) -> Vec<(PathBuf, PathBuf)> {
        self.shared.flight_dumps.lock().expect("dump lock").clone()
    }

    /// Per-shard `(connections_assigned, requests_parsed)` counters,
    /// indexed by shard. The bench harness derives its load-imbalance
    /// metric from these.
    pub fn shard_stats(&self) -> Vec<(u64, u64)> {
        self.shards
            .iter()
            .map(|s| {
                (
                    s.stats.conns.load(Ordering::Relaxed),
                    s.stats.requests.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Graceful shutdown: stops accepting, then drains every shard —
    /// queued requests execute and their replies flush before the
    /// shard exits. Idempotent.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            shard.notifier.wake();
        }
        let threads = std::mem::take(&mut *self.threads.lock().expect("threads lock"));
        for handle in threads {
            handle.join().expect("serve thread panicked");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accepts connections and deals them to shards round-robin.
fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>, shards: &[Arc<ShardHandle>]) {
    let mut poller = match Poller::new() {
        Ok(p) => p,
        Err(_) => return,
    };
    let fd = reactor::listener_fd(listener);
    let registered = poller.add(fd, 0, Interest::READ).is_ok();
    let mut events: Vec<Event> = Vec::new();
    let mut next = 0usize;
    while !shared.stop.load(Ordering::SeqCst) {
        events.clear();
        if registered {
            poller.wait(&mut events, Some(ACCEPT_TICK)).ok();
        } else {
            // Registration failed: degrade to plain interval polling.
            std::thread::sleep(ACCEPT_TICK);
        }
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let shard = &shards[next % shards.len()];
                    next = next.wrapping_add(1);
                    shard.inbox.lock().expect("shard inbox").push(stream);
                    shard.notifier.wake();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }
    if registered {
        poller.remove(fd).ok();
    }
}
