//! The TCP front end: connection handling, request validation, and
//! graceful shutdown.
//!
//! One thread accepts connections (non-blocking listener polled every
//! ~10 ms so shutdown is responsive without platform-specific unblocking
//! tricks); each connection gets its own thread that speaks either the
//! binary or the JSON mode (see [`crate::protocol`]). Connection threads
//! validate requests against the registry catalog *before* queueing, so
//! malformed traffic never consumes a batch slot.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::batcher::{Batcher, SubmitError};
use crate::config::ServeConfig;
use crate::metrics;
use crate::protocol::{self, Payload, Request, Response, Status, WireError, HANDSHAKE};
use crate::registry::{Mode, ModelInfo, Registry};

/// How often blocked accept/read loops re-check the stop flag.
const POLL: Duration = Duration::from_millis(10);

struct Inner {
    batcher: Batcher,
    catalog: Vec<ModelInfo>,
    stop: AtomicBool,
    /// Set by a remote `shutdown` request; hosts poll it via
    /// [`Server::shutdown_requested`].
    remote_shutdown: AtomicBool,
    /// Wire-level violations observed (handshake, framing, decode).
    protocol_errors: AtomicU64,
}

/// A running serve instance.
pub struct Server {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    accept: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop and batch worker.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind(
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
        registry: Registry,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let catalog = registry.catalog();
        let inner = Arc::new(Inner {
            batcher: Batcher::start(cfg, registry),
            catalog,
            stop: AtomicBool::new(false),
            remote_shutdown: AtomicBool::new(false),
            protocol_errors: AtomicU64::new(0),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_inner))
            .expect("spawn accept loop");
        Ok(Server {
            inner,
            local_addr,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether a client sent the `shutdown` opcode. Hosts embedding the
    /// server (e.g. `exp_serve --listen`) poll this to decide when to
    /// call [`Server::shutdown`].
    pub fn shutdown_requested(&self) -> bool {
        self.inner.remote_shutdown.load(Ordering::SeqCst)
    }

    /// Wire-level protocol violations seen so far.
    pub fn protocol_errors(&self) -> u64 {
        self.inner.protocol_errors.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stops accepting, lets connection threads wind
    /// down, then drains every queued request through the engine before
    /// returning. Idempotent.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.lock().expect("accept lock").take() {
            handle.join().expect("accept loop panicked");
        }
        // The accept loop joined its connection threads; now drain the
        // batch queue.
        self.inner.batcher.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !inner.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_inner = Arc::clone(inner);
                let handle = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || {
                        match serve_connection(stream, &conn_inner) {
                            // Clean hang-ups (including idle connections cut
                            // off by shutdown) are not protocol violations.
                            Ok(()) | Err(WireError::Closed) => {}
                            Err(_) => {
                                conn_inner.protocol_errors.fetch_add(1, Ordering::SeqCst);
                                metrics::REJECTED.add(1);
                            }
                        }
                    })
                    .expect("spawn connection thread");
                conns.push(handle);
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
    for handle in conns {
        handle.join().expect("connection thread panicked");
    }
}

/// Reads the first 4 bytes to pick the protocol mode, then serves the
/// connection until the peer hangs up or the server stops.
fn serve_connection(stream: TcpStream, inner: &Arc<Inner>) -> Result<(), WireError> {
    stream.set_read_timeout(Some(POLL))?;
    stream.set_nodelay(true).ok();
    let mut preamble = [0u8; 4];
    read_with_stop(&stream, &mut preamble, inner)?;
    if preamble == HANDSHAKE {
        serve_binary(stream, inner)
    } else if preamble[0] == b'{' {
        serve_json(stream, &preamble, inner)
    } else {
        Err(WireError::Malformed("unknown handshake".into()))
    }
}

/// `read_exact` that tolerates the poll-interval read timeout while the
/// server is live and bails once it stops.
fn read_with_stop(mut stream: &TcpStream, buf: &mut [u8], inner: &Inner) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        if inner.stop.load(Ordering::SeqCst) {
            return Err(WireError::Closed);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Err(WireError::Closed)
                } else {
                    Err(WireError::Malformed("eof inside frame".into()))
                };
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

fn serve_binary(stream: TcpStream, inner: &Arc<Inner>) -> Result<(), WireError> {
    let mut write_half = stream.try_clone()?;
    loop {
        // Length prefix + payload, both tolerant of poll timeouts.
        let mut len4 = [0u8; 4];
        match read_with_stop(&stream, &mut len4, inner) {
            Ok(()) => {}
            Err(WireError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes(len4) as usize;
        if len > protocol::MAX_FRAME {
            return Err(WireError::Malformed(format!("frame of {len} bytes")));
        }
        let mut payload = vec![0u8; len];
        read_with_stop(&stream, &mut payload, inner)?;
        let response = match protocol::decode_request(&payload) {
            Ok(req) => handle_request(req, inner),
            Err(e) => {
                inner.protocol_errors.fetch_add(1, Ordering::SeqCst);
                metrics::REJECTED.add(1);
                Response::Error(Status::BadRequest, e.to_string())
            }
        };
        protocol::write_frame(&mut write_half, &protocol::encode_response(&response))?;
    }
}

fn serve_json(stream: TcpStream, preamble: &[u8; 4], inner: &Arc<Inner>) -> Result<(), WireError> {
    let mut write_half = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line_buf = preamble.to_vec();
    loop {
        // Finish the current line (the preamble already holds its head).
        if !read_line_with_stop(&mut reader, &mut line_buf, inner)? {
            return Ok(());
        }
        let line = String::from_utf8_lossy(&line_buf).into_owned();
        line_buf.clear();
        if line.trim().is_empty() {
            continue;
        }
        let response = match protocol::parse_json_request(&line) {
            Ok(req) => handle_request(req, inner),
            Err(e) => {
                inner.protocol_errors.fetch_add(1, Ordering::SeqCst);
                metrics::REJECTED.add(1);
                Response::Error(Status::BadRequest, e.to_string())
            }
        };
        let mut out = protocol::render_json_response(&response).into_bytes();
        out.push(b'\n');
        write_half.write_all(&out)?;
        write_half.flush()?;
    }
}

/// Appends bytes up to (not including) the next `\n` to `buf`. Returns
/// `false` on a clean hang-up before any new byte.
fn read_line_with_stop(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    inner: &Inner,
) -> Result<bool, WireError> {
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return Ok(false);
        }
        match reader.read_until(b'\n', buf) {
            // EOF: process a final unterminated line if one accumulated.
            Ok(0) => return Ok(!buf.is_empty()),
            Ok(_) => {
                if buf.last() == Some(&b'\n') {
                    buf.pop();
                    return Ok(true);
                }
                // Timed out mid-line with partial data; keep reading.
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
}

/// Validates a decoded request against the catalog, routes it through
/// the batcher, and waits for the reply.
fn handle_request(req: Request, inner: &Inner) -> Response {
    match req {
        Request::Ping => Response::Output(Payload::F32(Vec::new())),
        Request::Shutdown => {
            inner.remote_shutdown.store(true, Ordering::SeqCst);
            Response::Output(Payload::F32(Vec::new()))
        }
        Request::Infer { model, input } => {
            let Some(idx) = inner.catalog.iter().rposition(|m| m.name == model) else {
                metrics::REJECTED.add(1);
                return Response::Error(Status::UnknownModel, format!("no model {model:?}"));
            };
            let info = &inner.catalog[idx];
            let (mode, expect) = match &input {
                Payload::F32(_) => (Mode::F32, Some(info.input_len)),
                Payload::Fx(_) => (Mode::Fx, info.fx_input_len),
            };
            let Some(expect) = expect else {
                metrics::REJECTED.add(1);
                return Response::Error(
                    Status::BadRequest,
                    format!("model {model:?} has no fixed-point mode"),
                );
            };
            if input.len() != expect {
                metrics::REJECTED.add(1);
                return Response::Error(
                    Status::BadRequest,
                    format!("input length {} != expected {expect}", input.len()),
                );
            }
            match inner.batcher.submit(idx, mode, input) {
                Ok(rx) => match rx.recv() {
                    Ok(output) => Response::Output(output),
                    Err(_) => Response::Error(
                        Status::ShuttingDown,
                        "server stopped before executing the request".into(),
                    ),
                },
                Err(SubmitError::Overloaded) => {
                    Response::Error(Status::Overloaded, "queue at capacity".into())
                }
                Err(SubmitError::ShuttingDown) => {
                    Response::Error(Status::ShuttingDown, "server is draining".into())
                }
            }
        }
    }
}
