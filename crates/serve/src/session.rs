//! Streaming-session runtimes: the per-session steppers a shard pins
//! when a client opens a stateful session (`session_open`, opcode 6).
//!
//! A session's hidden state lives server-side and advances one timestep
//! per `session_step`. Two datapaths mirror the batch engine's split:
//!
//! - **float** — [`nn::seq::SeqRunner`], whose per-step outputs are
//!   bit-identical to the offline full-sequence `Network::forward` (the
//!   shared-cell-math contract proven in `nn::seq`);
//! - **fixed-point** — [`FxSeqRunner`] below, a stack of
//!   [`hwsim::FxLstmCell`] / [`hwsim::FxGruCell`] cells plus an optional
//!   [`hwsim::FxLinear`] head, rebuilt from the same layer snapshots.
//!   The fx cells are pure functions of quantized state and input, so a
//!   streamed replay is trivially bit-identical to an offline fold of
//!   the same step sequence.
//!
//! Both runners are built **once per published model version** as
//! zero-state templates inside [`SeqModel`] (carried by the registry's
//! `ModelEntry`), and cloned per session — so `session_open` never
//! re-quantizes weights or re-plans FFTs, and the template's `Arc` rides
//! the entry that the session pinned, giving hot-swap isolation for
//! free.

use circulant::{BlockCirculant, CirculantMatrix, ConvBlockCirculant};
use hwsim::inference::FxWeights;
use hwsim::{FxGruCell, FxLinear, FxLstmCell, QFormat};
use nn::layers::checkpoint::LayerSnapshot;
use nn::seq::SeqRunner;
use nn::{CheckpointMeta, Network};

/// One fixed-point recurrent cell of an [`FxSeqRunner`].
#[derive(Debug, Clone)]
enum FxCell {
    Lstm(FxLstmCell),
    Gru(FxGruCell),
}

impl FxCell {
    fn in_features(&self) -> usize {
        match self {
            FxCell::Lstm(c) => c.in_features(),
            FxCell::Gru(c) => c.in_features(),
        }
    }

    fn hidden(&self) -> usize {
        match self {
            FxCell::Lstm(c) => c.hidden(),
            FxCell::Gru(c) => c.hidden(),
        }
    }

    fn reset(&mut self) {
        match self {
            FxCell::Lstm(c) => c.reset(),
            FxCell::Gru(c) => c.reset(),
        }
    }

    fn step(&mut self, x: &[i16]) -> Vec<i16> {
        match self {
            FxCell::Lstm(c) => c.step(x).to_vec(),
            FxCell::Gru(c) => c.step(x).to_vec(),
        }
    }
}

/// Quantizes one checkpointed BCM grid (defining vectors + skip index)
/// into the eMAC spectra form the fx cells consume.
fn fx_weights(
    q: QFormat,
    bs: usize,
    out_blocks: usize,
    in_blocks: usize,
    vecs: &[f32],
    live: &[bool],
) -> FxWeights {
    let blocks = live
        .iter()
        .enumerate()
        .map(|(blk, &l)| {
            if l {
                CirculantMatrix::new(vecs[blk * bs..(blk + 1) * bs].to_vec())
            } else {
                CirculantMatrix::zeros(bs)
            }
        })
        .collect();
    let grid = BlockCirculant::from_blocks(bs, out_blocks, in_blocks, blocks);
    grid.prepare_spectra();
    FxWeights::from_folded(q, &ConvBlockCirculant::from_grids(1, 1, vec![grid]))
}

/// The fixed-point streaming stepper: the "FPGA mode" twin of
/// [`SeqRunner`], running every gate matvec through the same
/// [`hwsim::inference::conv_forward_fx`] eMAC kernels as batch fx
/// inference.
#[derive(Debug, Clone)]
pub struct FxSeqRunner {
    q: QFormat,
    cells: Vec<FxCell>,
    head: Option<FxLinear>,
}

impl FxSeqRunner {
    /// Builds the fx stepper from a network's layer snapshots, quantized
    /// to the checkpoint's Q-format. Returns `None` when the stack has no
    /// streaming form (same acceptance rule as [`SeqRunner`]: one or more
    /// `BcmLstm` / `BcmGru` cells, optional `GlobalAvgPool`, optional
    /// dense `Linear` head, nothing else).
    pub(crate) fn build(net: &Network, meta: &CheckpointMeta) -> Option<FxSeqRunner> {
        let q = QFormat::new(meta.frac_bits as u32);
        let mut cells: Vec<FxCell> = Vec::new();
        let mut head: Option<FxLinear> = None;
        for layer in net.layers() {
            let snap = layer.snapshot()?;
            if head.is_some() {
                return None;
            }
            match snap {
                LayerSnapshot::BcmLstm {
                    in_features,
                    hidden,
                    bs,
                    live,
                    vecs,
                    bias,
                } => {
                    let wts = fx_weights(
                        q,
                        bs,
                        4 * hidden / bs,
                        (in_features + hidden) / bs,
                        &vecs,
                        &live,
                    );
                    cells.push(FxCell::Lstm(FxLstmCell::new(
                        q,
                        wts,
                        q.quantize_slice(&bias),
                        in_features,
                    )));
                }
                LayerSnapshot::BcmGru {
                    in_features,
                    hidden,
                    bs,
                    w_live,
                    w_vecs,
                    u_live,
                    u_vecs,
                    bias_w,
                    bias_u,
                } => {
                    let w = fx_weights(q, bs, 3 * hidden / bs, in_features / bs, &w_vecs, &w_live);
                    let u = fx_weights(q, bs, 3 * hidden / bs, hidden / bs, &u_vecs, &u_live);
                    cells.push(FxCell::Gru(FxGruCell::new(
                        q,
                        w,
                        u,
                        q.quantize_slice(&bias_w),
                        q.quantize_slice(&bias_u),
                    )));
                }
                LayerSnapshot::GlobalAvgPool => {}
                LayerSnapshot::Linear {
                    in_features,
                    out_features,
                    weight,
                    bias,
                } => {
                    if cells.is_empty() {
                        return None;
                    }
                    head = Some(FxLinear::quantize(
                        q,
                        &weight,
                        &bias,
                        out_features,
                        in_features,
                    ));
                }
                _ => return None,
            }
        }
        if cells.is_empty() {
            return None;
        }
        for pair in cells.windows(2) {
            if pair[1].in_features() != pair[0].hidden() {
                return None;
            }
        }
        if let Some(h) = &head {
            if h.in_features() != cells.last().expect("non-empty").hidden() {
                return None;
            }
        }
        Some(FxSeqRunner { q, cells, head })
    }

    /// The Q-format the stepper was quantized for.
    pub fn qformat(&self) -> QFormat {
        self.q
    }

    /// Per-step input width in i16 words.
    pub fn input_len(&self) -> usize {
        self.cells[0].in_features()
    }

    /// Per-step output width in i16 words.
    pub fn output_len(&self) -> usize {
        match &self.head {
            Some(h) => h.out_features(),
            None => self.cells.last().expect("non-empty").hidden(),
        }
    }

    /// Zeroes all hidden state, starting a fresh sequence.
    pub fn reset(&mut self) {
        for c in &mut self.cells {
            c.reset();
        }
    }

    /// Advances one timestep and returns the per-step output.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_len()` (the shard validates
    /// lengths before stepping).
    pub fn step(&mut self, x: &[i16]) -> Vec<i16> {
        assert_eq!(x.len(), self.input_len(), "fx step input length");
        let mut cur = x.to_vec();
        for cell in &mut self.cells {
            cur = cell.step(&cur);
        }
        match &self.head {
            Some(h) => h.apply(&cur),
            None => cur,
        }
    }
}

/// Lane-batched stepping over independent [`FxSeqRunner`]s of the same
/// model version: the fixed-point twin of [`nn::seq::SeqRunnerBatch`].
///
/// Each cell level dispatches to [`FxLstmCell::step_gang`] /
/// [`FxGruCell::step_gang`], which pack the lanes' state into an
/// `FxBatch` and run one pass over the packed eMAC lane kernels; bias,
/// gates and the head stay per-lane scalar word arithmetic. Every
/// member's output and hidden state after a gang step is **bit-identical
/// to a solo [`FxSeqRunner::step`]**, so the shard can gang and un-gang
/// sessions freely between steps with no observable difference on the
/// wire.
///
/// Members must be clones of the same model version's template (the
/// shard groups sessions by registry entry before ganging); the gang
/// steps through member 0's quantized weights.
pub struct FxSeqRunnerBatch;

impl FxSeqRunnerBatch {
    /// Advances every member one timestep; returns one per-step output
    /// per member, in member order.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != members.len()`, if any input length differs
    /// from its member's [`FxSeqRunner::input_len`], or if members
    /// disagree on stack shape (cell count, kinds, widths, `Q`-format).
    pub fn step(members: &mut [&mut FxSeqRunner], xs: &[&[i16]]) -> Vec<Vec<i16>> {
        let n = members.len();
        assert_eq!(xs.len(), n, "one input per gang member");
        if n == 0 {
            return Vec::new();
        }
        let n_cells = members[0].cells.len();
        for (m, x) in members.iter().zip(xs) {
            assert_eq!(
                m.cells.len(),
                n_cells,
                "gang members must share a stack shape"
            );
            assert_eq!(x.len(), m.input_len(), "fx step input length");
        }
        let mut curs: Vec<Vec<i16>> = xs.iter().map(|x| x.to_vec()).collect();
        for ci in 0..n_cells {
            let x_refs: Vec<&[i16]> = curs.iter().map(|c| c.as_slice()).collect();
            let is_lstm = matches!(members[0].cells[ci], FxCell::Lstm(_));
            curs = if is_lstm {
                let mut cells: Vec<&mut FxLstmCell> = members
                    .iter_mut()
                    .map(|m| match &mut m.cells[ci] {
                        FxCell::Lstm(c) => c,
                        FxCell::Gru(_) => panic!("gang members must agree on cell kinds"),
                    })
                    .collect();
                FxLstmCell::step_gang(&mut cells, &x_refs)
            } else {
                let mut cells: Vec<&mut FxGruCell> = members
                    .iter_mut()
                    .map(|m| match &mut m.cells[ci] {
                        FxCell::Gru(c) => c,
                        FxCell::Lstm(_) => panic!("gang members must agree on cell kinds"),
                    })
                    .collect();
                FxGruCell::step_gang(&mut cells, &x_refs)
            };
        }
        members
            .iter()
            .zip(curs)
            .map(|(m, cur)| match &m.head {
                Some(h) => h.apply(&cur),
                None => cur,
            })
            .collect()
    }
}

/// The streaming capability of one published model version: zero-state
/// float and (when buildable) fixed-point stepper templates, cloned per
/// session at `session_open`.
pub struct SeqModel {
    runner: SeqRunner,
    fx: Option<FxSeqRunner>,
}

impl SeqModel {
    /// Builds the templates, or `None` when the stack has no streaming
    /// form (e.g. a conv stack, or a non-causal attention layer).
    pub(crate) fn build(net: &Network, meta: &CheckpointMeta) -> Option<SeqModel> {
        let runner = SeqRunner::from_network(net).ok()?;
        let fx = FxSeqRunner::build(net, meta);
        Some(SeqModel { runner, fx })
    }

    /// Per-step float input width.
    pub fn input_len(&self) -> usize {
        self.runner.input_len()
    }

    /// Per-step float output width.
    pub fn output_len(&self) -> usize {
        self.runner.output_len()
    }

    /// Whether fixed-point sessions are available on this model.
    pub fn has_fx(&self) -> bool {
        self.fx.is_some()
    }

    /// A fresh zero-state float session stepper.
    pub fn new_f32(&self) -> SeqRunner {
        let mut r = self.runner.clone();
        r.reset();
        r
    }

    /// A fresh zero-state fixed-point session stepper, when available.
    pub fn new_fx(&self) -> Option<FxSeqRunner> {
        self.fx.as_ref().map(|t| {
            let mut r = t.clone();
            r.reset();
            r
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::models::{gru_classifier, lstm_classifier, vgg_tiny, ConvMode};

    fn meta() -> CheckpointMeta {
        CheckpointMeta {
            input_dims: vec![8, 6, 1],
            frac_bits: 12,
        }
    }

    #[test]
    fn recurrent_stacks_get_both_steppers() {
        let net = lstm_classifier(8, 8, 4, 4, 3);
        let seq = SeqModel::build(&net, &meta()).expect("streamable");
        assert_eq!(seq.input_len(), 8);
        assert_eq!(seq.output_len(), 4);
        assert!(seq.has_fx());
        let fx = seq.new_fx().unwrap();
        assert_eq!(fx.input_len(), 8);
        assert_eq!(fx.output_len(), 4);
        assert_eq!(fx.qformat(), QFormat::new(12));
    }

    #[test]
    fn conv_stacks_have_no_streaming_form() {
        let net = vgg_tiny(ConvMode::Bcm { block_size: 4 }, 10, 4);
        assert!(SeqModel::build(&net, &meta()).is_none());
    }

    #[test]
    fn fresh_sessions_start_from_zero_state() {
        let net = gru_classifier(4, 8, 3, 4, 5);
        let seq = SeqModel::build(
            &net,
            &CheckpointMeta {
                input_dims: vec![4, 5, 1],
                frac_bits: 12,
            },
        )
        .unwrap();
        let x = [0.25f32, -0.5, 0.125, 0.0625];
        let mut a = seq.new_f32();
        let first: Vec<u32> = a.step(&x).iter().map(|v| v.to_bits()).collect();
        a.step(&x);
        // A second fresh clone reproduces the first step exactly, and a
        // reset of a used stepper does too.
        let mut b = seq.new_f32();
        assert_eq!(
            b.step(&x).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            first
        );
        a.reset();
        assert_eq!(
            a.step(&x).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            first
        );

        let xq: Vec<i16> = seq.new_fx().unwrap().qformat().quantize_slice(&x);
        let mut fa = seq.new_fx().unwrap();
        let ffirst = fa.step(&xq);
        fa.step(&xq);
        fa.reset();
        assert_eq!(fa.step(&xq), ffirst);
        assert_eq!(seq.new_fx().unwrap().step(&xq), ffirst);
    }

    #[test]
    fn fx_gang_step_bit_identical_to_solo_scalar() {
        let net = lstm_classifier(4, 8, 3, 4, 9);
        let m = CheckpointMeta {
            input_dims: vec![4, 6, 1],
            frac_bits: 12,
        };
        let seq = SeqModel::build(&net, &m).unwrap();
        let q = seq.new_fx().unwrap().qformat();
        for width in [1usize, 3, 8] {
            let mut gang: Vec<FxSeqRunner> = (0..width).map(|_| seq.new_fx().unwrap()).collect();
            let mut solo: Vec<FxSeqRunner> = (0..width).map(|_| seq.new_fx().unwrap()).collect();
            for t in 0..6 {
                let xs: Vec<Vec<i16>> = (0..width)
                    .map(|s| {
                        let row: Vec<f32> = (0..4)
                            .map(|j| ((t * 17 + s * 3 + j) as f32 * 0.23).sin())
                            .collect();
                        q.quantize_slice(&row)
                    })
                    .collect();
                let x_refs: Vec<&[i16]> = xs.iter().map(|x| x.as_slice()).collect();
                let mut refs: Vec<&mut FxSeqRunner> = gang.iter_mut().collect();
                let outs = FxSeqRunnerBatch::step(&mut refs, &x_refs);
                for s in 0..width {
                    assert_eq!(
                        outs[s],
                        solo[s].step(&xs[s]),
                        "width {width} lane {s} step {t}"
                    );
                }
            }
            // Extraction back to scalar stepping must be seamless.
            let x = vec![q.from_f64(0.25); 4];
            for s in 0..width {
                assert_eq!(gang[s].step(&x), solo[s].step(&x));
            }
        }
    }

    #[test]
    fn fx_streamed_replay_is_bit_identical_to_an_offline_fold() {
        let net = lstm_classifier(4, 8, 3, 4, 6);
        let m = CheckpointMeta {
            input_dims: vec![4, 9, 1],
            frac_bits: 12,
        };
        let seq = SeqModel::build(&net, &m).unwrap();
        let q = seq.new_fx().unwrap().qformat();
        let steps: Vec<Vec<i16>> = (0..9)
            .map(|t| {
                let row: Vec<f32> = (0..4).map(|j| ((t * 4 + j) as f32).sin() * 0.5).collect();
                q.quantize_slice(&row)
            })
            .collect();
        // "Offline": one stepper consumes the whole sequence in a fold.
        let mut offline = seq.new_fx().unwrap();
        let offline_outs: Vec<Vec<i16>> = steps.iter().map(|x| offline.step(x)).collect();
        // "Streamed": a second session replays the same steps one at a
        // time (between other work, here interleaved with a third).
        let mut streamed = seq.new_fx().unwrap();
        let mut decoy = seq.new_fx().unwrap();
        for (t, x) in steps.iter().enumerate() {
            decoy.step(&steps[(t + 1) % steps.len()]);
            assert_eq!(streamed.step(x), offline_outs[t], "step {t}");
        }
    }
}
