//! A reactor shard: one event-loop thread owning a slice of the
//! server's connections, plus its dedicated batch worker.
//!
//! Each shard runs a level-triggered readiness loop over its own
//! [`Poller`]. The acceptor hands freshly accepted sockets to a shard's
//! inbox (round-robin, so load balance is deterministic) and rings its
//! [`Notifier`]; the shard registers them and from then on owns all
//! their socket I/O. Request bytes accumulate in a per-connection read
//! buffer and are parsed **in place** — a frame is only copied when it
//! becomes a decoded `Payload`, and consumed bytes are reclaimed with a
//! single `drain` compaction per readiness burst.
//!
//! Admission (catalog resolution, length validation, tenant quota) runs
//! on the shard thread; admitted requests go to the shard's own
//! [`Batcher`] with a connection sink, and the batch worker deposits
//! encoded replies back into the connection's sequenced output buffer
//! (see [`crate::conn`]), waking the shard to flush. The shard is the
//! only thread that ever writes to its sockets.
//!
//! Shutdown: the server sets its stop flag and wakes every shard. A
//! shard then stops admitting (its batcher drains — queued requests
//! still execute and answer), keeps the loop alive to flush every owed
//! reply, answers any late-parsed requests with `shutting_down`, and
//! exits once the batcher is drained and no connection has backlog
//! (with a hard deadline against peers that stop reading).

use std::collections::{HashMap, HashSet};
use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use telemetry::flight::{
    FlightRecord, FlightRing, STAMP_ADMIT, STAMP_BATCH, STAMP_ENQUEUE, STAMP_INFER_END,
    STAMP_INFER_START, STAMP_PARSE,
};

use nn::seq::{SeqRunner, SeqRunnerBatch};

use crate::batcher::{encode_for_wire, Batcher, ReplySink, SubmitError};
use crate::conn::{ConnShared, Notifier};
use crate::metrics;
use crate::protocol::{self, Payload, Request, Response, Status, HANDSHAKE, MAX_FRAME};
use crate::quota::QuotaGuard;
use crate::reactor::{self, Event, Interest, Poller, WAKER_TOKEN};
use crate::registry::{Mode, ModelEntry};
use crate::server::ServerShared;
use crate::session::{FxSeqRunner, FxSeqRunnerBatch};

/// How long a shard blocks in the poller before re-checking stop state.
const TICK: Duration = Duration::from_millis(50);

/// Hard ceiling on the drain phase: after this, connections whose peers
/// stopped reading are closed with replies still buffered.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// Per-shard load counters, read by [`crate::server::Server::shard_stats`]
/// for the imbalance metric.
#[derive(Default)]
pub(crate) struct ShardStats {
    /// Connections ever assigned to this shard.
    pub conns: AtomicU64,
    /// Requests parsed by this shard (all opcodes).
    pub requests: AtomicU64,
}

/// The cross-thread face of one shard.
pub(crate) struct ShardHandle {
    pub index: usize,
    /// Freshly accepted sockets awaiting registration.
    pub inbox: Mutex<Vec<TcpStream>>,
    pub notifier: Arc<Notifier>,
    pub batcher: Batcher,
    pub stats: ShardStats,
    /// Flight-recorder ring holding this shard's completed traces.
    pub ring: Arc<FlightRing>,
    /// Shard-scoped session-gang id source; a gang-formed step carries
    /// its gang id in the flight record's `batch` word, exactly like a
    /// batcher-formed batch carries its batch id.
    pub gang_seq: AtomicU32,
}

enum ConnMode {
    /// Awaiting the first bytes that pick binary vs JSON.
    Handshake,
    Binary,
    Json,
}

struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    /// Unparsed request bytes; `rpos` is the parse cursor.
    rbuf: Vec<u8>,
    rpos: usize,
    mode: ConnMode,
    tenant: String,
    /// Current poller interest includes writable.
    wants_write: bool,
    /// Peer sent EOF; close once the output backlog flushes.
    eof: bool,
    /// Open streaming sessions, keyed by connection-scoped id. Sessions
    /// live and die with the connection — the shard that owns the
    /// connection owns every session opened on it, so session state
    /// needs no cross-thread synchronization at all.
    sessions: HashMap<u64, Session>,
    /// Next session id handed out on this connection (ids are scoped to
    /// the connection; 0 is never issued).
    next_session: u64,
}

/// The per-session stepper, one of the two engine datapaths.
enum SessionRunner {
    F32(SeqRunner),
    Fx(FxSeqRunner),
}

/// One open streaming session: the stepper holding the server-side
/// hidden state, pinned to the exact model version resolved at open.
struct Session {
    /// The stepper holding this session's hidden state. `None` only
    /// transiently while the runner is checked out into a lane gang
    /// inside `execute_gang` — it is always checked back in (bit-exact)
    /// before the flush returns.
    runner: Option<SessionRunner>,
    /// The entry the session resolved at `session_open`. Holding the
    /// `Arc` pins the version: a hot swap republishes the name but this
    /// session keeps stepping the weights it opened against.
    entry: Arc<ModelEntry>,
    /// Refreshed on every step; the idle-TTL sweep expires stale ones.
    last_used: Instant,
    /// Server-wide session-cap slot (RAII: released on close, expiry,
    /// or connection teardown).
    _slot: SessionSlot,
    /// Tenant quota slot held for the whole session lifetime, so open
    /// sessions count against the tenant's in-flight cap.
    _quota: QuotaGuard,
}

/// RAII slot in the server-wide open-session count.
struct SessionSlot {
    server: Arc<ServerShared>,
}

impl SessionSlot {
    /// Claims a slot, or `None` at the cap.
    fn acquire(server: &Arc<ServerShared>) -> Option<SessionSlot> {
        let cap = server.cfg.session_cap as u64;
        if server.active_sessions.fetch_add(1, Ordering::SeqCst) >= cap {
            server.active_sessions.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some(SessionSlot {
            server: Arc::clone(server),
        })
    }
}

impl Drop for SessionSlot {
    fn drop(&mut self) {
        self.server.active_sessions.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A session operation parsed during the current loop iteration and
/// deferred to the end-of-iteration gang flush (only when
/// `session_gang >= 2`). Deferral is what lets one readiness burst's
/// `session_step` frames from *different* sessions meet in a lane gang;
/// it never delays a reply past the iteration that parsed it.
enum SessionOp {
    Step {
        token: usize,
        session: u64,
        seq: u64,
        json: bool,
        input: Payload,
        trace: Option<FlightRecord>,
    },
    Close {
        token: usize,
        session: u64,
        seq: u64,
        json: bool,
    },
}

impl SessionOp {
    fn token(&self) -> usize {
        match self {
            SessionOp::Step { token, .. } | SessionOp::Close { token, .. } => *token,
        }
    }

    /// Wave-partition key: pipelined ops on one session execute strictly
    /// in arrival order, one per wave.
    fn key(&self) -> (usize, u64) {
        match self {
            SessionOp::Step { token, session, .. } | SessionOp::Close { token, session, .. } => {
                (*token, *session)
            }
        }
    }
}

/// A validated `session_step` awaiting gang execution.
struct ReadyStep {
    token: usize,
    session: u64,
    seq: u64,
    json: bool,
    input: Payload,
    trace: Option<FlightRecord>,
    /// Gang-formation key: the exact `ModelEntry` the session pinned
    /// (pointer identity ⇒ same version ⇒ same weights) …
    entry_key: usize,
    /// … and the engine mode. Only same-entry same-mode steps share lanes.
    fx: bool,
}

/// Why a connection must be torn down.
enum ConnFate {
    /// Keep serving.
    Alive,
    /// Clean close (EOF with nothing owed).
    Closed,
    /// Protocol violation: count it and close.
    Violation,
}

/// Per-shard owned-name probes (`serve.shard.<i>.*`).
struct ShardProbes {
    requests: telemetry::OwnedCounter,
    conns: telemetry::OwnedGauge,
}

/// The shard event loop. Runs until the server's stop flag is set and
/// the drain completes.
pub(crate) fn run(handle: &Arc<ShardHandle>, server: &Arc<ServerShared>, mut poller: Poller) {
    let probes = ShardProbes {
        requests: telemetry::OwnedCounter::new(&format!("serve.shard.{}.requests", handle.index)),
        conns: telemetry::OwnedGauge::new(&format!("serve.shard.{}.conns", handle.index)),
    };
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_token = 0usize;
    let mut events: Vec<Event> = Vec::new();
    let mut scratch = vec![0u8; 64 << 10];
    let mut draining = false;
    let mut drain_started = Instant::now();
    // Session ops deferred within one loop iteration for gang formation;
    // always drained to empty by `flush_session_ops` below.
    let mut pending: Vec<SessionOp> = Vec::new();

    loop {
        events.clear();
        if poller.wait(&mut events, Some(TICK)).is_err() {
            // A failing poller would spin; a short sleep keeps the loop
            // making progress (stop checks, inbox, dirty flushes).
            std::thread::sleep(TICK);
        }
        handle.notifier.drain_wakes();

        // Register newly accepted connections.
        let newcomers = std::mem::take(&mut *handle.inbox.lock().expect("shard inbox"));
        for stream in newcomers {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            stream.set_nodelay(true).ok();
            let token = next_token;
            next_token = next_token.wrapping_add(1);
            if poller
                .add(reactor::stream_fd(&stream), token, Interest::READ)
                .is_err()
            {
                continue;
            }
            handle.stats.conns.fetch_add(1, Ordering::Relaxed);
            metrics::CONNS_ACCEPTED.add(1);
            conns.insert(
                token,
                Conn {
                    stream,
                    shared: ConnShared::new(
                        token,
                        Arc::clone(&handle.notifier),
                        Arc::clone(&handle.ring),
                    ),
                    rbuf: Vec::new(),
                    rpos: 0,
                    mode: ConnMode::Handshake,
                    tenant: String::new(),
                    wants_write: false,
                    eof: false,
                    sessions: HashMap::new(),
                    next_session: 1,
                },
            );
        }

        // Readiness events.
        for ev in &events {
            if ev.token == WAKER_TOKEN {
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else {
                continue;
            };
            let mut fate = ConnFate::Alive;
            if ev.readable || ev.hangup {
                fate = on_readable(conn, &mut scratch, handle, server, &probes, &mut pending);
            }
            if matches!(fate, ConnFate::Alive) && (ev.writable || ev.hangup) {
                // A deferred session op still owes this connection a
                // reply: hold it open past EOF until the gang flush runs.
                let hold = pending.iter().any(|op| op.token() == ev.token);
                fate = settle_output(conn, &mut poller, hold);
            }
            finish_event(&mut conns, &mut poller, ev.token, fate);
        }

        // Execute the iteration's deferred session steps as lane gangs
        // (and their interleaved closes, in per-session arrival order).
        // Replies land in the sequenced output buffers and mark their
        // connections dirty, so the settle pass right below flushes them
        // within this same iteration.
        flush_session_ops(&mut conns, &mut pending, handle, server);

        // Cross-thread completions (batch workers deposited replies).
        let mut dirty = handle.notifier.take_dirty();
        dirty.sort_unstable();
        dirty.dedup();
        for token in dirty {
            if let Some(conn) = conns.get_mut(&token) {
                let fate = settle_output(conn, &mut poller, false);
                finish_event(&mut conns, &mut poller, token, fate);
            }
        }
        probes.conns.set(conns.len() as f64);

        // Idle-session expiry: every loop iteration (at most one TICK
        // apart) drops sessions whose last step is older than the TTL.
        // Dropping the `Session` releases its cap slot and quota guard.
        let ttl = server.cfg.session_ttl;
        if !ttl.is_zero() {
            for conn in conns.values_mut() {
                let before = conn.sessions.len();
                if before == 0 {
                    continue;
                }
                conn.sessions.retain(|_, s| s.last_used.elapsed() <= ttl);
                let expired = before - conn.sessions.len();
                if expired > 0 {
                    metrics::SESSIONS_EXPIRED.add(expired as u64);
                }
            }
        }

        // Shutdown and drain.
        if server.stop.load(Ordering::SeqCst) {
            if !draining {
                draining = true;
                drain_started = Instant::now();
                handle.batcher.begin_drain();
            }
            let backlog = conns.values().any(|c| c.shared.has_backlog());
            if (handle.batcher.is_drained() && !backlog) || drain_started.elapsed() > DRAIN_DEADLINE
            {
                break;
            }
        }
    }

    handle.batcher.shutdown();
    for (_token, conn) in conns.drain() {
        poller.remove(reactor::stream_fd(&conn.stream)).ok();
        metrics::CONNS_CLOSED.add(1);
    }
}

/// Applies a connection's fate after an event: tears it down and
/// deregisters it unless it stays alive.
fn finish_event(
    conns: &mut HashMap<usize, Conn>,
    poller: &mut Poller,
    token: usize,
    fate: ConnFate,
) {
    match fate {
        ConnFate::Alive => {}
        ConnFate::Closed | ConnFate::Violation => {
            if matches!(fate, ConnFate::Violation) {
                metrics::REJECTED.add(1);
            }
            if let Some(conn) = conns.remove(&token) {
                poller.remove(reactor::stream_fd(&conn.stream)).ok();
                metrics::CONNS_CLOSED.add(1);
            }
        }
    }
}

/// Drains the socket into the read buffer and parses every complete
/// request.
fn on_readable(
    conn: &mut Conn,
    scratch: &mut [u8],
    handle: &Arc<ShardHandle>,
    server: &Arc<ServerShared>,
    probes: &ShardProbes,
    pending: &mut Vec<SessionOp>,
) -> ConnFate {
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => conn.rbuf.extend_from_slice(&scratch[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.eof = true;
                break;
            }
        }
    }
    let fate = parse_ready(conn, handle, server, probes, pending);
    if !matches!(fate, ConnFate::Alive) {
        return fate;
    }
    if conn.eof {
        let partial = conn.rpos < conn.rbuf.len();
        if partial && !matches!(conn.mode, ConnMode::Json) {
            // EOF inside a frame or an unfinished handshake.
            server.protocol_errors.fetch_add(1, Ordering::SeqCst);
            return ConnFate::Violation;
        }
        let owes_session_reply = pending.iter().any(|op| op.token() == conn.shared.token());
        if !conn.shared.has_backlog() && !owes_session_reply {
            return ConnFate::Closed;
        }
        // Replies are still owed or buffered: linger write-only until the
        // backlog flushes (settle_output closes it then).
    }
    ConnFate::Alive
}

/// Parses every complete request currently buffered, handling each.
fn parse_ready(
    conn: &mut Conn,
    handle: &Arc<ShardHandle>,
    server: &Arc<ServerShared>,
    probes: &ShardProbes,
    pending: &mut Vec<SessionOp>,
) -> ConnFate {
    loop {
        match conn.mode {
            ConnMode::Handshake => {
                if conn.rbuf.is_empty() {
                    return ConnFate::Alive;
                }
                if conn.rbuf[0] == b'{' {
                    conn.mode = ConnMode::Json;
                    continue;
                }
                if conn.rbuf.len() < HANDSHAKE.len() {
                    return ConnFate::Alive; // need more bytes
                }
                if conn.rbuf[..4] == HANDSHAKE {
                    conn.mode = ConnMode::Binary;
                    conn.rpos = 4;
                    continue;
                }
                server.protocol_errors.fetch_add(1, Ordering::SeqCst);
                return ConnFate::Violation;
            }
            ConnMode::Binary => {
                while conn.rbuf.len() - conn.rpos >= 4 {
                    let len4: [u8; 4] = conn.rbuf[conn.rpos..conn.rpos + 4]
                        .try_into()
                        .expect("4 bytes");
                    let len = u32::from_le_bytes(len4) as usize;
                    if len > MAX_FRAME {
                        server.protocol_errors.fetch_add(1, Ordering::SeqCst);
                        return ConnFate::Violation;
                    }
                    if conn.rbuf.len() - conn.rpos < 4 + len {
                        break; // incomplete frame
                    }
                    let start = conn.rpos + 4;
                    let seq = conn.shared.alloc_seq();
                    let decoded = protocol::decode_request(&conn.rbuf[start..start + len]);
                    conn.rpos = start + len;
                    match decoded {
                        Ok(req) => {
                            let trace = begin_trace(handle.index);
                            process_request(
                                conn, req, false, seq, handle, server, probes, trace, pending,
                            );
                        }
                        Err(e) => {
                            // Malformed request: explicit reply, count it,
                            // connection survives.
                            server.protocol_errors.fetch_add(1, Ordering::SeqCst);
                            metrics::REJECTED.add(1);
                            reply_now(
                                conn,
                                seq,
                                &Response::Error(Status::BadRequest, e.to_string()),
                                false,
                            );
                        }
                    }
                }
                compact(conn);
                return ConnFate::Alive;
            }
            ConnMode::Json => {
                loop {
                    let Some(nl) = conn.rbuf[conn.rpos..].iter().position(|&b| b == b'\n') else {
                        // EOF: a final unterminated line is still a request.
                        if conn.eof && conn.rpos < conn.rbuf.len() {
                            let line = conn.rbuf[conn.rpos..].to_vec();
                            conn.rpos = conn.rbuf.len();
                            handle_json_line(conn, &line, handle, server, probes, pending);
                        }
                        break;
                    };
                    let line = conn.rbuf[conn.rpos..conn.rpos + nl].to_vec();
                    conn.rpos += nl + 1;
                    handle_json_line(conn, &line, handle, server, probes, pending);
                }
                compact(conn);
                return ConnFate::Alive;
            }
        }
    }
}

/// Reclaims consumed bytes from the front of the read buffer.
fn compact(conn: &mut Conn) {
    if conn.rpos > 0 {
        conn.rbuf.drain(..conn.rpos);
        conn.rpos = 0;
    }
}

fn handle_json_line(
    conn: &mut Conn,
    line: &[u8],
    handle: &Arc<ShardHandle>,
    server: &Arc<ServerShared>,
    probes: &ShardProbes,
    pending: &mut Vec<SessionOp>,
) {
    let text = String::from_utf8_lossy(line);
    if text.trim().is_empty() {
        return;
    }
    let seq = conn.shared.alloc_seq();
    match protocol::parse_json_request(&text) {
        Ok(req) => {
            let trace = begin_trace(handle.index);
            process_request(conn, req, true, seq, handle, server, probes, trace, pending);
        }
        Err(e) => {
            server.protocol_errors.fetch_add(1, Ordering::SeqCst);
            metrics::REJECTED.add(1);
            reply_now(
                conn,
                seq,
                &Response::Error(Status::BadRequest, e.to_string()),
                true,
            );
        }
    }
}

/// Deposits an immediate (non-batched) reply into the sequenced output.
fn reply_now(conn: &Conn, seq: u64, resp: &Response, json: bool) {
    conn.shared
        .push_reply(seq, encode_for_wire(resp, json), None);
}

/// Opens a lifecycle trace for a freshly parsed request: allocates the
/// trace id, tags the shard, and takes the `parse` stamp. Returns `None`
/// while telemetry is disabled, so the hot path pays one branch.
fn begin_trace(shard: usize) -> Option<FlightRecord> {
    if !telemetry::enabled() {
        return None;
    }
    let mut rec = FlightRecord {
        trace_id: telemetry::flight::next_trace_id(),
        shard: shard as u32,
        ..FlightRecord::default()
    };
    rec.stamps_ns[STAMP_PARSE] = telemetry::flight::now_ns();
    Some(rec)
}

/// FNV-1a hash of a tenant name — a stable, allocation-free tag small
/// enough for a flight-record word.
fn tenant_hash(name: &str) -> u64 {
    telemetry::fnv::fnv1a(name.as_bytes())
}

/// Validates and routes one decoded request.
#[allow(clippy::too_many_arguments)]
fn process_request(
    conn: &mut Conn,
    req: Request,
    json: bool,
    seq: u64,
    handle: &Arc<ShardHandle>,
    server: &Arc<ServerShared>,
    probes: &ShardProbes,
    mut trace: Option<FlightRecord>,
    pending: &mut Vec<SessionOp>,
) {
    handle.stats.requests.fetch_add(1, Ordering::Relaxed);
    probes.requests.inc();
    match req {
        Request::Ping => reply_now(conn, seq, &Response::Output(Payload::F32(Vec::new())), json),
        Request::Shutdown => {
            server.remote_shutdown.store(true, Ordering::SeqCst);
            reply_now(conn, seq, &Response::Output(Payload::F32(Vec::new())), json);
        }
        Request::Hello { tenant } => {
            conn.tenant = tenant;
            reply_now(conn, seq, &Response::Output(Payload::F32(Vec::new())), json);
        }
        Request::Stats => {
            let doc = crate::stats::stats_json(server);
            reply_now(conn, seq, &Response::Stats(doc), json);
        }
        Request::Infer { model, input } => {
            let Some(entry) = server.registry.resolve(&model) else {
                metrics::REJECTED.add(1);
                let resp = Response::Error(Status::UnknownModel, format!("no model {model:?}"));
                return reply_now(conn, seq, &resp, json);
            };
            let (mode, expect) = match &input {
                Payload::F32(_) => (Mode::F32, Some(entry.input_len())),
                Payload::Fx(_) => (Mode::Fx, entry.fx().map(|fx| fx.input_len())),
            };
            let Some(expect) = expect else {
                metrics::REJECTED.add(1);
                let resp = Response::Error(
                    Status::BadRequest,
                    format!("model {model:?} has no fixed-point mode"),
                );
                return reply_now(conn, seq, &resp, json);
            };
            if input.len() != expect {
                metrics::REJECTED.add(1);
                let resp = Response::Error(
                    Status::BadRequest,
                    format!("input length {} != expected {expect}", input.len()),
                );
                return reply_now(conn, seq, &resp, json);
            }
            let Some(guard) = server.quotas.try_acquire(&conn.tenant) else {
                metrics::QUOTA_DENIED.add(1);
                let resp = Response::Error(
                    Status::QuotaExceeded,
                    format!(
                        "tenant {:?} at its in-flight quota ({})",
                        conn.tenant,
                        server.quotas.limit()
                    ),
                );
                return reply_now(conn, seq, &resp, json);
            };
            if let Some(rec) = trace.as_mut() {
                rec.tenant_hash = tenant_hash(&conn.tenant);
                rec.model_version = entry.version();
                rec.stamps_ns[STAMP_ADMIT] = telemetry::flight::now_ns();
            }
            let sink = ReplySink::Conn {
                conn: Arc::clone(&conn.shared),
                seq,
                json,
            };
            match handle
                .batcher
                .submit_sink(entry, mode, input, sink, Some(guard), trace)
            {
                Ok(()) => {} // the batch worker owes the reply
                Err(SubmitError::Overloaded) => reply_now(
                    conn,
                    seq,
                    &Response::Error(Status::Overloaded, "queue at capacity".into()),
                    json,
                ),
                Err(SubmitError::ShuttingDown) => reply_now(
                    conn,
                    seq,
                    &Response::Error(Status::ShuttingDown, "server is draining".into()),
                    json,
                ),
            }
        }
        Request::SessionOpen { model, fx } => {
            if server.stop.load(Ordering::SeqCst) {
                let resp = Response::Error(Status::ShuttingDown, "server is draining".into());
                return reply_now(conn, seq, &resp, json);
            }
            let Some(entry) = server.registry.resolve(&model) else {
                metrics::REJECTED.add(1);
                let resp = Response::Error(Status::UnknownModel, format!("no model {model:?}"));
                return reply_now(conn, seq, &resp, json);
            };
            let Some(seqm) = entry.seq() else {
                metrics::REJECTED.add(1);
                let resp = Response::Error(
                    Status::BadRequest,
                    format!("model {model:?} has no streaming form"),
                );
                return reply_now(conn, seq, &resp, json);
            };
            let runner = if fx {
                match seqm.new_fx() {
                    Some(r) => SessionRunner::Fx(r),
                    None => {
                        metrics::REJECTED.add(1);
                        let resp = Response::Error(
                            Status::BadRequest,
                            format!("model {model:?} has no fixed-point streaming form"),
                        );
                        return reply_now(conn, seq, &resp, json);
                    }
                }
            } else {
                SessionRunner::F32(seqm.new_f32())
            };
            let Some(slot) = SessionSlot::acquire(server) else {
                metrics::REJECTED.add(1);
                let resp = Response::Error(
                    Status::Overloaded,
                    format!("server at its session cap ({})", server.cfg.session_cap),
                );
                return reply_now(conn, seq, &resp, json);
            };
            let Some(guard) = server.quotas.try_acquire(&conn.tenant) else {
                metrics::QUOTA_DENIED.add(1);
                let resp = Response::Error(
                    Status::QuotaExceeded,
                    format!(
                        "tenant {:?} at its in-flight quota ({})",
                        conn.tenant,
                        server.quotas.limit()
                    ),
                );
                return reply_now(conn, seq, &resp, json);
            };
            let id = conn.next_session;
            conn.next_session += 1;
            let version = entry.version();
            conn.sessions.insert(
                id,
                Session {
                    runner: Some(runner),
                    entry,
                    last_used: Instant::now(),
                    _slot: slot,
                    _quota: guard,
                },
            );
            metrics::SESSIONS_OPENED.add(1);
            reply_now(
                conn,
                seq,
                &Response::Session {
                    session: id,
                    version,
                },
                json,
            );
        }
        Request::SessionStep { session, input } => {
            let Some(s) = conn.sessions.get_mut(&session) else {
                metrics::REJECTED.add(1);
                let resp = Response::Error(
                    Status::BadRequest,
                    format!("no open session {session} (unknown, expired, or closed)"),
                );
                return reply_now(conn, seq, &resp, json);
            };
            if let Some(rec) = trace.as_mut() {
                rec.tenant_hash = tenant_hash(&conn.tenant);
                rec.model_version = s.entry.version();
                rec.stamps_ns[STAMP_ADMIT] = telemetry::flight::now_ns();
            }
            if server.cfg.session_gang >= 2 {
                // Defer into this iteration's gang flush: steps for
                // different sessions parsed in the same readiness burst
                // meet there and share one lane-form step. Wave
                // partitioning in the flush keeps pipelined steps on one
                // session strictly ordered.
                if let Some(rec) = trace.as_mut() {
                    rec.stamps_ns[STAMP_ENQUEUE] = telemetry::flight::now_ns();
                }
                pending.push(SessionOp::Step {
                    token: conn.shared.token(),
                    session,
                    seq,
                    json,
                    input,
                    trace,
                });
                return;
            }
            // Gang disabled: the step runs inline on the shard thread —
            // one timestep of a pruned recurrent cell is far below
            // batching granularity, and inline execution keeps the state
            // single-threaded by design.
            if let Some(rec) = trace.as_mut() {
                let now = telemetry::flight::now_ns();
                rec.stamps_ns[STAMP_ENQUEUE] = now;
                rec.stamps_ns[STAMP_BATCH] = now;
            }
            let runner = s.runner.as_mut().expect("runner checked in");
            let t0 = telemetry::flight::now_ns();
            let resp = match (runner, &input) {
                (SessionRunner::F32(r), Payload::F32(x)) => {
                    if x.len() != r.input_len() {
                        Response::Error(
                            Status::BadRequest,
                            format!("step length {} != expected {}", x.len(), r.input_len()),
                        )
                    } else {
                        Response::Output(Payload::F32(r.step(x)))
                    }
                }
                (SessionRunner::Fx(r), Payload::Fx(x)) => {
                    if x.len() != r.input_len() {
                        Response::Error(
                            Status::BadRequest,
                            format!("step length {} != expected {}", x.len(), r.input_len()),
                        )
                    } else {
                        Response::Output(Payload::Fx(r.step(x)))
                    }
                }
                _ => Response::Error(
                    Status::BadRequest,
                    format!("step payload type disagrees with session {session}'s mode"),
                ),
            };
            let t1 = telemetry::flight::now_ns();
            if matches!(resp, Response::Output(_)) {
                if let Some(rec) = trace.as_mut() {
                    rec.stamps_ns[STAMP_INFER_START] = t0;
                    rec.stamps_ns[STAMP_INFER_END] = t1;
                }
                metrics::SESSION_STEP_NS.record(t1.saturating_sub(t0));
                metrics::SESSION_GANG_WIDTH.record(1);
                metrics::SESSION_STEPS_SCALAR.add(1);
                metrics::SESSION_STEPS.add(1);
                s.last_used = Instant::now();
                conn.shared
                    .push_reply(seq, encode_for_wire(&resp, json), trace);
            } else {
                metrics::REJECTED.add(1);
                reply_now(conn, seq, &resp, json);
            }
        }
        Request::SessionClose { session } => {
            if server.cfg.session_gang >= 2 {
                // Defer behind any same-session steps parsed this burst:
                // a close is a barrier in its session's wave order, so
                // `step, step, close` pipelined in one burst answers
                // `ok, ok, ok` exactly as inline execution would.
                pending.push(SessionOp::Close {
                    token: conn.shared.token(),
                    session,
                    seq,
                    json,
                });
                return;
            }
            if conn.sessions.remove(&session).is_some() {
                metrics::SESSIONS_CLOSED.add(1);
                reply_now(conn, seq, &Response::Output(Payload::F32(Vec::new())), json);
            } else {
                metrics::REJECTED.add(1);
                let resp = Response::Error(
                    Status::BadRequest,
                    format!("no open session {session} (unknown, expired, or closed)"),
                );
                reply_now(conn, seq, &resp, json);
            }
        }
    }
}

/// Flushes buffered output and reconciles writable interest. Closes the
/// connection when the peer already sent EOF and nothing is owed —
/// `hold_open` marks a connection that a deferred session op still owes
/// a reply, which counts as owed even with an empty output buffer.
fn settle_output(conn: &mut Conn, poller: &mut Poller, hold_open: bool) -> ConnFate {
    match conn.shared.flush(&mut conn.stream) {
        Ok(emptied) => {
            let want = !emptied;
            if want != conn.wants_write {
                let interest = if want {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                if poller
                    .modify(
                        reactor::stream_fd(&conn.stream),
                        conn.shared.token(),
                        interest,
                    )
                    .is_ok()
                {
                    conn.wants_write = want;
                }
            }
            if conn.eof && !conn.shared.has_backlog() && !hold_open {
                ConnFate::Closed
            } else {
                ConnFate::Alive
            }
        }
        Err(_) => ConnFate::Closed, // peer gone; replies are undeliverable
    }
}

/// Drains the iteration's deferred session ops: wave-partitions them to
/// at most one op per session (pipelined same-session traffic executes
/// strictly in arrival order, and a close is a barrier), executes each
/// wave's closes in arrival order, groups the wave's validated steps by
/// (pinned model entry, engine mode), and runs each group in lane gangs
/// of at most `session_gang` sessions.
fn flush_session_ops(
    conns: &mut HashMap<usize, Conn>,
    pending: &mut Vec<SessionOp>,
    handle: &Arc<ShardHandle>,
    server: &Arc<ServerShared>,
) {
    let gang_width = server.cfg.session_gang.max(1);
    while !pending.is_empty() {
        let mut seen: HashSet<(usize, u64)> = HashSet::new();
        let mut wave: Vec<SessionOp> = Vec::new();
        let mut rest: Vec<SessionOp> = Vec::new();
        for op in pending.drain(..) {
            if seen.insert(op.key()) {
                wave.push(op);
            } else {
                rest.push(op);
            }
        }
        *pending = rest;
        let mut steps: Vec<ReadyStep> = Vec::new();
        for op in wave {
            match op {
                SessionOp::Close {
                    token,
                    session,
                    seq,
                    json,
                } => {
                    // Connection torn down since parse: nowhere to reply.
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    if conn.sessions.remove(&session).is_some() {
                        metrics::SESSIONS_CLOSED.add(1);
                        reply_now(conn, seq, &Response::Output(Payload::F32(Vec::new())), json);
                    } else {
                        metrics::REJECTED.add(1);
                        let resp = Response::Error(
                            Status::BadRequest,
                            format!("no open session {session} (unknown, expired, or closed)"),
                        );
                        reply_now(conn, seq, &resp, json);
                    }
                }
                SessionOp::Step {
                    token,
                    session,
                    seq,
                    json,
                    input,
                    trace,
                } => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    // Re-validate at execution time: an earlier wave's
                    // close (or a violation teardown) may have raced the
                    // parse-time check.
                    let Some(s) = conn.sessions.get(&session) else {
                        metrics::REJECTED.add(1);
                        let resp = Response::Error(
                            Status::BadRequest,
                            format!("no open session {session} (unknown, expired, or closed)"),
                        );
                        reply_now(conn, seq, &resp, json);
                        continue;
                    };
                    let runner = s.runner.as_ref().expect("runner checked in");
                    let err = match (runner, &input) {
                        (SessionRunner::F32(r), Payload::F32(x)) => (x.len() != r.input_len())
                            .then(|| {
                                format!("step length {} != expected {}", x.len(), r.input_len())
                            }),
                        (SessionRunner::Fx(r), Payload::Fx(x)) => {
                            (x.len() != r.input_len()).then(|| {
                                format!("step length {} != expected {}", x.len(), r.input_len())
                            })
                        }
                        _ => Some(format!(
                            "step payload type disagrees with session {session}'s mode"
                        )),
                    };
                    if let Some(msg) = err {
                        metrics::REJECTED.add(1);
                        reply_now(conn, seq, &Response::Error(Status::BadRequest, msg), json);
                        continue;
                    }
                    steps.push(ReadyStep {
                        token,
                        session,
                        seq,
                        json,
                        input,
                        trace,
                        entry_key: Arc::as_ptr(&s.entry) as usize,
                        fx: matches!(runner, SessionRunner::Fx(_)),
                    });
                }
            }
        }
        // Gang formation: group by (entry, mode) preserving arrival
        // order, then chunk each group to the lane width (ragged tails
        // run as narrower gangs; a tail of one runs scalar).
        let mut groups: Vec<((usize, bool), Vec<ReadyStep>)> = Vec::new();
        for st in steps {
            let key = (st.entry_key, st.fx);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, g)) => g.push(st),
                None => groups.push((key, vec![st])),
            }
        }
        for (_, mut group) in groups {
            while !group.is_empty() {
                let tail = group.split_off(group.len().min(gang_width));
                execute_gang(conns, group, handle);
                group = tail;
            }
        }
    }
}

/// Executes one lane gang: checks every member's runner out of its
/// session, advances all of them with a single lane-form step (a gang of
/// one steps scalar), and checks the runners back in bit-exactly. Every
/// member's reply is byte-identical to a solo scalar step — the lane
/// kernels' per-lane bit-identity contract — so gang membership is
/// invisible on the wire.
fn execute_gang(
    conns: &mut HashMap<usize, Conn>,
    mut gang: Vec<ReadyStep>,
    handle: &Arc<ShardHandle>,
) {
    let width = gang.len();
    debug_assert!(width >= 1);
    let gid = handle.gang_seq.fetch_add(1, Ordering::Relaxed);
    if gang.iter().any(|st| st.trace.is_some()) {
        let now = telemetry::flight::now_ns();
        for st in gang.iter_mut() {
            if let Some(rec) = st.trace.as_mut() {
                rec.batch = gid;
                rec.stamps_ns[STAMP_BATCH] = now;
            }
        }
    }
    // Check the runners out (each session transiently holds `None`).
    let mut runners: Vec<SessionRunner> = Vec::with_capacity(width);
    for st in &gang {
        let s = conns
            .get_mut(&st.token)
            .expect("validated this wave")
            .sessions
            .get_mut(&st.session)
            .expect("validated this wave");
        runners.push(s.runner.take().expect("runner checked in"));
    }
    let t0 = telemetry::flight::now_ns();
    let outputs: Vec<Payload> = if gang[0].fx {
        let mut members: Vec<&mut FxSeqRunner> = runners
            .iter_mut()
            .map(|r| match r {
                SessionRunner::Fx(r) => r,
                SessionRunner::F32(_) => unreachable!("gang grouped by mode"),
            })
            .collect();
        let xs: Vec<&[i16]> = gang
            .iter()
            .map(|st| match &st.input {
                Payload::Fx(x) => x.as_slice(),
                Payload::F32(_) => unreachable!("gang grouped by mode"),
            })
            .collect();
        let outs = if width == 1 {
            vec![members[0].step(xs[0])]
        } else {
            FxSeqRunnerBatch::step(&mut members, &xs)
        };
        outs.into_iter().map(Payload::Fx).collect()
    } else {
        let mut members: Vec<&mut SeqRunner> = runners
            .iter_mut()
            .map(|r| match r {
                SessionRunner::F32(r) => r,
                SessionRunner::Fx(_) => unreachable!("gang grouped by mode"),
            })
            .collect();
        let xs: Vec<&[f32]> = gang
            .iter()
            .map(|st| match &st.input {
                Payload::F32(x) => x.as_slice(),
                Payload::Fx(_) => unreachable!("gang grouped by mode"),
            })
            .collect();
        let outs = if width == 1 {
            vec![members[0].step(xs[0])]
        } else {
            SeqRunnerBatch::step(&mut members, &xs)
        };
        outs.into_iter().map(Payload::F32).collect()
    };
    let t1 = telemetry::flight::now_ns();
    metrics::SESSION_STEP_NS.record(t1.saturating_sub(t0));
    metrics::SESSION_GANG_WIDTH.record(width as u64);
    metrics::SESSION_STEPS.add(width as u64);
    if width >= 2 {
        metrics::SESSION_GANGS.add(1);
        metrics::SESSION_STEPS_GANGED.add(width as u64);
    } else {
        metrics::SESSION_STEPS_SCALAR.add(1);
    }
    // Check the runners back in and deliver, in member order.
    let stepped_at = Instant::now();
    for (mut st, (runner, out)) in gang.into_iter().zip(runners.into_iter().zip(outputs)) {
        if let Some(rec) = st.trace.as_mut() {
            rec.stamps_ns[STAMP_INFER_START] = t0;
            rec.stamps_ns[STAMP_INFER_END] = t1;
        }
        let conn = conns.get_mut(&st.token).expect("validated this wave");
        let s = conn
            .sessions
            .get_mut(&st.session)
            .expect("validated this wave");
        s.runner = Some(runner);
        s.last_used = stepped_at;
        conn.shared.push_reply(
            st.seq,
            encode_for_wire(&Response::Output(out), st.json),
            st.trace,
        );
    }
}
