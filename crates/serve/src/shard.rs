//! A reactor shard: one event-loop thread owning a slice of the
//! server's connections, plus its dedicated batch worker.
//!
//! Each shard runs a level-triggered readiness loop over its own
//! [`Poller`]. The acceptor hands freshly accepted sockets to a shard's
//! inbox (round-robin, so load balance is deterministic) and rings its
//! [`Notifier`]; the shard registers them and from then on owns all
//! their socket I/O. Request bytes accumulate in a per-connection read
//! buffer and are parsed **in place** — a frame is only copied when it
//! becomes a decoded `Payload`, and consumed bytes are reclaimed with a
//! single `drain` compaction per readiness burst.
//!
//! Admission (catalog resolution, length validation, tenant quota) runs
//! on the shard thread; admitted requests go to the shard's own
//! [`Batcher`] with a connection sink, and the batch worker deposits
//! encoded replies back into the connection's sequenced output buffer
//! (see [`crate::conn`]), waking the shard to flush. The shard is the
//! only thread that ever writes to its sockets.
//!
//! Shutdown: the server sets its stop flag and wakes every shard. A
//! shard then stops admitting (its batcher drains — queued requests
//! still execute and answer), keeps the loop alive to flush every owed
//! reply, answers any late-parsed requests with `shutting_down`, and
//! exits once the batcher is drained and no connection has backlog
//! (with a hard deadline against peers that stop reading).

use std::collections::HashMap;
use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use telemetry::flight::{FlightRecord, FlightRing, STAMP_ADMIT, STAMP_PARSE};

use nn::seq::SeqRunner;

use crate::batcher::{encode_for_wire, Batcher, ReplySink, SubmitError};
use crate::conn::{ConnShared, Notifier};
use crate::metrics;
use crate::protocol::{self, Payload, Request, Response, Status, HANDSHAKE, MAX_FRAME};
use crate::quota::QuotaGuard;
use crate::reactor::{self, Event, Interest, Poller, WAKER_TOKEN};
use crate::registry::{Mode, ModelEntry};
use crate::server::ServerShared;
use crate::session::FxSeqRunner;

/// How long a shard blocks in the poller before re-checking stop state.
const TICK: Duration = Duration::from_millis(50);

/// Hard ceiling on the drain phase: after this, connections whose peers
/// stopped reading are closed with replies still buffered.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// Per-shard load counters, read by [`crate::server::Server::shard_stats`]
/// for the imbalance metric.
#[derive(Default)]
pub(crate) struct ShardStats {
    /// Connections ever assigned to this shard.
    pub conns: AtomicU64,
    /// Requests parsed by this shard (all opcodes).
    pub requests: AtomicU64,
}

/// The cross-thread face of one shard.
pub(crate) struct ShardHandle {
    pub index: usize,
    /// Freshly accepted sockets awaiting registration.
    pub inbox: Mutex<Vec<TcpStream>>,
    pub notifier: Arc<Notifier>,
    pub batcher: Batcher,
    pub stats: ShardStats,
    /// Flight-recorder ring holding this shard's completed traces.
    pub ring: Arc<FlightRing>,
}

enum ConnMode {
    /// Awaiting the first bytes that pick binary vs JSON.
    Handshake,
    Binary,
    Json,
}

struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
    /// Unparsed request bytes; `rpos` is the parse cursor.
    rbuf: Vec<u8>,
    rpos: usize,
    mode: ConnMode,
    tenant: String,
    /// Current poller interest includes writable.
    wants_write: bool,
    /// Peer sent EOF; close once the output backlog flushes.
    eof: bool,
    /// Open streaming sessions, keyed by connection-scoped id. Sessions
    /// live and die with the connection — the shard that owns the
    /// connection owns every session opened on it, so session state
    /// needs no cross-thread synchronization at all.
    sessions: HashMap<u64, Session>,
    /// Next session id handed out on this connection (ids are scoped to
    /// the connection; 0 is never issued).
    next_session: u64,
}

/// The per-session stepper, one of the two engine datapaths.
enum SessionRunner {
    F32(SeqRunner),
    Fx(FxSeqRunner),
}

/// One open streaming session: the stepper holding the server-side
/// hidden state, pinned to the exact model version resolved at open.
struct Session {
    runner: SessionRunner,
    /// The entry the session resolved at `session_open`. Holding the
    /// `Arc` pins the version: a hot swap republishes the name but this
    /// session keeps stepping the weights it opened against.
    entry: Arc<ModelEntry>,
    /// Refreshed on every step; the idle-TTL sweep expires stale ones.
    last_used: Instant,
    /// Server-wide session-cap slot (RAII: released on close, expiry,
    /// or connection teardown).
    _slot: SessionSlot,
    /// Tenant quota slot held for the whole session lifetime, so open
    /// sessions count against the tenant's in-flight cap.
    _quota: QuotaGuard,
}

/// RAII slot in the server-wide open-session count.
struct SessionSlot {
    server: Arc<ServerShared>,
}

impl SessionSlot {
    /// Claims a slot, or `None` at the cap.
    fn acquire(server: &Arc<ServerShared>) -> Option<SessionSlot> {
        let cap = server.cfg.session_cap as u64;
        if server.active_sessions.fetch_add(1, Ordering::SeqCst) >= cap {
            server.active_sessions.fetch_sub(1, Ordering::SeqCst);
            return None;
        }
        Some(SessionSlot {
            server: Arc::clone(server),
        })
    }
}

impl Drop for SessionSlot {
    fn drop(&mut self) {
        self.server.active_sessions.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Why a connection must be torn down.
enum ConnFate {
    /// Keep serving.
    Alive,
    /// Clean close (EOF with nothing owed).
    Closed,
    /// Protocol violation: count it and close.
    Violation,
}

/// Per-shard owned-name probes (`serve.shard.<i>.*`).
struct ShardProbes {
    requests: telemetry::OwnedCounter,
    conns: telemetry::OwnedGauge,
}

/// The shard event loop. Runs until the server's stop flag is set and
/// the drain completes.
pub(crate) fn run(handle: &Arc<ShardHandle>, server: &Arc<ServerShared>, mut poller: Poller) {
    let probes = ShardProbes {
        requests: telemetry::OwnedCounter::new(&format!("serve.shard.{}.requests", handle.index)),
        conns: telemetry::OwnedGauge::new(&format!("serve.shard.{}.conns", handle.index)),
    };
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_token = 0usize;
    let mut events: Vec<Event> = Vec::new();
    let mut scratch = vec![0u8; 64 << 10];
    let mut draining = false;
    let mut drain_started = Instant::now();

    loop {
        events.clear();
        if poller.wait(&mut events, Some(TICK)).is_err() {
            // A failing poller would spin; a short sleep keeps the loop
            // making progress (stop checks, inbox, dirty flushes).
            std::thread::sleep(TICK);
        }
        handle.notifier.drain_wakes();

        // Register newly accepted connections.
        let newcomers = std::mem::take(&mut *handle.inbox.lock().expect("shard inbox"));
        for stream in newcomers {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            stream.set_nodelay(true).ok();
            let token = next_token;
            next_token = next_token.wrapping_add(1);
            if poller
                .add(reactor::stream_fd(&stream), token, Interest::READ)
                .is_err()
            {
                continue;
            }
            handle.stats.conns.fetch_add(1, Ordering::Relaxed);
            metrics::CONNS_ACCEPTED.add(1);
            conns.insert(
                token,
                Conn {
                    stream,
                    shared: ConnShared::new(
                        token,
                        Arc::clone(&handle.notifier),
                        Arc::clone(&handle.ring),
                    ),
                    rbuf: Vec::new(),
                    rpos: 0,
                    mode: ConnMode::Handshake,
                    tenant: String::new(),
                    wants_write: false,
                    eof: false,
                    sessions: HashMap::new(),
                    next_session: 1,
                },
            );
        }

        // Readiness events.
        for ev in &events {
            if ev.token == WAKER_TOKEN {
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else {
                continue;
            };
            let mut fate = ConnFate::Alive;
            if ev.readable || ev.hangup {
                fate = on_readable(conn, &mut scratch, handle, server, &probes);
            }
            if matches!(fate, ConnFate::Alive) && (ev.writable || ev.hangup) {
                fate = settle_output(conn, &mut poller);
            }
            finish_event(&mut conns, &mut poller, ev.token, fate);
        }

        // Cross-thread completions (batch workers deposited replies).
        let mut dirty = handle.notifier.take_dirty();
        dirty.sort_unstable();
        dirty.dedup();
        for token in dirty {
            if let Some(conn) = conns.get_mut(&token) {
                let fate = settle_output(conn, &mut poller);
                finish_event(&mut conns, &mut poller, token, fate);
            }
        }
        probes.conns.set(conns.len() as f64);

        // Idle-session expiry: every loop iteration (at most one TICK
        // apart) drops sessions whose last step is older than the TTL.
        // Dropping the `Session` releases its cap slot and quota guard.
        let ttl = server.cfg.session_ttl;
        if !ttl.is_zero() {
            for conn in conns.values_mut() {
                let before = conn.sessions.len();
                if before == 0 {
                    continue;
                }
                conn.sessions.retain(|_, s| s.last_used.elapsed() <= ttl);
                let expired = before - conn.sessions.len();
                if expired > 0 {
                    metrics::SESSIONS_EXPIRED.add(expired as u64);
                }
            }
        }

        // Shutdown and drain.
        if server.stop.load(Ordering::SeqCst) {
            if !draining {
                draining = true;
                drain_started = Instant::now();
                handle.batcher.begin_drain();
            }
            let backlog = conns.values().any(|c| c.shared.has_backlog());
            if (handle.batcher.is_drained() && !backlog) || drain_started.elapsed() > DRAIN_DEADLINE
            {
                break;
            }
        }
    }

    handle.batcher.shutdown();
    for (_token, conn) in conns.drain() {
        poller.remove(reactor::stream_fd(&conn.stream)).ok();
        metrics::CONNS_CLOSED.add(1);
    }
}

/// Applies a connection's fate after an event: tears it down and
/// deregisters it unless it stays alive.
fn finish_event(
    conns: &mut HashMap<usize, Conn>,
    poller: &mut Poller,
    token: usize,
    fate: ConnFate,
) {
    match fate {
        ConnFate::Alive => {}
        ConnFate::Closed | ConnFate::Violation => {
            if matches!(fate, ConnFate::Violation) {
                metrics::REJECTED.add(1);
            }
            if let Some(conn) = conns.remove(&token) {
                poller.remove(reactor::stream_fd(&conn.stream)).ok();
                metrics::CONNS_CLOSED.add(1);
            }
        }
    }
}

/// Drains the socket into the read buffer and parses every complete
/// request.
fn on_readable(
    conn: &mut Conn,
    scratch: &mut [u8],
    handle: &Arc<ShardHandle>,
    server: &Arc<ServerShared>,
    probes: &ShardProbes,
) -> ConnFate {
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => conn.rbuf.extend_from_slice(&scratch[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.eof = true;
                break;
            }
        }
    }
    let fate = parse_ready(conn, handle, server, probes);
    if !matches!(fate, ConnFate::Alive) {
        return fate;
    }
    if conn.eof {
        let partial = conn.rpos < conn.rbuf.len();
        if partial && !matches!(conn.mode, ConnMode::Json) {
            // EOF inside a frame or an unfinished handshake.
            server.protocol_errors.fetch_add(1, Ordering::SeqCst);
            return ConnFate::Violation;
        }
        if !conn.shared.has_backlog() {
            return ConnFate::Closed;
        }
        // Replies are still owed or buffered: linger write-only until the
        // backlog flushes (settle_output closes it then).
    }
    ConnFate::Alive
}

/// Parses every complete request currently buffered, handling each.
fn parse_ready(
    conn: &mut Conn,
    handle: &Arc<ShardHandle>,
    server: &Arc<ServerShared>,
    probes: &ShardProbes,
) -> ConnFate {
    loop {
        match conn.mode {
            ConnMode::Handshake => {
                if conn.rbuf.is_empty() {
                    return ConnFate::Alive;
                }
                if conn.rbuf[0] == b'{' {
                    conn.mode = ConnMode::Json;
                    continue;
                }
                if conn.rbuf.len() < HANDSHAKE.len() {
                    return ConnFate::Alive; // need more bytes
                }
                if conn.rbuf[..4] == HANDSHAKE {
                    conn.mode = ConnMode::Binary;
                    conn.rpos = 4;
                    continue;
                }
                server.protocol_errors.fetch_add(1, Ordering::SeqCst);
                return ConnFate::Violation;
            }
            ConnMode::Binary => {
                while conn.rbuf.len() - conn.rpos >= 4 {
                    let len4: [u8; 4] = conn.rbuf[conn.rpos..conn.rpos + 4]
                        .try_into()
                        .expect("4 bytes");
                    let len = u32::from_le_bytes(len4) as usize;
                    if len > MAX_FRAME {
                        server.protocol_errors.fetch_add(1, Ordering::SeqCst);
                        return ConnFate::Violation;
                    }
                    if conn.rbuf.len() - conn.rpos < 4 + len {
                        break; // incomplete frame
                    }
                    let start = conn.rpos + 4;
                    let seq = conn.shared.alloc_seq();
                    let decoded = protocol::decode_request(&conn.rbuf[start..start + len]);
                    conn.rpos = start + len;
                    match decoded {
                        Ok(req) => {
                            let trace = begin_trace(handle.index);
                            process_request(conn, req, false, seq, handle, server, probes, trace);
                        }
                        Err(e) => {
                            // Malformed request: explicit reply, count it,
                            // connection survives.
                            server.protocol_errors.fetch_add(1, Ordering::SeqCst);
                            metrics::REJECTED.add(1);
                            reply_now(
                                conn,
                                seq,
                                &Response::Error(Status::BadRequest, e.to_string()),
                                false,
                            );
                        }
                    }
                }
                compact(conn);
                return ConnFate::Alive;
            }
            ConnMode::Json => {
                loop {
                    let Some(nl) = conn.rbuf[conn.rpos..].iter().position(|&b| b == b'\n') else {
                        // EOF: a final unterminated line is still a request.
                        if conn.eof && conn.rpos < conn.rbuf.len() {
                            let line = conn.rbuf[conn.rpos..].to_vec();
                            conn.rpos = conn.rbuf.len();
                            handle_json_line(conn, &line, handle, server, probes);
                        }
                        break;
                    };
                    let line = conn.rbuf[conn.rpos..conn.rpos + nl].to_vec();
                    conn.rpos += nl + 1;
                    handle_json_line(conn, &line, handle, server, probes);
                }
                compact(conn);
                return ConnFate::Alive;
            }
        }
    }
}

/// Reclaims consumed bytes from the front of the read buffer.
fn compact(conn: &mut Conn) {
    if conn.rpos > 0 {
        conn.rbuf.drain(..conn.rpos);
        conn.rpos = 0;
    }
}

fn handle_json_line(
    conn: &mut Conn,
    line: &[u8],
    handle: &Arc<ShardHandle>,
    server: &Arc<ServerShared>,
    probes: &ShardProbes,
) {
    let text = String::from_utf8_lossy(line);
    if text.trim().is_empty() {
        return;
    }
    let seq = conn.shared.alloc_seq();
    match protocol::parse_json_request(&text) {
        Ok(req) => {
            let trace = begin_trace(handle.index);
            process_request(conn, req, true, seq, handle, server, probes, trace);
        }
        Err(e) => {
            server.protocol_errors.fetch_add(1, Ordering::SeqCst);
            metrics::REJECTED.add(1);
            reply_now(
                conn,
                seq,
                &Response::Error(Status::BadRequest, e.to_string()),
                true,
            );
        }
    }
}

/// Deposits an immediate (non-batched) reply into the sequenced output.
fn reply_now(conn: &Conn, seq: u64, resp: &Response, json: bool) {
    conn.shared
        .push_reply(seq, encode_for_wire(resp, json), None);
}

/// Opens a lifecycle trace for a freshly parsed request: allocates the
/// trace id, tags the shard, and takes the `parse` stamp. Returns `None`
/// while telemetry is disabled, so the hot path pays one branch.
fn begin_trace(shard: usize) -> Option<FlightRecord> {
    if !telemetry::enabled() {
        return None;
    }
    let mut rec = FlightRecord {
        trace_id: telemetry::flight::next_trace_id(),
        shard: shard as u32,
        ..FlightRecord::default()
    };
    rec.stamps_ns[STAMP_PARSE] = telemetry::flight::now_ns();
    Some(rec)
}

/// FNV-1a hash of a tenant name — a stable, allocation-free tag small
/// enough for a flight-record word.
fn tenant_hash(name: &str) -> u64 {
    telemetry::fnv::fnv1a(name.as_bytes())
}

/// Validates and routes one decoded request.
#[allow(clippy::too_many_arguments)]
fn process_request(
    conn: &mut Conn,
    req: Request,
    json: bool,
    seq: u64,
    handle: &Arc<ShardHandle>,
    server: &Arc<ServerShared>,
    probes: &ShardProbes,
    mut trace: Option<FlightRecord>,
) {
    handle.stats.requests.fetch_add(1, Ordering::Relaxed);
    probes.requests.inc();
    match req {
        Request::Ping => reply_now(conn, seq, &Response::Output(Payload::F32(Vec::new())), json),
        Request::Shutdown => {
            server.remote_shutdown.store(true, Ordering::SeqCst);
            reply_now(conn, seq, &Response::Output(Payload::F32(Vec::new())), json);
        }
        Request::Hello { tenant } => {
            conn.tenant = tenant;
            reply_now(conn, seq, &Response::Output(Payload::F32(Vec::new())), json);
        }
        Request::Stats => {
            let doc = crate::stats::stats_json(server);
            reply_now(conn, seq, &Response::Stats(doc), json);
        }
        Request::Infer { model, input } => {
            let Some(entry) = server.registry.resolve(&model) else {
                metrics::REJECTED.add(1);
                let resp = Response::Error(Status::UnknownModel, format!("no model {model:?}"));
                return reply_now(conn, seq, &resp, json);
            };
            let (mode, expect) = match &input {
                Payload::F32(_) => (Mode::F32, Some(entry.input_len())),
                Payload::Fx(_) => (Mode::Fx, entry.fx().map(|fx| fx.input_len())),
            };
            let Some(expect) = expect else {
                metrics::REJECTED.add(1);
                let resp = Response::Error(
                    Status::BadRequest,
                    format!("model {model:?} has no fixed-point mode"),
                );
                return reply_now(conn, seq, &resp, json);
            };
            if input.len() != expect {
                metrics::REJECTED.add(1);
                let resp = Response::Error(
                    Status::BadRequest,
                    format!("input length {} != expected {expect}", input.len()),
                );
                return reply_now(conn, seq, &resp, json);
            }
            let Some(guard) = server.quotas.try_acquire(&conn.tenant) else {
                metrics::QUOTA_DENIED.add(1);
                let resp = Response::Error(
                    Status::QuotaExceeded,
                    format!(
                        "tenant {:?} at its in-flight quota ({})",
                        conn.tenant,
                        server.quotas.limit()
                    ),
                );
                return reply_now(conn, seq, &resp, json);
            };
            if let Some(rec) = trace.as_mut() {
                rec.tenant_hash = tenant_hash(&conn.tenant);
                rec.model_version = entry.version();
                rec.stamps_ns[STAMP_ADMIT] = telemetry::flight::now_ns();
            }
            let sink = ReplySink::Conn {
                conn: Arc::clone(&conn.shared),
                seq,
                json,
            };
            match handle
                .batcher
                .submit_sink(entry, mode, input, sink, Some(guard), trace)
            {
                Ok(()) => {} // the batch worker owes the reply
                Err(SubmitError::Overloaded) => reply_now(
                    conn,
                    seq,
                    &Response::Error(Status::Overloaded, "queue at capacity".into()),
                    json,
                ),
                Err(SubmitError::ShuttingDown) => reply_now(
                    conn,
                    seq,
                    &Response::Error(Status::ShuttingDown, "server is draining".into()),
                    json,
                ),
            }
        }
        Request::SessionOpen { model, fx } => {
            if server.stop.load(Ordering::SeqCst) {
                let resp = Response::Error(Status::ShuttingDown, "server is draining".into());
                return reply_now(conn, seq, &resp, json);
            }
            let Some(entry) = server.registry.resolve(&model) else {
                metrics::REJECTED.add(1);
                let resp = Response::Error(Status::UnknownModel, format!("no model {model:?}"));
                return reply_now(conn, seq, &resp, json);
            };
            let Some(seqm) = entry.seq() else {
                metrics::REJECTED.add(1);
                let resp = Response::Error(
                    Status::BadRequest,
                    format!("model {model:?} has no streaming form"),
                );
                return reply_now(conn, seq, &resp, json);
            };
            let runner = if fx {
                match seqm.new_fx() {
                    Some(r) => SessionRunner::Fx(r),
                    None => {
                        metrics::REJECTED.add(1);
                        let resp = Response::Error(
                            Status::BadRequest,
                            format!("model {model:?} has no fixed-point streaming form"),
                        );
                        return reply_now(conn, seq, &resp, json);
                    }
                }
            } else {
                SessionRunner::F32(seqm.new_f32())
            };
            let Some(slot) = SessionSlot::acquire(server) else {
                metrics::REJECTED.add(1);
                let resp = Response::Error(
                    Status::Overloaded,
                    format!("server at its session cap ({})", server.cfg.session_cap),
                );
                return reply_now(conn, seq, &resp, json);
            };
            let Some(guard) = server.quotas.try_acquire(&conn.tenant) else {
                metrics::QUOTA_DENIED.add(1);
                let resp = Response::Error(
                    Status::QuotaExceeded,
                    format!(
                        "tenant {:?} at its in-flight quota ({})",
                        conn.tenant,
                        server.quotas.limit()
                    ),
                );
                return reply_now(conn, seq, &resp, json);
            };
            let id = conn.next_session;
            conn.next_session += 1;
            let version = entry.version();
            conn.sessions.insert(
                id,
                Session {
                    runner,
                    entry,
                    last_used: Instant::now(),
                    _slot: slot,
                    _quota: guard,
                },
            );
            metrics::SESSIONS_OPENED.add(1);
            reply_now(
                conn,
                seq,
                &Response::Session {
                    session: id,
                    version,
                },
                json,
            );
        }
        Request::SessionStep { session, input } => {
            let Some(s) = conn.sessions.get_mut(&session) else {
                metrics::REJECTED.add(1);
                let resp = Response::Error(
                    Status::BadRequest,
                    format!("no open session {session} (unknown, expired, or closed)"),
                );
                return reply_now(conn, seq, &resp, json);
            };
            if let Some(rec) = trace.as_mut() {
                rec.tenant_hash = tenant_hash(&conn.tenant);
                rec.model_version = s.entry.version();
                rec.stamps_ns[STAMP_ADMIT] = telemetry::flight::now_ns();
            }
            // The step runs inline on the shard thread: one timestep of a
            // pruned recurrent cell is far below batching granularity, and
            // inline execution keeps the state single-threaded by design.
            let resp = match (&mut s.runner, &input) {
                (SessionRunner::F32(r), Payload::F32(x)) => {
                    if x.len() != r.input_len() {
                        Response::Error(
                            Status::BadRequest,
                            format!("step length {} != expected {}", x.len(), r.input_len()),
                        )
                    } else {
                        Response::Output(Payload::F32(r.step(x)))
                    }
                }
                (SessionRunner::Fx(r), Payload::Fx(x)) => {
                    if x.len() != r.input_len() {
                        Response::Error(
                            Status::BadRequest,
                            format!("step length {} != expected {}", x.len(), r.input_len()),
                        )
                    } else {
                        Response::Output(Payload::Fx(r.step(x)))
                    }
                }
                _ => Response::Error(
                    Status::BadRequest,
                    format!("step payload type disagrees with session {session}'s mode"),
                ),
            };
            if matches!(resp, Response::Output(_)) {
                s.last_used = Instant::now();
                metrics::SESSION_STEPS.add(1);
            } else {
                metrics::REJECTED.add(1);
            }
            reply_now(conn, seq, &resp, json);
        }
        Request::SessionClose { session } => {
            if conn.sessions.remove(&session).is_some() {
                metrics::SESSIONS_CLOSED.add(1);
                reply_now(conn, seq, &Response::Output(Payload::F32(Vec::new())), json);
            } else {
                metrics::REJECTED.add(1);
                let resp = Response::Error(
                    Status::BadRequest,
                    format!("no open session {session} (unknown, expired, or closed)"),
                );
                reply_now(conn, seq, &resp, json);
            }
        }
    }
}

/// Flushes buffered output and reconciles writable interest. Closes the
/// connection when the peer already sent EOF and nothing is owed.
fn settle_output(conn: &mut Conn, poller: &mut Poller) -> ConnFate {
    match conn.shared.flush(&mut conn.stream) {
        Ok(emptied) => {
            let want = !emptied;
            if want != conn.wants_write {
                let interest = if want {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                if poller
                    .modify(
                        reactor::stream_fd(&conn.stream),
                        conn.shared.token(),
                        interest,
                    )
                    .is_ok()
                {
                    conn.wants_write = want;
                }
            }
            if conn.eof && !conn.shared.has_backlog() {
                ConnFate::Closed
            } else {
                ConnFate::Alive
            }
        }
        Err(_) => ConnFate::Closed, // peer gone; replies are undeliverable
    }
}
