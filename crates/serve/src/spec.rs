//! The normative protocol and operations documents, compiled.
//!
//! The module docs below are `docs/PROTOCOL.md` verbatim
//! (`include_str!`), and [`operations`] is `docs/OPERATIONS.md` — so the
//! rendered crate documentation carries the full specs, and every fenced
//! Rust example in them is built and run by `cargo test`. Editing a byte
//! diagram out of sync with the codec breaks the build, not a reader.
#![doc = include_str!("../../../docs/PROTOCOL.md")]

/// The operator runbook, compiled from `docs/OPERATIONS.md`.
#[doc = include_str!("../../../docs/OPERATIONS.md")]
pub mod operations {}
