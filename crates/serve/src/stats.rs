//! The `stats` introspection snapshot and the SLO-triggered flight
//! recorder.
//!
//! [`stats_json`] assembles the versioned JSON document returned by the
//! `stats` opcode (see `docs/PROTOCOL.md` §3.4): the server
//! configuration, the model catalog, per-tenant quota state, per-shard
//! load and queue state, per-shard stage-latency summaries computed
//! from the flight-recorder rings, and the full telemetry registry
//! report. The document is hand-rolled (the workspace is std-only) with
//! sorted, stable key order, so identical state renders identically.
//!
//! [`watchdog_loop`] is the SLO watchdog thread: while the server runs
//! it periodically checks the observed p99 lifecycle latency (from the
//! flight rings) against `slo_p99_us` and the shed rate over its window
//! against `slo_shed_pct`, and on a violation writes a flight-recorder
//! dump — a JSON file with the last completed traces plus a stats
//! snapshot, and a Chrome-trace twin openable in Perfetto (see
//! `docs/OPERATIONS.md` §8). Both checks need telemetry enabled
//! (`RPBCM_TELEMETRY=1`): without it no traces are recorded and the
//! watchdog stays quiet by design.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use telemetry::flight::{self, FlightRecord, INTERVAL_NAMES, STAMP_FLUSH};

use crate::metrics;
use crate::server::ServerShared;

/// Version tag of the stats snapshot document. Bump when the layout
/// changes shape (adding keys is allowed without a bump; removing or
/// retyping them is not).
pub(crate) const STATS_VERSION: u64 = 1;

/// How often the watchdog evaluates its SLOs.
const WATCH_TICK: Duration = Duration::from_millis(100);

/// Minimum spacing between two watchdog-triggered dumps, so a sustained
/// violation produces a trickle of files instead of a flood.
const DUMP_COOLDOWN: Duration = Duration::from_secs(2);

/// Most recent completed traces kept in one dump.
const DUMP_TRACES: usize = 256;

/// Distinguishes dump files created within the same millisecond.
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Escapes a string for embedding in a JSON document.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `p`-th percentile of an already **sorted** slice (nearest-rank).
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

/// `{"count":…,"p50_ns":…,"p99_ns":…,"max_ns":…}` over raw samples.
fn summary_json(mut samples: Vec<u64>) -> String {
    samples.sort_unstable();
    format!(
        "{{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
        samples.len(),
        percentile(&samples, 50),
        percentile(&samples, 99),
        samples.last().copied().unwrap_or(0),
    )
}

/// Per-shard stage-latency summaries from one ring's completed records:
/// one summary per lifecycle interval plus the end-to-end total.
fn stage_summaries_json(records: &[FlightRecord]) -> String {
    let complete: Vec<&FlightRecord> = records.iter().filter(|r| r.is_complete()).collect();
    let mut parts = Vec::with_capacity(INTERVAL_NAMES.len() + 1);
    for (i, name) in INTERVAL_NAMES.iter().enumerate() {
        let samples: Vec<u64> = complete.iter().map(|r| r.interval_ns(i)).collect();
        parts.push(format!("\"{name}_ns\": {}", summary_json(samples)));
    }
    let totals: Vec<u64> = complete.iter().map(|r| r.total_ns()).collect();
    parts.push(format!("\"total_ns\": {}", summary_json(totals)));
    format!("{{{}}}", parts.join(", "))
}

/// Assembles the versioned stats snapshot for `server` (the body of a
/// `stats` reply and the `"stats"` section of a flight dump).
pub(crate) fn stats_json(server: &Arc<ServerShared>) -> String {
    let cfg = server.cfg;
    let mut doc = String::with_capacity(4096);
    doc.push_str("{\n");
    doc.push_str(&format!("  \"stats_version\": {STATS_VERSION},\n"));
    doc.push_str(&format!(
        "  \"config\": {{\"batch_size\": {}, \"max_wait_us\": {}, \"queue_cap\": {}, \
         \"shards\": {}, \"tenant_quota\": {}, \"slo_p99_us\": {}, \"slo_shed_pct\": {}, \
         \"session_ttl_ms\": {}, \"session_cap\": {}, \"session_gang\": {}}},\n",
        cfg.batch_size,
        cfg.max_wait.as_micros(),
        cfg.queue_cap,
        cfg.shards,
        cfg.tenant_quota,
        cfg.slo_p99_us,
        cfg.slo_shed_pct,
        cfg.session_ttl.as_millis(),
        cfg.session_cap,
        cfg.session_gang,
    ));

    let mut models = server.registry.catalog();
    models.sort_by(|a, b| a.name.cmp(&b.name));
    let model_rows: Vec<String> = models
        .iter()
        .map(|m| {
            format!(
                "{{\"name\": \"{}\", \"version\": {}, \"input_len\": {}, \"output_len\": {}, \
                 \"streamable\": {}}}",
                esc(&m.name),
                m.version,
                m.input_len,
                m.output_len,
                m.streamable,
            )
        })
        .collect();
    doc.push_str(&format!("  \"models\": [{}],\n", model_rows.join(", ")));

    let quota_rows: Vec<String> = server
        .quotas
        .snapshot()
        .iter()
        .map(|(tenant, n)| format!("\"{}\": {n}", esc(tenant)))
        .collect();
    doc.push_str(&format!(
        "  \"quota\": {{\"limit\": {}, \"in_flight\": {{{}}}}},\n",
        server.quotas.limit(),
        quota_rows.join(", "),
    ));
    doc.push_str(&format!(
        "  \"sessions\": {{\"active\": {}, \"opened\": {}, \"closed\": {}, \
         \"expired\": {}, \"steps\": {}, \"steps_ganged\": {}, \"steps_scalar\": {}, \
         \"gangs\": {}}},\n",
        server
            .active_sessions
            .load(std::sync::atomic::Ordering::SeqCst),
        metrics::SESSIONS_OPENED.value(),
        metrics::SESSIONS_CLOSED.value(),
        metrics::SESSIONS_EXPIRED.value(),
        metrics::SESSION_STEPS.value(),
        metrics::SESSION_STEPS_GANGED.value(),
        metrics::SESSION_STEPS_SCALAR.value(),
        metrics::SESSION_GANGS.value(),
    ));
    doc.push_str(&format!(
        "  \"protocol_errors\": {},\n",
        server
            .protocol_errors
            .load(std::sync::atomic::Ordering::SeqCst)
    ));

    let shard_rows: Vec<String> = server
        .shard_handles()
        .iter()
        .map(|h| {
            let records = h.ring.snapshot();
            format!(
                "{{\"index\": {}, \"conns\": {}, \"requests\": {}, \"queue_depth\": {}, \
                 \"flight\": {{\"capacity\": {}, \"pushed\": {}, \"dropped\": {}}}, \
                 \"stages\": {}}}",
                h.index,
                h.stats.conns.load(Ordering::Relaxed),
                h.stats.requests.load(Ordering::Relaxed),
                h.batcher.queue_depth(),
                h.ring.capacity(),
                h.ring.pushed(),
                h.ring.dropped(),
                stage_summaries_json(&records),
            )
        })
        .collect();
    doc.push_str(&format!("  \"shards\": [{}],\n", shard_rows.join(", ")));

    // The full registry report rides along so one stats call carries
    // every serve.* counter and histogram without a second channel.
    let telemetry_doc = telemetry::report_json();
    doc.push_str(&format!("  \"telemetry\": {}\n", telemetry_doc.trim_end()));
    doc.push_str("}\n");
    doc
}

/// All shards' flight records, completed only, oldest first, capped to
/// the newest [`DUMP_TRACES`].
fn recent_traces(server: &Arc<ServerShared>) -> Vec<FlightRecord> {
    let mut records: Vec<FlightRecord> = Vec::new();
    for h in server.shard_handles() {
        records.extend(h.ring.snapshot());
    }
    records.retain(FlightRecord::is_complete);
    records.sort_by_key(|r| (r.stamps_ns[STAMP_FLUSH], r.trace_id));
    let skip = records.len().saturating_sub(DUMP_TRACES);
    records.split_off(skip)
}

/// Writes a flight-recorder dump: `flight-<millis>-<seq>.json` (reason,
/// stats snapshot, recent completed traces) plus the Chrome-trace twin
/// `flight-<millis>-<seq>.trace.json`, into `RPBCM_SERVE_SLO_DIR`
/// (default `.`). Returns the `(json, chrome_trace)` path pair and
/// records it in the server's dump list.
pub(crate) fn dump_flight(
    server: &Arc<ServerShared>,
    reason: &str,
) -> std::io::Result<(PathBuf, PathBuf)> {
    let dir =
        PathBuf::from(telemetry::env::path("RPBCM_SERVE_SLO_DIR").unwrap_or_else(|| ".".into()));
    let millis = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let stem = format!("flight-{millis}-{seq}");

    let traces = recent_traces(server);
    let doc = format!(
        "{{\n\"reason\": \"{}\",\n\"stats\": {},\n\"traces\": {}\n}}\n",
        esc(reason),
        stats_json(server).trim_end(),
        flight::records_json(&traces).trim_end(),
    );
    let json_path = dir.join(format!("{stem}.json"));
    let trace_path = dir.join(format!("{stem}.trace.json"));
    std::fs::write(&json_path, doc)?;
    std::fs::write(&trace_path, flight::trace_json(&traces))?;
    server
        .flight_dumps
        .lock()
        .expect("dump lock")
        .push((json_path.clone(), trace_path.clone()));
    Ok((json_path, trace_path))
}

/// The SLO watchdog thread body: ticks until the server stops, checking
/// the armed SLOs and dumping the flight recorder on a violation (with
/// a cooldown between dumps).
pub(crate) fn watchdog_loop(server: &Arc<ServerShared>) {
    let cfg = server.cfg;
    let mut last_dump: Option<Instant> = None;
    let mut prev_accepted = 0u64;
    let mut prev_shed = 0u64;
    while !server.stop.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(WATCH_TICK);
        if !telemetry::enabled() {
            continue;
        }
        let mut violation: Option<String> = None;

        if cfg.slo_p99_us > 0 {
            let mut totals: Vec<u64> = Vec::new();
            for h in server.shard_handles() {
                totals.extend(
                    h.ring
                        .snapshot()
                        .iter()
                        .filter(|r| r.is_complete())
                        .map(FlightRecord::total_ns),
                );
            }
            if !totals.is_empty() {
                totals.sort_unstable();
                let p99_ns = percentile(&totals, 99);
                let slo_ns = (cfg.slo_p99_us as u64).saturating_mul(1000);
                if p99_ns > slo_ns {
                    violation = Some(format!(
                        "p99 lifecycle latency {p99_ns} ns exceeds SLO {slo_ns} ns \
                         over {} recent traces",
                        totals.len()
                    ));
                }
            }
        }

        let accepted = metrics::ACCEPTED.value();
        let shed = metrics::SHED.value();
        if violation.is_none() && cfg.slo_shed_pct > 0 {
            let da = accepted.saturating_sub(prev_accepted);
            let ds = shed.saturating_sub(prev_shed);
            let offered = da + ds;
            if offered > 0 && ds * 100 > offered * cfg.slo_shed_pct as u64 {
                violation = Some(format!(
                    "shed rate {ds}/{offered} exceeds SLO {}% over the last tick",
                    cfg.slo_shed_pct
                ));
            }
        }
        prev_accepted = accepted;
        prev_shed = shed;

        if let Some(reason) = violation {
            let cooled = last_dump.is_none_or(|t| t.elapsed() >= DUMP_COOLDOWN);
            if cooled {
                last_dump = Some(Instant::now());
                metrics::SLO_VIOLATIONS.add(1);
                // A dump failing (unwritable dir) must not kill the
                // watchdog; the violation counter still records it.
                let _ = dump_flight(server, &reason);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[7], 99), 7);
    }

    #[test]
    fn json_escaping_covers_quotes_and_control_bytes() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("x\n\t\u{1}"), "x\\n\\t\\u0001");
    }

    #[test]
    fn stage_summaries_render_every_interval_and_total() {
        let doc = stage_summaries_json(&[]);
        for name in INTERVAL_NAMES {
            assert!(doc.contains(&format!("\"{name}_ns\"")), "missing {name}");
        }
        assert!(doc.contains("\"total_ns\""));
        assert!(doc.contains("\"count\": 0"));
    }
}
