//! Loopback end-to-end tests: a real TCP server on an ephemeral port,
//! real clients, and bit-exact comparisons against direct engine calls.

use nn::layers::{BcmConv2d, Flatten, HadaBcmConv2d, Linear, ReLU};
use nn::{CheckpointMeta, Network};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serve::{Client, ClientError, Model, Registry, ServeConfig, Server, Status};
use std::time::Duration;

/// A BCM conv stack that keeps an fx mirror (stride 1, "same" padding).
fn conv_stack(seed: u64) -> (Network, CheckpointMeta) {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Network::new(
        "convstack",
        vec![
            Box::new(BcmConv2d::new(&mut rng, 4, 8, 3, 1, 1, 4)),
            Box::new(ReLU::new()),
            Box::new(BcmConv2d::new(&mut rng, 8, 4, 3, 1, 1, 4)),
            Box::new(ReLU::new()),
        ],
    );
    let meta = CheckpointMeta {
        input_dims: vec![4, 6, 6],
        frac_bits: 8,
    };
    (net, meta)
}

/// A mixed classifier head (folded hadaBCM + dense tail) — float-only.
fn classifier(seed: u64) -> (Network, CheckpointMeta) {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Network::new(
        "classifier",
        vec![
            Box::new(HadaBcmConv2d::new(&mut rng, 4, 8, 3, 1, 1, 4)),
            Box::new(ReLU::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(&mut rng, 8 * 5 * 5, 3)),
        ],
    );
    let meta = CheckpointMeta {
        input_dims: vec![4, 5, 5],
        frac_bits: 8,
    };
    (net, meta)
}

fn f32_samples(rng: &mut StdRng, n: usize, len: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|_| (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect()
}

fn fx_samples(rng: &mut StdRng, n: usize, len: usize) -> Vec<Vec<i16>> {
    (0..n)
        .map(|_| (0..len).map(|_| rng.gen_range(-256i16..256)).collect())
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn serve_one(net: Network, meta: CheckpointMeta, cfg: ServeConfig) -> (Server, String) {
    let net_name = net.name().to_string();
    let model = Model::from_network(&net_name, net, meta);
    let name = model.name().to_string();
    let registry = Registry::new();
    registry.insert(model);
    let server = Server::bind("127.0.0.1:0", cfg, registry).expect("bind");
    (server, name)
}

#[test]
fn float_replies_are_bit_identical_to_direct_inference() {
    let (net, meta) = classifier(1);
    let mut direct = net.clone();
    let (server, name) = serve_one(net, meta.clone(), ServeConfig::default());
    let addr = server.local_addr();

    let mut rng = StdRng::seed_from_u64(2);
    let samples = f32_samples(&mut rng, 6, meta.sample_len());

    // Concurrent clients so the batcher actually groups requests.
    let served: Vec<Vec<f32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = samples
            .iter()
            .map(|s| {
                let name = name.clone();
                scope.spawn(move || {
                    Client::connect(addr)
                        .expect("connect")
                        .infer_f32(&name, s)
                        .expect("infer")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut dims = vec![1usize];
    dims.extend_from_slice(&meta.input_dims);
    for (s, out) in samples.iter().zip(&served) {
        let want = direct.forward(&tensor::Tensor::from_vec(s.clone(), &dims), false);
        assert_eq!(bits(want.as_slice()), bits(out));
    }
    server.shutdown();
    assert_eq!(server.protocol_errors(), 0);
}

#[test]
fn fx_replies_are_bit_identical_to_direct_hwsim_inference() {
    let (net, meta) = conv_stack(3);
    let reference = Model::from_network("ref", net.clone(), meta.clone());
    let fx = reference.fx().expect("fx mirror");
    let (server, name) = serve_one(net, meta, ServeConfig::default());
    let addr = server.local_addr();

    let mut rng = StdRng::seed_from_u64(4);
    let samples = fx_samples(&mut rng, 6, fx.input_len());
    let served: Vec<Vec<i16>> = std::thread::scope(|scope| {
        let handles: Vec<_> = samples
            .iter()
            .map(|s| {
                let name = name.clone();
                scope.spawn(move || {
                    Client::connect(addr)
                        .expect("connect")
                        .infer_fx(&name, s)
                        .expect("infer fx")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (s, out) in samples.iter().zip(&served) {
        assert_eq!(&fx.forward(s), out, "fx loopback must be bit-identical");
    }
    server.shutdown();
    assert_eq!(server.protocol_errors(), 0);
}

#[test]
fn served_checkpoint_round_trips_through_a_file() {
    let (net, meta) = classifier(5);
    let mut direct = net.clone();
    let path = std::env::temp_dir().join(format!(
        "rpbcm-serve-e2e-{}-{:?}.rpbcm",
        std::process::id(),
        std::thread::current().id()
    ));
    net.save(&path, &meta).expect("save checkpoint");

    let registry = Registry::new();
    registry.load_file(&path).expect("load checkpoint");
    let server = Server::bind("127.0.0.1:0", ServeConfig::default(), registry).expect("bind");

    let mut rng = StdRng::seed_from_u64(6);
    let sample = &f32_samples(&mut rng, 1, meta.sample_len())[0];
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let out = client.infer_f32("classifier", sample).expect("infer");

    let mut dims = vec![1usize];
    dims.extend_from_slice(&meta.input_dims);
    let want = direct.forward(&tensor::Tensor::from_vec(sample.clone(), &dims), false);
    assert_eq!(bits(want.as_slice()), bits(&out));

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn overload_sheds_with_explicit_replies() {
    let (net, meta) = conv_stack(7);
    let cfg = ServeConfig {
        batch_size: 2,
        max_wait: Duration::from_millis(1),
        queue_cap: 2,
        shards: 1,
        ..ServeConfig::default()
    };
    let (server, name) = serve_one(net, meta.clone(), cfg);
    let addr = server.local_addr();

    let mut rng = StdRng::seed_from_u64(8);
    let sample = f32_samples(&mut rng, 1, meta.sample_len()).remove(0);
    // 2x the queue bound in flight at once: some requests must come back
    // as explicit `overloaded` errors, the rest must succeed normally.
    let outcomes: Vec<Result<usize, Status>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..32)
            .map(|_| {
                let name = name.clone();
                let sample = sample.clone();
                scope.spawn(move || {
                    match Client::connect(addr)
                        .expect("connect")
                        .infer_f32(&name, &sample)
                    {
                        Ok(out) => Ok(out.len()),
                        Err(ClientError::Rejected(status, _)) => Err(status),
                        Err(e) => panic!("transport failure: {e}"),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok = outcomes.iter().filter(|r| r.is_ok()).count();
    let shed = outcomes
        .iter()
        .filter(|r| matches!(r, Err(Status::Overloaded)))
        .count();
    assert!(ok > 0, "some requests must be served under overload");
    assert_eq!(
        ok + shed,
        outcomes.len(),
        "every non-served request must be an explicit overloaded reply"
    );
    server.shutdown();
    assert_eq!(server.protocol_errors(), 0);
}

#[test]
fn json_mode_serves_and_rejects() {
    let (net, meta) = classifier(9);
    let (server, _name) = serve_one(net, meta.clone(), ServeConfig::default());
    let addr = server.local_addr();

    let reply = serve::client::json_round_trip(addr, "{\"op\":\"ping\"}").expect("ping");
    assert_eq!(reply, "{\"status\":\"ok\",\"output\":[]}");

    let input: Vec<String> = (0..meta.sample_len())
        .map(|i| format!("0.{}", i % 10))
        .collect();
    let line = format!(
        "{{\"op\":\"infer\",\"model\":\"classifier\",\"mode\":\"f32\",\"input\":[{}]}}",
        input.join(",")
    );
    let reply = serve::client::json_round_trip(addr, &line).expect("infer");
    assert!(
        reply.starts_with("{\"status\":\"ok\",\"output\":["),
        "got {reply}"
    );

    let reply =
        serve::client::json_round_trip(addr, "{\"op\":\"infer\",\"model\":\"nope\",\"input\":[1]}")
            .expect("unknown model");
    assert!(
        reply.starts_with("{\"status\":\"unknown_model\""),
        "got {reply}"
    );

    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let (net, meta) = conv_stack(10);
    let cfg = ServeConfig {
        batch_size: 4,
        max_wait: Duration::from_millis(200),
        queue_cap: 64,
        shards: 4,
        ..ServeConfig::default()
    };
    let (server, name) = serve_one(net, meta.clone(), cfg);
    let addr = server.local_addr();

    let mut rng = StdRng::seed_from_u64(11);
    let sample = f32_samples(&mut rng, 1, meta.sample_len()).remove(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let name = name.clone();
                let sample = sample.clone();
                scope.spawn(move || {
                    Client::connect(addr)
                        .expect("connect")
                        .infer_f32(&name, &sample)
                })
            })
            .collect();
        // Let the burst reach the queue, then shut down mid-flight: every
        // admitted request must still be answered (drained, not dropped).
        std::thread::sleep(Duration::from_millis(30));
        server.shutdown();
        for h in handles {
            match h.join().unwrap() {
                Ok(out) => assert!(!out.is_empty()),
                // A request that raced the stop flag gets an explicit
                // shutting_down reply, never a dropped connection.
                Err(ClientError::Rejected(status, _)) => {
                    assert_eq!(status, Status::ShuttingDown)
                }
                Err(e) => panic!("transport failure during drain: {e}"),
            }
        }
    });
}

#[test]
fn bad_requests_get_explicit_replies_not_hangups() {
    let (net, meta) = classifier(12);
    let (server, name) = serve_one(net, meta.clone(), ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Wrong input length.
    match client.infer_f32(&name, &[1.0, 2.0]) {
        Err(ClientError::Rejected(Status::BadRequest, msg)) => {
            assert!(msg.contains("length"), "got {msg}")
        }
        other => panic!("expected bad_request, got {other:?}"),
    }
    // Unknown model.
    match client.infer_f32("missing", &vec![0.0; meta.sample_len()]) {
        Err(ClientError::Rejected(Status::UnknownModel, _)) => {}
        other => panic!("expected unknown_model, got {other:?}"),
    }
    // Fx request against a model with no fx mirror (dense tail).
    match client.infer_fx(&name, &vec![0i16; meta.sample_len()]) {
        Err(ClientError::Rejected(Status::BadRequest, msg)) => {
            assert!(msg.contains("fixed-point"), "got {msg}")
        }
        other => panic!("expected bad_request, got {other:?}"),
    }
    // The connection survives all three rejections.
    client.ping().expect("connection still healthy");
    server.shutdown();
}

// ---------------------------------------------------------------------
// Pruning edge cases on the serving path (satellite: pruned networks
// must serve correctly on both engine paths).
// ---------------------------------------------------------------------

/// Prunes every block of the first BCM layer, leaving the second intact.
fn prune_first_layer_fully(net: &mut Network) {
    let first_blocks = net.bcm_layers()[0].block_count();
    let all: Vec<usize> = (0..first_blocks).collect();
    net.bcm_eliminate(&all);
}

#[test]
fn all_blocks_pruned_layer_serves_zeros_consistently_on_both_paths() {
    let (mut net, meta) = conv_stack(13);
    prune_first_layer_fully(&mut net);
    assert!(net.bcm_sparsity() > 0.0);

    let mut direct = net.clone();
    let reference = Model::from_network("ref", net.clone(), meta.clone());
    let fx = reference
        .fx()
        .expect("fully-pruned stack keeps its fx mirror");
    let (server, name) = serve_one(net, meta.clone(), ServeConfig::default());
    let addr = server.local_addr();

    let mut rng = StdRng::seed_from_u64(14);
    let fsample = f32_samples(&mut rng, 1, meta.sample_len()).remove(0);
    let xsample = fx_samples(&mut rng, 1, fx.input_len()).remove(0);

    let mut client = Client::connect(addr).expect("connect");
    let fout = client.infer_f32(&name, &fsample).expect("float infer");
    let mut dims = vec![1usize];
    dims.extend_from_slice(&meta.input_dims);
    let want = direct.forward(&tensor::Tensor::from_vec(fsample, &dims), false);
    assert_eq!(bits(want.as_slice()), bits(&fout));

    let xout = client.infer_fx(&name, &xsample).expect("fx infer");
    assert_eq!(fx.forward(&xsample), xout);

    server.shutdown();
    assert_eq!(server.protocol_errors(), 0);
}

#[test]
fn heavily_pruned_network_serves_bit_identically_on_both_paths() {
    let (mut net, meta) = conv_stack(15);
    // Accuracy-floor style pruning: keep only the least-important few
    // blocks, mimicking Algorithm 1 stopping near the floor.
    let importances = net.bcm_importances();
    let mut order: Vec<usize> = (0..importances.len()).collect();
    order.sort_by(|&a, &b| importances[a].total_cmp(&importances[b]));
    let kill: Vec<usize> = order[..importances.len() * 3 / 4].to_vec();
    net.bcm_eliminate(&kill);
    assert!(net.bcm_sparsity() >= 0.7);

    let mut direct = net.clone();
    let reference = Model::from_network("ref", net.clone(), meta.clone());
    let fx = reference.fx().expect("pruned stack keeps its fx mirror");
    let (server, name) = serve_one(net, meta.clone(), ServeConfig::default());
    let addr = server.local_addr();

    let mut rng = StdRng::seed_from_u64(16);
    let fsamples = f32_samples(&mut rng, 3, meta.sample_len());
    let xsamples = fx_samples(&mut rng, 3, fx.input_len());

    let mut client = Client::connect(addr).expect("connect");
    let mut dims = vec![1usize];
    dims.extend_from_slice(&meta.input_dims);
    for s in &fsamples {
        let out = client.infer_f32(&name, s).expect("float infer");
        let want = direct.forward(&tensor::Tensor::from_vec(s.clone(), &dims), false);
        assert_eq!(bits(want.as_slice()), bits(&out));
    }
    for s in &xsamples {
        let out = client.infer_fx(&name, s).expect("fx infer");
        assert_eq!(fx.forward(s), out);
    }

    server.shutdown();
    assert_eq!(server.protocol_errors(), 0);
}
