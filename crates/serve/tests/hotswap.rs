//! Hot-swap, ordering and quota integration tests: a real server on a
//! loopback socket, concurrent clients across a version flip, raw
//! pipelined connections, and tenant admission limits.

use nn::layers::{Flatten, HadaBcmConv2d, Linear, ReLU};
use nn::{CheckpointMeta, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::protocol::{
    decode_response, encode_request, read_frame, write_frame, Payload, Request, Response, Status,
    HANDSHAKE,
};
use serve::{Client, ClientError, Model, Registry, ServeConfig, Server};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A float-only classifier; different seeds give bitwise-distinct
/// weights, so replies identify the serving version exactly.
fn classifier(seed: u64) -> (Network, CheckpointMeta) {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Network::new(
        "cls",
        vec![
            Box::new(HadaBcmConv2d::new(&mut rng, 4, 8, 3, 1, 1, 4)),
            Box::new(ReLU::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(&mut rng, 8 * 5 * 5, 3)),
        ],
    );
    let meta = CheckpointMeta {
        input_dims: vec![4, 5, 5],
        frac_bits: 8,
    };
    (net, meta)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs `net` directly on one flat sample.
fn direct(net: &Network, meta: &CheckpointMeta, sample: &[f32]) -> Vec<f32> {
    let mut dims = vec![1usize];
    dims.extend_from_slice(&meta.input_dims);
    net.clone()
        .forward(&tensor::Tensor::from_vec(sample.to_vec(), &dims), false)
        .as_slice()
        .to_vec()
}

#[test]
fn hot_swap_is_atomic_and_shutdown_drains_losslessly() {
    let (v1, meta) = classifier(21);
    let (v2, _) = classifier(22);
    let sample: Vec<f32> = (0..meta.sample_len())
        .map(|i| (i % 7) as f32 * 0.1)
        .collect();
    let want1 = bits(&direct(&v1, &meta, &sample));
    let want2 = bits(&direct(&v2, &meta, &sample));
    assert_ne!(want1, want2, "versions must be distinguishable");

    let registry = Registry::new();
    let e1 = registry.publish(Model::from_network("cls", v1, meta.clone()));
    let cfg = ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg, registry).expect("bind");
    let addr = server.local_addr();

    let stop_spam = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Background spam: every reply must be exactly the old or the new
        // version's output — never a blend — or an explicit
        // shutting_down once the drain begins.
        let spammers: Vec<_> = (0..4)
            .map(|_| {
                let sample = &sample;
                let (want1, want2) = (&want1, &want2);
                let stop_spam = &stop_spam;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut answered = 0u32;
                    while !stop_spam.load(Ordering::Relaxed) {
                        match client.infer_f32("cls", sample) {
                            Ok(out) => {
                                let got = bits(&out);
                                assert!(
                                    got == *want1 || got == *want2,
                                    "reply is neither version's output: a mixed batch?"
                                );
                                answered += 1;
                            }
                            Err(ClientError::Rejected(Status::ShuttingDown, _)) => break,
                            Err(e) => panic!("transport failure during swap/drain: {e}"),
                        }
                    }
                    answered
                })
            })
            .collect();

        // Foreground: confirm v1 serves, flip, confirm v2 serves.
        let mut probe = Client::connect(addr).expect("connect probe");
        let out = probe.infer_f32("cls", &sample).expect("v1 infer");
        assert_eq!(bits(&out), want1);

        let (v2_again, _) = classifier(22);
        let e2 = server
            .registry()
            .publish(Model::from_network("cls", v2_again, meta.clone()));
        assert!(e2.version() > e1.version());
        assert_eq!(server.registry().len(), 1, "publish replaced, not appended");

        let out = probe.infer_f32("cls", &sample).expect("v2 infer");
        assert_eq!(bits(&out), want2, "requests after the flip see v2");

        // Shut down while the spammers are mid-flight: the drain must
        // answer every request (ok or shutting_down, never a hangup).
        std::thread::sleep(Duration::from_millis(20));
        stop_spam.store(true, Ordering::Relaxed);
        server.shutdown();
        let answered: u32 = spammers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(answered > 0, "spammers must have been served");
    });
    // The old entry's Arc stayed valid across the flip.
    assert_eq!(e1.name(), "cls");
    assert_eq!(server.protocol_errors(), 0);
}

#[test]
fn pipelined_responses_arrive_in_request_order() {
    let (net, meta) = classifier(23);
    let samples: Vec<Vec<f32>> = (0..8)
        .map(|i| vec![0.01 * (i as f32 + 1.0); meta.sample_len()])
        .collect();
    let wants: Vec<Vec<u32>> = samples
        .iter()
        .map(|s| bits(&direct(&net, &meta, s)))
        .collect();

    let registry = Registry::new();
    registry.publish(Model::from_network("cls", net, meta));
    let server = Server::bind("127.0.0.1:0", ServeConfig::default(), registry).expect("bind");

    // One raw connection, every request written before any reply is read.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(&HANDSHAKE).expect("handshake");
    for (i, s) in samples.iter().enumerate() {
        let req = Request::Infer {
            model: "cls".into(),
            input: Payload::F32(s.clone()),
        };
        write_frame(&mut stream, &encode_request(&req)).expect("pipeline write");
        if i == 3 {
            // A malformed request mid-pipeline: its inline bad_request
            // reply must hold position 5, not overtake the batched work.
            write_frame(&mut stream, &[9u8]).expect("bad opcode write");
        }
    }
    let mut replies = Vec::new();
    for _ in 0..samples.len() + 1 {
        let frame = read_frame(&mut stream).expect("pipelined reply");
        replies.push(decode_response(&frame, false).expect("decode"));
    }
    for (i, reply) in replies.iter().enumerate() {
        let slot = match i {
            0..=3 => Some(i),
            4 => None, // the malformed request's slot
            _ => Some(i - 1),
        };
        match (slot, reply) {
            (Some(s), Response::Output(Payload::F32(out))) => {
                assert_eq!(bits(out), wants[s], "response {i} out of order");
            }
            (None, Response::Error(Status::BadRequest, _)) => {}
            other => panic!("slot {i}: unexpected reply {other:?}"),
        }
    }
    drop(stream);
    server.shutdown();
    // Exactly the one malformed frame was counted.
    assert_eq!(server.protocol_errors(), 1);
}

#[test]
fn tenant_quota_denies_excess_in_flight_and_frees_on_completion() {
    let (net, meta) = classifier(24);
    let sample: Vec<f32> = vec![0.25; meta.sample_len()];
    let registry = Registry::new();
    registry.publish(Model::from_network("cls", net, meta));
    let cfg = ServeConfig {
        // A wide-open batch with a long deadline keeps request 1 queued
        // (slot held) while request 2 is parsed in the same burst.
        batch_size: 64,
        max_wait: Duration::from_millis(300),
        queue_cap: 64,
        shards: 1,
        tenant_quota: 1,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg, registry).expect("bind");
    let addr = server.local_addr();

    let infer = Request::Infer {
        model: "cls".into(),
        input: Payload::F32(sample.clone()),
    };
    let hello = Request::Hello {
        tenant: "team-a".into(),
    };
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&HANDSHAKE).expect("handshake");
    // hello + two infers in one burst: the first infer takes team-a's
    // only slot and waits for its batch; the second must be denied.
    write_frame(&mut stream, &encode_request(&hello)).expect("hello");
    write_frame(&mut stream, &encode_request(&infer)).expect("infer 1");
    write_frame(&mut stream, &encode_request(&infer)).expect("infer 2");

    let frame = read_frame(&mut stream).expect("hello reply");
    assert_eq!(
        decode_response(&frame, false).expect("decode"),
        Response::Output(Payload::F32(Vec::new()))
    );
    let frame = read_frame(&mut stream).expect("infer 1 reply");
    match decode_response(&frame, false).expect("decode") {
        Response::Output(Payload::F32(out)) => assert!(!out.is_empty()),
        other => panic!("first infer should be served, got {other:?}"),
    }
    let frame = read_frame(&mut stream).expect("infer 2 reply");
    match decode_response(&frame, false).expect("decode") {
        Response::Error(Status::QuotaExceeded, msg) => {
            assert!(msg.contains("team-a"), "diagnostic names the tenant: {msg}")
        }
        other => panic!("second infer should be quota-denied, got {other:?}"),
    }

    // Other tenants are unaffected, and a completed request frees its
    // slot: team-a serves again afterwards.
    let mut other = Client::connect(addr).expect("connect team-b");
    other.hello("team-b").expect("hello team-b");
    other.infer_f32("cls", &sample).expect("team-b unaffected");

    let mut again = Client::connect(addr).expect("reconnect team-a");
    again.hello("team-a").expect("hello team-a");
    again
        .infer_f32("cls", &sample)
        .expect("slot freed after completion");

    server.shutdown();
    assert_eq!(server.protocol_errors(), 0);
}
