//! Observability integration tests: the `stats` opcode over a real
//! socket, flight-recorder dumps, the SLO watchdog, and quota release
//! when a client disconnects abnormally with requests in flight.

use nn::layers::{Flatten, HadaBcmConv2d, Linear, ReLU};
use nn::{CheckpointMeta, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::protocol::{encode_request, write_frame, Payload, Request, HANDSHAKE};
use serve::{Client, Model, Registry, ServeConfig, Server};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn classifier(seed: u64) -> (Network, CheckpointMeta) {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Network::new(
        "cls",
        vec![
            Box::new(HadaBcmConv2d::new(&mut rng, 4, 8, 3, 1, 1, 4)),
            Box::new(ReLU::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(&mut rng, 8 * 5 * 5, 3)),
        ],
    );
    let meta = CheckpointMeta {
        input_dims: vec![4, 5, 5],
        frac_bits: 8,
    };
    (net, meta)
}

/// Points `RPBCM_SERVE_SLO_DIR` at one shared per-process temp dir.
/// Every test uses the same directory (the variable is process-global),
/// and nobody deletes it, so concurrent dump tests cannot race.
fn dump_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rpbcm-flight-dumps-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("dump dir");
    std::env::set_var("RPBCM_SERVE_SLO_DIR", &dir);
    dir
}

fn serve_classifier(seed: u64, cfg: ServeConfig) -> (Server, Vec<f32>) {
    let (net, meta) = classifier(seed);
    let sample = vec![0.25; meta.sample_len()];
    let registry = Registry::new();
    registry.publish(Model::from_network("cls", net, meta));
    let server = Server::bind("127.0.0.1:0", cfg, registry).expect("bind");
    (server, sample)
}

#[test]
fn stats_opcode_round_trips_a_parseable_snapshot() {
    telemetry::set_enabled(true);
    let cfg = ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    };
    let (server, sample) = serve_classifier(31, cfg);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for _ in 0..4 {
        client.infer_f32("cls", &sample).expect("infer");
    }
    let doc = client.stats().expect("stats over the wire");
    // Structural spot checks on the versioned snapshot.
    assert!(doc.contains("\"stats_version\": 1"), "doc: {doc}");
    assert!(doc.contains("\"config\""));
    assert!(doc.contains("\"name\": \"cls\""));
    assert!(doc.contains("\"quota\""));
    assert!(doc.contains("\"shards\""));
    assert!(doc.contains("\"total_ns\""));
    assert!(doc.contains("\"telemetry\""));
    assert_eq!(
        doc.matches('{').count(),
        doc.matches('}').count(),
        "snapshot braces must balance"
    );
    // The wire doc is exactly what the in-process accessor renders
    // (modulo counters advancing between the two calls).
    let local = server.stats_snapshot();
    assert!(local.contains("\"stats_version\": 1"));

    // JSON debug mode folds the snapshot onto one line.
    let line = serve::client::json_round_trip(server.local_addr(), r#"{"op":"stats"}"#)
        .expect("json-mode stats");
    assert!(
        line.starts_with("{\"status\":\"ok\",\"stats\":"),
        "line: {line}"
    );
    assert!(!line.contains('\n'));
    server.shutdown();
}

#[test]
fn forced_flight_dump_writes_valid_json_and_chrome_trace() {
    telemetry::set_enabled(true);
    let dir = dump_dir();
    let cfg = ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    };
    let (server, sample) = serve_classifier(32, cfg);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for _ in 0..6 {
        client.infer_f32("cls", &sample).expect("infer");
    }
    // Replies are flushed before the client sees them, so by now every
    // served request's trace is finalized in the shard ring.
    let (json_path, trace_path) = server.dump_flight("forced by test").expect("dump");
    assert_eq!(server.flight_dumps().len(), 1);

    let doc = std::fs::read_to_string(&json_path).expect("dump json");
    assert!(doc.contains("\"reason\": \"forced by test\""));
    assert!(doc.contains("\"stats\""));
    assert!(doc.contains("\"traces\""));
    assert!(doc.contains("\"trace_id\""), "dump holds completed traces");
    assert_eq!(doc.matches('{').count(), doc.matches('}').count());

    let trace = std::fs::read_to_string(&trace_path).expect("chrome trace");
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"ph\":\"X\""), "trace: {trace}");
    let _ = dir;
    server.shutdown();
}

#[test]
fn slo_watchdog_dumps_on_a_violated_p99() {
    telemetry::set_enabled(true);
    let _dir = dump_dir();
    let cfg = ServeConfig {
        shards: 1,
        // 1 µs p99: any real request lifecycle violates it.
        slo_p99_us: 1,
        ..ServeConfig::default()
    };
    let (server, sample) = serve_classifier(33, cfg);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for _ in 0..4 {
        client.infer_f32("cls", &sample).expect("infer");
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    let dumps = loop {
        let dumps = server.flight_dumps();
        if !dumps.is_empty() {
            break dumps;
        }
        assert!(
            Instant::now() < deadline,
            "watchdog produced no dump within 5s"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let (json_path, trace_path) = &dumps[0];
    let doc = std::fs::read_to_string(json_path).expect("dump json");
    assert!(doc.contains("exceeds SLO"), "reason names the violation");
    assert!(std::fs::read_to_string(trace_path)
        .expect("chrome trace")
        .contains("\"traceEvents\""));
    server.shutdown();
}

#[test]
fn abnormal_disconnect_releases_tenant_quota_of_in_flight_requests() {
    let cfg = ServeConfig {
        // A wide batch and long deadline keep the request queued (quota
        // slot held) while the client vanishes.
        batch_size: 64,
        max_wait: Duration::from_millis(200),
        queue_cap: 64,
        shards: 1,
        tenant_quota: 1,
        ..ServeConfig::default()
    };
    let (server, sample) = serve_classifier(34, cfg);
    let addr = server.local_addr();

    // Raw connection: handshake, declare tenant, queue one inference —
    // then slam the socket shut without reading any reply.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(&HANDSHAKE).expect("handshake");
    write_frame(
        &mut stream,
        &encode_request(&Request::Hello { tenant: "t".into() }),
    )
    .expect("hello");
    write_frame(
        &mut stream,
        &encode_request(&Request::Infer {
            model: "cls".into(),
            input: Payload::F32(sample.clone()),
        }),
    )
    .expect("infer frame");
    stream.flush().expect("flush");
    // Wait until the request is actually admitted (slot taken) before
    // disconnecting, so the test really covers an in-flight abort.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.quotas().in_flight("t") == 0 {
        assert!(Instant::now() < deadline, "request never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(stream);

    // The batch still executes for the dead connection; delivering the
    // undeliverable reply must drop the quota guard and free the slot.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.quotas().in_flight("t") != 0 {
        assert!(
            Instant::now() < deadline,
            "quota slot leaked after abnormal disconnect: in_flight = {}",
            server.quotas().in_flight("t")
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // And the tenant can immediately fill its quota again.
    let mut client = Client::connect(addr).expect("reconnect");
    client.hello("t").expect("hello");
    client
        .infer_f32("cls", &sample)
        .expect("quota slot reusable");
    server.shutdown();
}

#[test]
fn quota_guard_survives_disconnect_while_request_executes() {
    // Variant with several requests in flight when the peer dies.
    let cfg = ServeConfig {
        batch_size: 4,
        max_wait: Duration::from_millis(100),
        queue_cap: 64,
        shards: 1,
        tenant_quota: 8,
        ..ServeConfig::default()
    };
    let (server, sample) = serve_classifier(35, cfg);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(&HANDSHAKE).expect("handshake");
    write_frame(
        &mut stream,
        &encode_request(&Request::Hello {
            tenant: "burst".into(),
        }),
    )
    .expect("hello");
    for _ in 0..6 {
        write_frame(
            &mut stream,
            &encode_request(&Request::Infer {
                model: "cls".into(),
                input: Payload::F32(sample.clone()),
            }),
        )
        .expect("infer frame");
    }
    stream.flush().expect("flush");
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.quotas().in_flight("burst") == 0 {
        assert!(Instant::now() < deadline, "requests never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(stream);
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.quotas().in_flight("burst") != 0 {
        assert!(
            Instant::now() < deadline,
            "leaked {} quota slots after disconnect",
            server.quotas().in_flight("burst")
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn stats_reports_every_interval_histogram_after_traffic() {
    telemetry::set_enabled(true);
    let cfg = ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    };
    let (server, sample) = serve_classifier(36, cfg);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for _ in 0..8 {
        client.infer_f32("cls", &sample).expect("infer");
    }
    let doc = client.stats().expect("stats");
    for name in [
        "admit_ns",
        "enqueue_ns",
        "batch_wait_ns",
        "dispatch_ns",
        "infer_ns",
        "reply_ns",
        "total_ns",
    ] {
        assert!(doc.contains(&format!("\"{name}\"")), "missing {name}");
    }
    // The single shard served all 8 traced requests.
    assert!(doc.contains("\"pushed\": 8"), "doc: {doc}");
    // Per-stage histograms reached the global registry too.
    assert!(doc.contains("serve.stage.total_ns"));
    server.shutdown();
}
