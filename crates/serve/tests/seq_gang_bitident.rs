//! Property-based bit-identity contract for lane-gang session stepping.
//!
//! The gang steppers ([`nn::seq::SeqRunnerBatch`] and
//! [`serve::FxSeqRunnerBatch`]) must produce **exactly** the words a solo
//! scalar runner produces for every member, across random recurrent
//! stacks (LSTM/GRU mixes, random widths and block sizes, random block
//! pruning, head or headless), random gang widths, random Q-formats, and
//! random join/leave schedules — a lane's output can never depend on who
//! its gang-mates are, or whether it rode a gang at all.

use nn::layers::{BcmGru, BcmLstm, GlobalAvgPool, Layer, Linear, Network};
use nn::seq::{SeqRunner, SeqRunnerBatch};
use nn::CheckpointMeta;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{FxSeqRunner, FxSeqRunnerBatch, Model};

/// A randomly drawn streamable model: 1–2 recurrent cells (each
/// independently LSTM or GRU), random feature widths (multiples of the
/// block size), a random quarter-ish of blocks pruned away, optionally a
/// mean-pool + dense head, and a random fixed-point format.
fn build_model(n_cells: usize, bs_sel: usize, head: bool, frac_bits: u8, seed: u64) -> Model {
    let bs = [2usize, 4][bs_sel];
    let mut rng = StdRng::seed_from_u64(seed);
    let dims: Vec<usize> = (0..=n_cells)
        .map(|_| bs * rng.gen_range(1usize..=3))
        .collect();
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    for i in 0..n_cells {
        if rng.gen_range(0u32..2) == 0 {
            layers.push(Box::new(BcmLstm::new(&mut rng, dims[i], dims[i + 1], bs)));
        } else {
            layers.push(Box::new(BcmGru::new(&mut rng, dims[i], dims[i + 1], bs)));
        }
    }
    if head {
        layers.push(Box::new(GlobalAvgPool::new()));
        layers.push(Box::new(Linear::new(&mut rng, dims[n_cells], 3)));
    }
    let mut net = Network::new("gang-prop", layers);
    let importances = net.bcm_importances();
    let mut order: Vec<usize> = (0..importances.len()).collect();
    order.sort_by(|&a, &b| importances[a].total_cmp(&importances[b]));
    net.bcm_eliminate(&order[..importances.len() / 4]);
    let meta = CheckpointMeta {
        input_dims: vec![dims[0], 4, 1],
        frac_bits,
    };
    Model::from_network("gang-prop", net, meta)
}

/// A deterministic float step input, distinct per (lane, round).
fn float_input(lane: usize, round: usize, f: usize) -> Vec<f32> {
    (0..f)
        .map(|j| (((lane * 31 + round * 7 + j) as f32) * 0.61).sin() * 0.8)
        .collect()
}

/// A deterministic full-range i16 step input, distinct per (lane, round).
fn fx_input(lane: usize, round: usize, f: usize) -> Vec<i16> {
    (0..f)
        .map(|j| {
            let h = (lane.wrapping_mul(2_654_435_761))
                ^ (round.wrapping_mul(40_503))
                ^ (j.wrapping_mul(9973));
            (h >> 3) as i16
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Per-lane activity windows `[from, to)` over `steps` rounds: lanes
/// join and leave mid-stream, so gang composition changes every round.
fn windows(width: usize, steps: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    (0..width)
        .map(|_| {
            let from = rng.gen_range(0..steps);
            let to = rng.gen_range(from + 1..=steps);
            (from, to)
        })
        .collect()
}

proptest! {
    /// Every float gang member's reply stream is bit-identical to a solo
    /// scalar runner fed the same inputs, whatever the gang around it
    /// looked like round by round.
    #[test]
    fn float_gang_members_match_solo_scalar_runs(
        n_cells in 1usize..=2,
        bs_sel in 0usize..2,
        head in 0usize..2,
        width in 2usize..=8,
        steps in 3usize..=6,
        seed in any::<u64>(),
    ) {
        let model = build_model(n_cells, bs_sel, head == 1, 12u8, seed);
        let seq = model.seq().expect("recurrent stacks stream");
        let f = seq.input_len();
        let sched = windows(width, steps, seed);

        let mut gang: Vec<SeqRunner> = (0..width).map(|_| seq.new_f32()).collect();
        let mut solo: Vec<SeqRunner> = (0..width).map(|_| seq.new_f32()).collect();
        for round in 0..steps {
            let active: Vec<usize> = (0..width)
                .filter(|&i| sched[i].0 <= round && round < sched[i].1)
                .collect();
            if active.is_empty() {
                continue;
            }
            let inputs: Vec<Vec<f32>> = active.iter().map(|&i| float_input(i, round, f)).collect();
            let xs: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
            let mut members: Vec<&mut SeqRunner> = gang
                .iter_mut()
                .enumerate()
                .filter(|(i, _)| active.contains(i))
                .map(|(_, r)| r)
                .collect();
            let outs = SeqRunnerBatch::step(&mut members, &xs);
            for (k, &i) in active.iter().enumerate() {
                let want = solo[i].step(xs[k]);
                prop_assert_eq!(
                    bits(&outs[k]),
                    bits(&want),
                    "float lane {} diverged at round {}",
                    i,
                    round
                );
            }
        }
    }

    /// The fixed-point mirror of the property, additionally drawing the
    /// Q-format: gang-stepped words equal solo-stepped words exactly.
    #[test]
    fn fx_gang_members_match_solo_scalar_runs(
        n_cells in 1usize..=2,
        bs_sel in 0usize..2,
        head in 0usize..2,
        frac_bits in 6u8..=14,
        width in 2usize..=8,
        steps in 3usize..=6,
        seed in any::<u64>(),
    ) {
        let model = build_model(n_cells, bs_sel, head == 1, frac_bits, seed);
        let seq = model.seq().expect("recurrent stacks stream");
        let f = seq.input_len();
        let sched = windows(width, steps, seed);

        let mut gang: Vec<FxSeqRunner> = (0..width)
            .map(|_| seq.new_fx().expect("fx streaming form"))
            .collect();
        let mut solo: Vec<FxSeqRunner> = (0..width)
            .map(|_| seq.new_fx().expect("fx streaming form"))
            .collect();
        for round in 0..steps {
            let active: Vec<usize> = (0..width)
                .filter(|&i| sched[i].0 <= round && round < sched[i].1)
                .collect();
            if active.is_empty() {
                continue;
            }
            let inputs: Vec<Vec<i16>> = active.iter().map(|&i| fx_input(i, round, f)).collect();
            let xs: Vec<&[i16]> = inputs.iter().map(Vec::as_slice).collect();
            let mut members: Vec<&mut FxSeqRunner> = gang
                .iter_mut()
                .enumerate()
                .filter(|(i, _)| active.contains(i))
                .map(|(_, r)| r)
                .collect();
            let outs = FxSeqRunnerBatch::step(&mut members, &xs);
            for (k, &i) in active.iter().enumerate() {
                let want = solo[i].step(xs[k]);
                prop_assert_eq!(
                    &outs[k],
                    &want,
                    "fx lane {} diverged at round {}",
                    i,
                    round
                );
            }
        }
    }
}
