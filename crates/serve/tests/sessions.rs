//! Streaming-session end-to-end tests: real loopback sessions against
//! the sharded server, with per-step outputs compared bit for bit
//! against the offline full-sequence forward, hot-swap version pinning,
//! idle-TTL expiry, and the session cap / tenant quota interactions.

use nn::layers::checkpoint::LayerSnapshot;
use nn::layers::{BcmConv2d, Layer, ReLU};
use nn::models::lstm_classifier;
use nn::{CheckpointMeta, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{protocol, Payload, Request, Response};
use serve::{Client, ClientError, Model, Registry, ServeConfig, Server, Status};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;
use tensor::Tensor;

const F: usize = 6; // per-step input features
const T: usize = 7; // sequence length

/// A pruned BCM-LSTM classifier (Algorithm 1 style: drop the
/// least-important quarter of blocks) and the checkpoint metadata that
/// keys its fixed-point mirror.
fn pruned_lstm(seed: u64) -> (Network, CheckpointMeta) {
    let mut net = lstm_classifier(F, 8, 4, 2, seed);
    let importances = net.bcm_importances();
    let mut order: Vec<usize> = (0..importances.len()).collect();
    order.sort_by(|&a, &b| importances[a].total_cmp(&importances[b]));
    net.bcm_eliminate(&order[..importances.len() / 4]);
    assert!(net.bcm_sparsity() > 0.0);
    let meta = CheckpointMeta {
        input_dims: vec![F, T, 1],
        frac_bits: 12,
    };
    (net, meta)
}

/// A deterministic `[1, F, T, 1]` input sequence, distinct per seed.
fn sequence(seed: u64) -> Tensor<f32> {
    let vals: Vec<f32> = (0..F * T)
        .map(|i| ((i as f32 + seed as f32 * 0.37) * 0.81).sin() * 0.5)
        .collect();
    Tensor::from_vec(vals, &[1, F, T, 1])
}

/// Timestep `t` of a `[1, F, T, 1]` tensor as a flat step input.
fn step_input(x: &Tensor<f32>, t: usize) -> Vec<f32> {
    let xs = x.as_slice();
    (0..F).map(|j| xs[j * T + t]).collect()
}

/// Offline reference: the recurrent stack's full-sequence eval forward,
/// then the dense head applied to every timestep's hidden state — the
/// exact arithmetic a batched (non-streaming) deployment runs.
fn offline_per_step(net: &Network, x: &Tensor<f32>) -> Vec<Vec<f32>> {
    let mut cur = x.clone();
    let mut layers: Vec<Box<dyn Layer>> = net.layers().to_vec();
    for layer in &mut layers {
        if matches!(
            layer.snapshot(),
            Some(LayerSnapshot::BcmLstm { .. }) | Some(LayerSnapshot::BcmGru { .. })
        ) {
            cur = layer.forward(&cur, false);
        }
    }
    let hd = cur.dims()[1];
    let head = layers
        .iter()
        .position(|l| matches!(l.snapshot(), Some(LayerSnapshot::Linear { .. })))
        .expect("classifier head");
    (0..T)
        .map(|t| {
            let hs = cur.as_slice();
            let h: Vec<f32> = (0..hd).map(|j| hs[j * T + t]).collect();
            layers[head]
                .forward(&Tensor::from_vec(h, &[1, hd]), false)
                .as_slice()
                .to_vec()
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn serve_one(net: Network, meta: CheckpointMeta, cfg: ServeConfig) -> (Server, String) {
    let name = net.name().to_string();
    let registry = Registry::new();
    registry.publish(Model::from_network(&name, net, meta));
    let server = Server::bind("127.0.0.1:0", cfg, registry).expect("bind");
    (server, name)
}

/// The config the suite runs under: the defaults, with the session-gang
/// lane width overridden by `RPBCM_SERVE_SESSION_GANG` when set. CI runs
/// this file twice — gang forced off (`0`) and forced on (`8`) — and
/// every assertion must hold identically in both legs.
fn test_config() -> ServeConfig {
    let mut cfg = ServeConfig::default();
    if let Ok(v) = std::env::var("RPBCM_SERVE_SESSION_GANG") {
        if let Ok(n) = v.trim().parse() {
            cfg.session_gang = n;
        }
    }
    cfg
}

/// Offline fixed-point reference for one session: the quantized step
/// inputs and the solo scalar fold's per-step outputs.
type FxStepRef = (Vec<Vec<i16>>, Vec<Vec<i16>>);

fn offline_fx_steps(net: &Network, meta: &CheckpointMeta, x: &Tensor<f32>) -> FxStepRef {
    let reference = Model::from_network("ref", net.clone(), meta.clone());
    let seq = reference.seq().expect("streamable");
    let mut runner = seq.new_fx().expect("fx streaming form");
    let q = runner.qformat();
    let steps: Vec<Vec<i16>> = (0..T)
        .map(|t| q.quantize_slice(&step_input(x, t)))
        .collect();
    let outs = steps.iter().map(|s| runner.step(s)).collect();
    (steps, outs)
}

/// A raw binary-mode connection that pipelines many frames before
/// reading any reply — the only way to put several `session_step`s in
/// front of a shard in one readiness burst, which is what forms lane
/// gangs. [`Client`] is strictly request-reply and never gangs wider
/// than one.
struct Pipelined {
    stream: TcpStream,
}

impl Pipelined {
    fn connect(addr: std::net::SocketAddr) -> Pipelined {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        stream.write_all(&protocol::HANDSHAKE).expect("handshake");
        stream.flush().expect("flush");
        Pipelined { stream }
    }

    fn send(&mut self, req: &Request) {
        protocol::write_frame(&mut self.stream, &protocol::encode_request(req)).expect("send");
    }

    fn open(&mut self, model: &str, fx: bool) -> u64 {
        self.send(&Request::SessionOpen {
            model: model.to_string(),
            fx,
        });
        let frame = protocol::read_frame(&mut self.stream).expect("open reply");
        match protocol::decode_session_response(&frame).expect("decode open") {
            Response::Session { session, .. } => session,
            other => panic!("session_open rejected: {other:?}"),
        }
    }

    fn recv(&mut self, fx: bool) -> Response {
        let frame = protocol::read_frame(&mut self.stream).expect("reply frame");
        protocol::decode_response(&frame, fx).expect("decode reply")
    }

    fn recv_f32(&mut self) -> Vec<f32> {
        match self.recv(false) {
            Response::Output(Payload::F32(v)) => v,
            other => panic!("expected f32 output, got {other:?}"),
        }
    }

    fn recv_fx(&mut self) -> Vec<i16> {
        match self.recv(true) {
            Response::Output(Payload::Fx(v)) => v,
            other => panic!("expected fx output, got {other:?}"),
        }
    }
}

#[test]
fn float_session_steps_are_bit_identical_to_the_offline_forward() {
    let (net, meta) = pruned_lstm(41);
    let x = sequence(1);
    let want = offline_per_step(&net, &x);
    let (server, name) = serve_one(net, meta, test_config());

    let mut client = Client::connect(server.local_addr()).expect("connect");
    let (sid, version) = client.open_session(&name, false).expect("open");
    assert!(version > 0, "open reply carries the pinned version");
    assert_eq!(server.active_sessions(), 1);

    for (t, want_t) in want.iter().enumerate() {
        let got = client
            .session_step_f32(sid, &step_input(&x, t))
            .expect("step");
        assert_eq!(bits(&got), bits(want_t), "step {t} diverged from offline");
    }
    client.close_session(sid).expect("close");
    assert_eq!(server.active_sessions(), 0);

    // A closed session is gone: stepping it is an explicit bad_request.
    match client.session_step_f32(sid, &step_input(&x, 0)) {
        Err(ClientError::Rejected(Status::BadRequest, msg)) => {
            assert!(msg.contains("no open session"), "got {msg}")
        }
        other => panic!("expected bad_request after close, got {other:?}"),
    }
    server.shutdown();
    assert_eq!(server.protocol_errors(), 0);
}

#[test]
fn fx_session_steps_are_bit_identical_to_the_offline_fold() {
    let (net, meta) = pruned_lstm(42);
    let reference = Model::from_network("ref", net.clone(), meta.clone());
    let seq = reference.seq().expect("streamable");
    let mut offline = seq.new_fx().expect("fx streaming form");
    let q = offline.qformat();

    let x = sequence(2);
    let steps: Vec<Vec<i16>> = (0..T)
        .map(|t| q.quantize_slice(&step_input(&x, t)))
        .collect();
    let want: Vec<Vec<i16>> = steps.iter().map(|s| offline.step(s)).collect();

    let (server, name) = serve_one(net, meta, test_config());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let (sid, _version) = client.open_session(&name, true).expect("open fx");
    for (t, s) in steps.iter().enumerate() {
        let got = client.session_step_fx(sid, s).expect("fx step");
        assert_eq!(got, want[t], "fx step {t} diverged from the offline fold");
    }
    client.close_session(sid).expect("close");
    server.shutdown();
    assert_eq!(server.protocol_errors(), 0);
}

#[test]
fn mid_session_hot_swap_keeps_the_pinned_version() {
    let (v1, meta) = pruned_lstm(51);
    let (v2, _) = pruned_lstm(52);
    let x = sequence(3);
    let want1 = offline_per_step(&v1, &x);
    let want2 = offline_per_step(&v2, &x);
    assert_ne!(
        bits(&want1[0]),
        bits(&want2[0]),
        "versions must be distinguishable"
    );

    let registry = Registry::new();
    let e1 = registry.publish(Model::from_network("cls", v1, meta.clone()));
    let server = Server::bind("127.0.0.1:0", test_config(), registry).expect("bind");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    let (sid, pinned) = client.open_session("cls", false).expect("open on v1");
    assert_eq!(pinned, e1.version());

    // A couple of steps on v1, then flip the registry mid-session.
    for (t, want_t) in want1.iter().enumerate().take(3) {
        let got = client
            .session_step_f32(sid, &step_input(&x, t))
            .expect("step");
        assert_eq!(bits(&got), bits(want_t), "pre-swap step {t}");
    }
    let e2 = server
        .registry()
        .publish(Model::from_network("cls", pruned_lstm(52).0, meta));
    assert!(e2.version() > e1.version());

    // The open session stays pinned to v1 — its remaining steps continue
    // the v1 sequence bit for bit, never mixing versions mid-stream.
    for (t, want_t) in want1.iter().enumerate().skip(3) {
        let got = client
            .session_step_f32(sid, &step_input(&x, t))
            .expect("step");
        assert_eq!(bits(&got), bits(want_t), "post-swap step {t} left v1");
    }
    client.close_session(sid).expect("close");

    // A session opened after the flip pins v2 and serves v2's math.
    let (sid2, pinned2) = client.open_session("cls", false).expect("open on v2");
    assert_eq!(pinned2, e2.version());
    let got = client
        .session_step_f32(sid2, &step_input(&x, 0))
        .expect("step");
    assert_eq!(bits(&got), bits(&want2[0]), "new session serves v2");

    server.shutdown();
    assert_eq!(server.protocol_errors(), 0);
}

#[test]
fn idle_sessions_expire_via_ttl_and_release_their_slots() {
    let (net, meta) = pruned_lstm(61);
    let x = sequence(4);
    let cfg = ServeConfig {
        session_ttl: Duration::from_millis(50),
        shards: 1,
        ..test_config()
    };
    let (server, name) = serve_one(net, meta, cfg);

    let mut client = Client::connect(server.local_addr()).expect("connect");
    let (sid, _) = client.open_session(&name, false).expect("open");
    client
        .session_step_f32(sid, &step_input(&x, 0))
        .expect("step before idling");

    // Idle well past the TTL plus the shard's sweep tick.
    std::thread::sleep(Duration::from_millis(300));
    match client.session_step_f32(sid, &step_input(&x, 1)) {
        Err(ClientError::Rejected(Status::BadRequest, msg)) => {
            assert!(msg.contains("no open session"), "got {msg}")
        }
        other => panic!("expected the expired session to reject, got {other:?}"),
    }
    assert_eq!(server.active_sessions(), 0, "expiry released the slot");

    // The connection survives and a fresh session starts from zero state.
    let (sid2, _) = client.open_session(&name, false).expect("reopen");
    client
        .session_step_f32(sid2, &step_input(&x, 0))
        .expect("fresh session serves");
    server.shutdown();
    assert_eq!(server.protocol_errors(), 0);
}

#[test]
fn session_cap_refuses_excess_opens_until_a_close_frees_a_slot() {
    let (net, meta) = pruned_lstm(71);
    let cfg = ServeConfig {
        session_cap: 1,
        ..test_config()
    };
    let (server, name) = serve_one(net, meta, cfg);
    let addr = server.local_addr();

    let mut a = Client::connect(addr).expect("connect a");
    let mut b = Client::connect(addr).expect("connect b");
    let (sid, _) = a.open_session(&name, false).expect("first open");
    match b.open_session(&name, false) {
        Err(ClientError::Rejected(Status::Overloaded, msg)) => {
            assert!(msg.contains("session cap"), "got {msg}")
        }
        other => panic!("expected overloaded at the cap, got {other:?}"),
    }
    a.close_session(sid).expect("close");
    b.open_session(&name, false)
        .expect("slot freed by the close");
    server.shutdown();
    assert_eq!(server.protocol_errors(), 0);
}

#[test]
fn open_sessions_hold_a_tenant_quota_slot() {
    let (net, meta) = pruned_lstm(81);
    let cfg = ServeConfig {
        tenant_quota: 1,
        ..test_config()
    };
    let (server, name) = serve_one(net, meta, cfg);
    let addr = server.local_addr();

    let mut a = Client::connect(addr).expect("connect a");
    a.hello("team-a").expect("hello");
    let (sid, _) = a.open_session(&name, false).expect("open");

    // The open session occupies team-a's only slot for its lifetime.
    let mut a2 = Client::connect(addr).expect("connect a2");
    a2.hello("team-a").expect("hello");
    match a2.open_session(&name, false) {
        Err(ClientError::Rejected(Status::QuotaExceeded, msg)) => {
            assert!(msg.contains("team-a"), "diagnostic names the tenant: {msg}")
        }
        other => panic!("expected quota_exceeded, got {other:?}"),
    }
    // Other tenants are unaffected.
    let mut b = Client::connect(addr).expect("connect b");
    b.hello("team-b").expect("hello");
    let (sid_b, _) = b.open_session(&name, false).expect("team-b open");
    b.close_session(sid_b).expect("close b");

    // Closing releases the slot.
    a.close_session(sid).expect("close");
    a2.open_session(&name, false).expect("slot freed");
    server.shutdown();
    assert_eq!(server.protocol_errors(), 0);
}

#[test]
fn session_misuse_gets_explicit_replies_not_hangups() {
    let (net, meta) = pruned_lstm(91);
    let x = sequence(5);
    let want = offline_per_step(&net, &x);
    let (server, name) = serve_one(net, meta.clone(), test_config());
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // No streaming form: a conv stack refuses session_open outright.
    let mut rng = StdRng::seed_from_u64(7);
    let conv = Network::new(
        "conv",
        vec![
            Box::new(BcmConv2d::new(&mut rng, 4, 8, 3, 1, 1, 4)) as Box<dyn Layer>,
            Box::new(ReLU::new()),
        ],
    );
    server.registry().publish(Model::from_network(
        "conv",
        conv,
        CheckpointMeta {
            input_dims: vec![4, 6, 6],
            frac_bits: 8,
        },
    ));
    match client.open_session("conv", false) {
        Err(ClientError::Rejected(Status::BadRequest, msg)) => {
            assert!(msg.contains("streaming"), "got {msg}")
        }
        other => panic!("expected bad_request for a conv stack, got {other:?}"),
    }
    // Unknown model.
    match client.open_session("missing", false) {
        Err(ClientError::Rejected(Status::UnknownModel, _)) => {}
        other => panic!("expected unknown_model, got {other:?}"),
    }
    // Stepping a session that was never opened.
    match client.session_step_f32(99, &step_input(&x, 0)) {
        Err(ClientError::Rejected(Status::BadRequest, _)) => {}
        other => panic!("expected bad_request for an unknown id, got {other:?}"),
    }

    // A wrong-length step is rejected without corrupting session state:
    // the stream continues bit-identically afterwards.
    let (sid, _) = client.open_session(&name, false).expect("open");
    let got = client
        .session_step_f32(sid, &step_input(&x, 0))
        .expect("step 0");
    assert_eq!(bits(&got), bits(&want[0]));
    match client.session_step_f32(sid, &[1.0, 2.0]) {
        Err(ClientError::Rejected(Status::BadRequest, msg)) => {
            assert!(msg.contains("length"), "got {msg}")
        }
        other => panic!("expected bad_request for a short step, got {other:?}"),
    }
    // A float session refuses fx-typed steps (mode disagreement).
    match client.session_step_fx(sid, &[0i16; F]) {
        Err(ClientError::Rejected(Status::BadRequest, _)) => {}
        other => panic!("expected bad_request for a mode mismatch, got {other:?}"),
    }
    let got = client
        .session_step_f32(sid, &step_input(&x, 1))
        .expect("step 1");
    assert_eq!(bits(&got), bits(&want[1]), "state survived the rejections");
    client.close_session(sid).expect("close");
    server.shutdown();
}

#[test]
fn pipelined_multi_session_bursts_stay_bit_identical_per_session() {
    let (net, meta) = pruned_lstm(101);
    let cfg = ServeConfig {
        shards: 1,
        ..test_config()
    };
    let (server, name) = serve_one(net.clone(), meta, cfg);
    let mut conn = Pipelined::connect(server.local_addr());

    // Six same-model float sessions on one connection, each streaming a
    // distinct sequence. Every round bursts all six steps in one write
    // train, so the shard sees them in one readiness wakeup and (gang
    // enabled) lane-gangs them — replies must still be exactly what each
    // session's solo offline forward produces.
    const W: usize = 6;
    let inputs: Vec<Tensor<f32>> = (0..W as u64).map(|s| sequence(10 + s)).collect();
    let want: Vec<Vec<Vec<f32>>> = inputs.iter().map(|x| offline_per_step(&net, x)).collect();
    let sids: Vec<u64> = (0..W).map(|_| conn.open(&name, false)).collect();

    for t in 0..T {
        for (w, sid) in sids.iter().enumerate() {
            conn.send(&Request::SessionStep {
                session: *sid,
                input: Payload::F32(step_input(&inputs[w], t)),
            });
        }
        for (w, want_w) in want.iter().enumerate() {
            let got = conn.recv_f32();
            assert_eq!(
                bits(&got),
                bits(&want_w[t]),
                "session {w} step {t} diverged from its solo forward"
            );
        }
    }
    for sid in &sids {
        conn.send(&Request::SessionClose { session: *sid });
    }
    for _ in 0..W {
        match conn.recv(false) {
            Response::Output(Payload::F32(v)) => assert!(v.is_empty(), "close acks empty"),
            other => panic!("expected close ack, got {other:?}"),
        }
    }
    server.shutdown();
    assert_eq!(server.protocol_errors(), 0);
}

#[test]
fn mixed_mode_gangs_survive_mid_stream_joins_and_leaves() {
    let (net, meta) = pruned_lstm(103);
    let cfg = ServeConfig {
        shards: 1,
        ..test_config()
    };
    let (server, name) = serve_one(net.clone(), meta.clone(), cfg);
    let mut conn = Pipelined::connect(server.local_addr());

    // Three float and two fx sessions stream together; after round 1 one
    // session of each mode leaves, after round 2 a fresh float session
    // joins with zero state. Gang-mates must never perturb each other:
    // every reply is the member's own solo fold, bit for bit.
    let float_x: Vec<Tensor<f32>> = (0..4).map(|s| sequence(20 + s)).collect();
    let float_want: Vec<Vec<Vec<f32>>> =
        float_x.iter().map(|x| offline_per_step(&net, x)).collect();
    let fx_x: Vec<Tensor<f32>> = (0..2).map(|s| sequence(30 + s)).collect();
    let fx_ref: Vec<FxStepRef> = fx_x
        .iter()
        .map(|x| offline_fx_steps(&net, &meta, x))
        .collect();

    struct Member {
        sid: u64,
        fx: bool,
        idx: usize,
        t: usize,
    }
    let mut live: Vec<Member> = Vec::new();
    for idx in 0..3 {
        live.push(Member {
            sid: conn.open(&name, false),
            fx: false,
            idx,
            t: 0,
        });
    }
    for idx in 0..2 {
        live.push(Member {
            sid: conn.open(&name, true),
            fx: true,
            idx,
            t: 0,
        });
    }

    for round in 0..T {
        for m in &live {
            let input = if m.fx {
                Payload::Fx(fx_ref[m.idx].0[m.t].clone())
            } else {
                Payload::F32(step_input(&float_x[m.idx], m.t))
            };
            conn.send(&Request::SessionStep {
                session: m.sid,
                input,
            });
        }
        for m in &mut live {
            if m.fx {
                let got = conn.recv_fx();
                assert_eq!(
                    got, fx_ref[m.idx].1[m.t],
                    "fx session {} step {} diverged",
                    m.idx, m.t
                );
            } else {
                let got = conn.recv_f32();
                assert_eq!(
                    bits(&got),
                    bits(&float_want[m.idx][m.t]),
                    "float session {} step {} diverged",
                    m.idx,
                    m.t
                );
            }
            m.t += 1;
        }
        if round == 1 {
            // One leave per mode: the dissolving gang's survivors must
            // carry exact state forward.
            let gone_float = live.remove(0);
            conn.send(&Request::SessionClose {
                session: gone_float.sid,
            });
            let fx_pos = live.iter().position(|m| m.fx).expect("an fx member");
            let gone_fx = live.remove(fx_pos);
            conn.send(&Request::SessionClose {
                session: gone_fx.sid,
            });
            let _ = conn.recv(false);
            let _ = conn.recv(false);
        }
        if round == 2 {
            live.push(Member {
                sid: conn.open(&name, false),
                fx: false,
                idx: 3,
                t: 0,
            });
        }
    }
    server.shutdown();
    assert_eq!(server.protocol_errors(), 0);
}

#[test]
fn pipelined_steps_on_one_session_execute_in_order() {
    let (net, meta) = pruned_lstm(107);
    let x = sequence(6);
    let want = offline_per_step(&net, &x);
    let cfg = ServeConfig {
        shards: 1,
        ..test_config()
    };
    let (server, name) = serve_one(net, meta, cfg);
    let mut conn = Pipelined::connect(server.local_addr());
    let sid = conn.open(&name, false);

    // All T steps of one session in a single burst: the gang scheduler
    // must run them strictly in order (one per execution wave) — a
    // session never lane-mates with itself.
    for t in 0..T {
        conn.send(&Request::SessionStep {
            session: sid,
            input: Payload::F32(step_input(&x, t)),
        });
    }
    for (t, want_t) in want.iter().enumerate() {
        let got = conn.recv_f32();
        assert_eq!(bits(&got), bits(want_t), "pipelined step {t} out of order");
    }
    server.shutdown();
    assert_eq!(server.protocol_errors(), 0);
}

#[test]
fn a_pipelined_close_is_a_barrier_for_later_steps() {
    let (net, meta) = pruned_lstm(109);
    let x = sequence(7);
    let want = offline_per_step(&net, &x);
    let cfg = ServeConfig {
        shards: 1,
        ..test_config()
    };
    let (server, name) = serve_one(net, meta, cfg);
    let mut conn = Pipelined::connect(server.local_addr());
    let sid = conn.open(&name, false);

    // step, step, close, step — pipelined. The close is a barrier: the
    // steps before it execute in order, the step after it finds the
    // session gone, exactly as if each frame had been sent alone.
    conn.send(&Request::SessionStep {
        session: sid,
        input: Payload::F32(step_input(&x, 0)),
    });
    conn.send(&Request::SessionStep {
        session: sid,
        input: Payload::F32(step_input(&x, 1)),
    });
    conn.send(&Request::SessionClose { session: sid });
    conn.send(&Request::SessionStep {
        session: sid,
        input: Payload::F32(step_input(&x, 2)),
    });

    assert_eq!(bits(&conn.recv_f32()), bits(&want[0]), "pre-close step 0");
    assert_eq!(bits(&conn.recv_f32()), bits(&want[1]), "pre-close step 1");
    match conn.recv(false) {
        Response::Output(Payload::F32(v)) => assert!(v.is_empty(), "close acks empty"),
        other => panic!("expected close ack, got {other:?}"),
    }
    match conn.recv(false) {
        Response::Error(Status::BadRequest, msg) => {
            assert!(msg.contains("no open session"), "got {msg}")
        }
        other => panic!("expected bad_request after pipelined close, got {other:?}"),
    }
    server.shutdown();
    assert_eq!(server.protocol_errors(), 0);
}
