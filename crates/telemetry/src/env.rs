//! Shared parsing for the workspace's `RPBCM_*` environment variables.
//!
//! Every runtime knob (`RPBCM_THREADS`, `RPBCM_TELEMETRY`, `RPBCM_TRACE`,
//! the `RPBCM_SERVE_*` family) goes through these helpers so malformed
//! values behave identically everywhere: the variable falls back to its
//! documented default and a single warning line goes to stderr, instead of
//! a panic (worst) or a silent misconfiguration (subtle worst).
//!
//! The pure `parse_*` functions take the raw value and return the parsed
//! result plus an optional warning, so they are unit-testable without
//! touching process-global environment state; the lookup wrappers read the
//! environment and emit the warning.
//!
//! This module is compiled unconditionally — it does not depend on the
//! `capture` feature, because consumers like `tensor::parallel` need env
//! parsing even in probe-free builds.

/// Outcome of parsing one environment variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed<T> {
    /// The effective value (the default when the raw value was invalid).
    pub value: T,
    /// A one-line human-readable warning when the raw value was present
    /// but invalid.
    pub warning: Option<String>,
}

impl<T> Parsed<T> {
    fn ok(value: T) -> Self {
        Parsed {
            value,
            warning: None,
        }
    }

    fn fallback(name: &str, raw: &str, reason: &str, value: T, shown: &str) -> Self {
        Parsed {
            warning: Some(format!(
                "warning: ignoring {name}={raw:?} ({reason}); using {shown}"
            )),
            value,
        }
    }
}

/// Parses a positive (`>= 1`) integer such as `RPBCM_THREADS` or
/// `RPBCM_SERVE_BATCH`. `None` (unset) and invalid values both yield
/// `default`; only invalid values warn.
pub fn parse_positive_usize(name: &str, raw: Option<&str>, default: usize) -> Parsed<usize> {
    match raw {
        None => Parsed::ok(default),
        Some(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Parsed::ok(n),
            Ok(_) => Parsed::fallback(name, s, "must be >= 1", default, &default.to_string()),
            Err(_) => Parsed::fallback(
                name,
                s,
                "not a positive integer",
                default,
                &default.to_string(),
            ),
        },
    }
}

/// Parses a boolean switch such as `RPBCM_TELEMETRY`. Recognized true
/// spellings: `1`, `true`, `on`, `yes`; false: `0`, `false`, `off`, `no`,
/// and the empty string. Anything else warns and yields `default`.
pub fn parse_bool(name: &str, raw: Option<&str>, default: bool) -> Parsed<bool> {
    match raw {
        None => Parsed::ok(default),
        Some(s) => match s.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "on" | "yes" => Parsed::ok(true),
            "0" | "false" | "off" | "no" | "" => Parsed::ok(false),
            _ => Parsed::fallback(
                name,
                s,
                "not a boolean (use 1/true/on or 0/false/off)",
                default,
                if default { "on" } else { "off" },
            ),
        },
    }
}

/// Parses a non-negative integer with a unit already implied by the
/// variable name (e.g. `RPBCM_SERVE_MAX_WAIT_MS`). Zero is allowed (it
/// means "no wait" for deadline-style knobs).
pub fn parse_usize(name: &str, raw: Option<&str>, default: usize) -> Parsed<usize> {
    match raw {
        None => Parsed::ok(default),
        Some(s) => match s.trim().parse::<usize>() {
            Ok(n) => Parsed::ok(n),
            Err(_) => Parsed::fallback(
                name,
                s,
                "not a non-negative integer",
                default,
                &default.to_string(),
            ),
        },
    }
}

/// Parses a path-valued variable such as `RPBCM_TRACE`. Unset and empty
/// both mean "disabled" (no warning: an empty assignment is the
/// conventional way to disable a path knob in shell scripts).
pub fn parse_path(_name: &str, raw: Option<&str>) -> Parsed<Option<String>> {
    match raw {
        None | Some("") => Parsed::ok(None),
        Some(s) => Parsed::ok(Some(s.to_string())),
    }
}

fn emit(warning: &Option<String>) {
    if let Some(w) = warning {
        eprintln!("{w}");
    }
}

/// Reads `name` from the environment as a positive integer, warning on
/// stderr and returning `default()` when unset-invalid. The default is
/// lazy because callers like `tensor::parallel` derive it from
/// `available_parallelism`.
pub fn positive_usize_or(name: &str, default: impl FnOnce() -> usize) -> usize {
    let raw = std::env::var(name).ok();
    let parsed = parse_positive_usize(name, raw.as_deref(), 0);
    emit(&parsed.warning);
    if parsed.value >= 1 && parsed.warning.is_none() && raw.is_some() {
        parsed.value
    } else {
        default()
    }
}

/// Reads `name` from the environment as a boolean switch (default
/// `false`), warning on stderr for unrecognized spellings.
pub fn flag(name: &str) -> bool {
    let raw = std::env::var(name).ok();
    let parsed = parse_bool(name, raw.as_deref(), false);
    emit(&parsed.warning);
    parsed.value
}

/// Reads `name` from the environment as a non-negative integer, warning
/// on stderr and returning `default` when invalid.
pub fn usize_or(name: &str, default: usize) -> usize {
    let raw = std::env::var(name).ok();
    let parsed = parse_usize(name, raw.as_deref(), default);
    emit(&parsed.warning);
    parsed.value
}

/// Reads `name` from the environment as an optional path (unset/empty →
/// `None`).
pub fn path(name: &str) -> Option<String> {
    let raw = std::env::var(name).ok();
    let parsed = parse_path(name, raw.as_deref());
    emit(&parsed.warning);
    parsed.value
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_usize_accepts_valid_and_trims() {
        assert_eq!(parse_positive_usize("T", Some("4"), 1).value, 4);
        assert_eq!(parse_positive_usize("T", Some(" 8 "), 1).value, 8);
        assert!(parse_positive_usize("T", Some("4"), 1).warning.is_none());
    }

    #[test]
    fn positive_usize_falls_back_with_warning() {
        for bad in ["abc", "0", "-3", "1.5", ""] {
            let p = parse_positive_usize("RPBCM_THREADS", Some(bad), 7);
            assert_eq!(p.value, 7, "raw {bad:?}");
            let w = p.warning.expect("warns");
            assert!(w.contains("RPBCM_THREADS"), "{w}");
            assert!(!w.contains('\n'), "one line: {w}");
        }
        // Unset: default, silent.
        let p = parse_positive_usize("RPBCM_THREADS", None, 7);
        assert_eq!((p.value, p.warning), (7, None));
    }

    #[test]
    fn bool_recognizes_both_spellings() {
        for t in ["1", "true", "on", "yes", "TRUE", "On"] {
            let p = parse_bool("B", Some(t), false);
            assert!(p.value && p.warning.is_none(), "{t}");
        }
        for f in ["0", "false", "off", "no", ""] {
            let p = parse_bool("B", Some(f), true);
            assert!(!p.value && p.warning.is_none(), "{f}");
        }
        let p = parse_bool("RPBCM_TELEMETRY", Some("enabled"), false);
        assert!(!p.value);
        assert!(p.warning.expect("warns").contains("RPBCM_TELEMETRY"));
    }

    #[test]
    fn usize_allows_zero_and_warns_on_garbage() {
        assert_eq!(parse_usize("W", Some("0"), 5).value, 0);
        let p = parse_usize("W", Some("soon"), 5);
        assert_eq!(p.value, 5);
        assert!(p.warning.is_some());
    }

    #[test]
    fn path_treats_empty_as_unset() {
        assert_eq!(parse_path("P", None).value, None);
        assert_eq!(parse_path("P", Some("")).value, None);
        assert_eq!(parse_path("P", Some("/tmp/x")).value, Some("/tmp/x".into()));
    }
}
