//! Flight recorder: per-request lifecycle trace records in bounded
//! lock-free rings.
//!
//! The serving tier stamps every admitted request at seven lifecycle
//! points (parse, admit, enqueue, batch-formed, infer-start, infer-end,
//! reply-flushed) into a fixed-size [`FlightRecord`] that travels with
//! the request, then pushes the completed record into its shard's
//! [`FlightRing`]. The rings are the raw material for the `stats` wire
//! opcode and the SLO flight-recorder dump: "what did the last N
//! requests look like, stage by stage, at the moment p99 breached?"
//!
//! Design constraints, in order:
//!
//! - **Bounded.** A ring holds a fixed number of slots; a push beyond
//!   capacity overwrites the oldest slot. Memory is allocated once at
//!   ring construction, never on the push path.
//! - **Lock-free.** Writers claim a slot by ticket
//!   (`fetch_add`) and guard it with a per-slot sequence counter
//!   (seqlock): readers that observe a torn or in-progress slot simply
//!   skip it. A writer that collides with a lapped writer on the same
//!   slot drops its record and counts it — nothing ever blocks.
//! - **Bit-exactness preserved.** Records only *observe* ticks; nothing
//!   here feeds back into request processing. The serving tier
//!   additionally gates all stamping on [`crate::enabled`], so a
//!   disabled process never reads a clock.
//!
//! Timestamps are nanoseconds since the process's flight epoch (first
//! [`now_ns`] call), `0` meaning "stamp missing". [`trace_json`]
//! renders completed records in the same Chrome trace-event format as
//! the `RPBCM_TRACE` exporter — one process track per shard, one lane
//! per request — so a flight dump opens directly in Perfetto.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Number of lifecycle stamps in a record.
pub const STAGES: usize = 7;

/// Stamp index: binary/JSON frame decoded into a request.
pub const STAMP_PARSE: usize = 0;
/// Stamp index: request validated and admitted (quota acquired).
pub const STAMP_ADMIT: usize = 1;
/// Stamp index: request enqueued into the shard batcher.
pub const STAMP_ENQUEUE: usize = 2;
/// Stamp index: the batch containing the request was formed.
pub const STAMP_BATCH: usize = 3;
/// Stamp index: engine execution of the batch began.
pub const STAMP_INFER_START: usize = 4;
/// Stamp index: engine execution of the batch finished.
pub const STAMP_INFER_END: usize = 5;
/// Stamp index: the reply bytes reached the socket (or the embedder).
pub const STAMP_FLUSH: usize = 6;

/// Stamp names, indexed by the `STAMP_*` constants.
pub const STAGE_NAMES: [&str; STAGES] = [
    "parse",
    "admit",
    "enqueue",
    "batch_formed",
    "infer_start",
    "infer_end",
    "reply_flushed",
];

/// Names of the six intervals between consecutive stamps (interval `i`
/// spans `stamps_ns[i] .. stamps_ns[i + 1]`).
pub const INTERVAL_NAMES: [&str; STAGES - 1] = [
    "admit",
    "enqueue",
    "batch_wait",
    "dispatch",
    "infer",
    "reply",
];

/// One request's fixed-size lifecycle trace.
///
/// Plain data: the record travels by value with the request through the
/// shard and batch-worker threads, each stamping its stages, and is
/// pushed into a [`FlightRing`] once the final stamp lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlightRecord {
    /// Process-unique id allocated at admission ([`next_trace_id`]).
    pub trace_id: u64,
    /// Index of the shard that owned the connection.
    pub shard: u32,
    /// Size of the batch the request was executed in.
    pub batch: u32,
    /// FNV-1a hash of the tenant name (`0` = anonymous).
    pub tenant_hash: u64,
    /// Version of the model entry resolved at admission.
    pub model_version: u64,
    /// Lifecycle ticks, nanoseconds since the flight epoch; `0` =
    /// stamp missing. Indexed by the `STAMP_*` constants.
    pub stamps_ns: [u64; STAGES],
}

impl FlightRecord {
    /// `true` when every stamp landed and ticks are non-decreasing.
    pub fn is_complete(&self) -> bool {
        self.stamps_ns[0] != 0 && self.stamps_ns.windows(2).all(|w| w[0] <= w[1] && w[1] != 0)
    }

    /// Duration of interval `i` (see [`INTERVAL_NAMES`]), saturating.
    pub fn interval_ns(&self, i: usize) -> u64 {
        self.stamps_ns[i + 1].saturating_sub(self.stamps_ns[i])
    }

    /// Total parse→reply-flushed duration, saturating.
    pub fn total_ns(&self) -> u64 {
        self.stamps_ns[STAMP_FLUSH].saturating_sub(self.stamps_ns[STAMP_PARSE])
    }

    /// Renders the record as one flat JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"trace_id\":{},\"shard\":{},\"batch\":{},\"tenant_hash\":{},\"model_version\":{}",
            self.trace_id, self.shard, self.batch, self.tenant_hash, self.model_version
        );
        for (name, ns) in STAGE_NAMES.iter().zip(self.stamps_ns) {
            s.push_str(&format!(",\"{name}_ns\":{ns}"));
        }
        s.push('}');
        s
    }
}

/// Nanoseconds since the process flight epoch; never `0` (a real stamp
/// is always distinguishable from a missing one).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    (EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64).max(1)
}

/// Allocates a process-unique trace id (starting at 1).
pub fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Words per seqlock slot: the five tag fields plus the stamps.
const SLOT_WORDS: usize = 4 + STAGES;

/// One seqlock-guarded record slot.
struct Slot {
    /// Even = stable, odd = write in progress. A reader that sees the
    /// same even value before and after reading the words got a
    /// consistent record.
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn pack(rec: &FlightRecord) -> [u64; SLOT_WORDS] {
    let mut w = [0u64; SLOT_WORDS];
    w[0] = rec.trace_id;
    w[1] = (u64::from(rec.shard) << 32) | u64::from(rec.batch);
    w[2] = rec.tenant_hash;
    w[3] = rec.model_version;
    w[4..].copy_from_slice(&rec.stamps_ns);
    w
}

fn unpack(w: &[u64; SLOT_WORDS]) -> FlightRecord {
    let mut stamps_ns = [0u64; STAGES];
    stamps_ns.copy_from_slice(&w[4..]);
    FlightRecord {
        trace_id: w[0],
        shard: (w[1] >> 32) as u32,
        batch: w[1] as u32,
        tenant_hash: w[2],
        model_version: w[3],
        stamps_ns,
    }
}

/// A bounded lock-free ring of completed [`FlightRecord`]s.
///
/// Writers overwrite the oldest slot once full; [`FlightRing::snapshot`]
/// returns every consistent record, oldest first by reply-flushed tick.
pub struct FlightRing {
    slots: Box<[Slot]>,
    /// Total push attempts; `cursor % capacity` is the next slot.
    cursor: AtomicU64,
    /// Pushes abandoned because a lapping writer held the slot.
    dropped: AtomicU64,
}

impl FlightRing {
    /// Creates a ring holding up to `capacity` records (min 1). All
    /// memory is allocated here; pushes never allocate.
    pub fn new(capacity: usize) -> FlightRing {
        let cap = capacity.max(1);
        FlightRing {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records pushed (including ones since overwritten).
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Pushes abandoned under writer collision (lapped ring).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records `rec`, overwriting the oldest slot when full. Lock-free:
    /// if another writer has lapped the ring and holds the same slot,
    /// the record is dropped and counted instead of blocking.
    pub fn push(&self, rec: &FlightRecord) {
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let seq = slot.seq.load(Ordering::Relaxed);
        if !seq.is_multiple_of(2)
            || slot
                .seq
                .compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        for (w, v) in slot.words.iter().zip(pack(rec)) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(seq + 2, Ordering::Release);
    }

    /// Copies out every consistent record, sorted by reply-flushed tick
    /// then trace id (oldest first). Slots mid-write are skipped.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || !before.is_multiple_of(2) {
                continue;
            }
            let mut w = [0u64; SLOT_WORDS];
            for (dst, src) in w.iter_mut().zip(slot.words.iter()) {
                *dst = src.load(Ordering::Relaxed);
            }
            if slot.seq.load(Ordering::Acquire) == before {
                out.push(unpack(&w));
            }
        }
        out.sort_by_key(|r| (r.stamps_ns[STAMP_FLUSH], r.trace_id));
        out
    }
}

/// Renders `records` as a JSON array of flat record objects (see
/// [`FlightRecord::to_json`]).
pub fn records_json(records: &[FlightRecord]) -> String {
    let mut s = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('\n');
        s.push_str(&r.to_json());
    }
    if !records.is_empty() {
        s.push('\n');
    }
    s.push(']');
    s
}

/// Renders `records` as a Chrome trace-event JSON document in the same
/// format as the `RPBCM_TRACE` exporter: one process track per shard
/// (`pid` = shard + 1), one lane per request (`tid` = trace id), one
/// `ph:"X"` complete event per lifecycle interval. Opens directly in
/// Perfetto / `chrome://tracing`. Incomplete records are skipped.
pub fn trace_json(records: &[FlightRecord]) -> String {
    let mut shards: Vec<u32> = records.iter().map(|r| r.shard).collect();
    shards.sort_unstable();
    shards.dedup();

    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for shard in shards {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"serve shard {shard}\"}}}}",
            shard + 1
        ));
    }
    let mut events: Vec<(u32, u64, u64, u64, &'static str)> = Vec::new();
    for r in records.iter().filter(|r| r.is_complete()) {
        for (i, name) in INTERVAL_NAMES.iter().enumerate() {
            events.push((
                r.shard + 1,
                r.trace_id,
                r.stamps_ns[i],
                r.interval_ns(i),
                name,
            ));
        }
    }
    events.sort_unstable_by_key(|&(pid, tid, ts, dur, _)| (pid, tid, ts, dur));
    for (pid, tid, ts_ns, dur_ns, name) in events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"X\",\"name\":\"{name}\",\"cat\":\"flight\",\"pid\":{pid},\"tid\":{tid},\"ts\":"
        ));
        crate::trace::push_us(&mut out, ts_ns);
        out.push_str(",\"dur\":");
        crate::trace::push_us(&mut out, dur_ns);
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, base: u64) -> FlightRecord {
        FlightRecord {
            trace_id: id,
            shard: (id % 2) as u32,
            batch: 4,
            tenant_hash: 99,
            model_version: 1,
            stamps_ns: std::array::from_fn(|i| base + i as u64 * 10),
        }
    }

    #[test]
    fn records_round_trip_through_the_ring() {
        let ring = FlightRing::new(8);
        for i in 0..5 {
            ring.push(&rec(i + 1, 100 * (i + 1)));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 5);
        assert_eq!(got[0], rec(1, 100));
        assert_eq!(got[4], rec(5, 500));
        assert_eq!(ring.pushed(), 5);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let ring = FlightRing::new(4);
        for i in 0..10 {
            ring.push(&rec(i + 1, 100 * (i + 1)));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 4);
        let ids: Vec<u64> = got.iter().map(|r| r.trace_id).collect();
        assert_eq!(ids, vec![7, 8, 9, 10]);
    }

    #[test]
    fn concurrent_pushes_never_tear_records() {
        let ring = std::sync::Arc::new(FlightRing::new(16));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let ring = std::sync::Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..1000 {
                        ring.push(&rec(t * 1000 + i + 1, (i + 1) * 7));
                    }
                });
            }
        });
        // Every surviving record must be internally consistent — the
        // stamps ladder of `rec` with matching tags.
        for r in ring.snapshot() {
            let base = r.stamps_ns[0];
            assert_eq!(r.stamps_ns, std::array::from_fn(|i| base + i as u64 * 10));
            assert_eq!(r.tenant_hash, 99);
            assert!(r.is_complete());
        }
        assert_eq!(
            ring.pushed(),
            4000,
            "every push attempt is counted, kept or dropped"
        );
    }

    #[test]
    fn completeness_requires_every_stamp_in_order() {
        let mut r = rec(1, 100);
        assert!(r.is_complete());
        r.stamps_ns[STAMP_BATCH] = 0;
        assert!(!r.is_complete());
        let mut r = rec(2, 100);
        r.stamps_ns[STAMP_FLUSH] = r.stamps_ns[STAMP_INFER_END] - 1;
        assert!(!r.is_complete());
    }

    #[test]
    fn intervals_and_total_derive_from_stamps() {
        let r = rec(1, 100);
        for i in 0..STAGES - 1 {
            assert_eq!(r.interval_ns(i), 10);
        }
        assert_eq!(r.total_ns(), 60);
    }

    #[test]
    fn json_and_trace_renderings_are_wellformed() {
        let records = vec![rec(1, 100), rec(2, 200)];
        let j = records_json(&records);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"trace_id\":1"));
        assert!(j.contains("\"reply_flushed_ns\":160"));

        let t = trace_json(&records);
        assert!(t.starts_with("{\"traceEvents\":["));
        assert!(t.contains("\"serve shard 0\""));
        assert!(t.contains("\"serve shard 1\""));
        assert!(t.contains("\"name\":\"infer\""));
        // 2 shard metadata lines + 2 records x 6 intervals.
        assert_eq!(t.matches("\"ph\":\"X\"").count(), 12);
    }

    #[test]
    fn empty_renderings_stay_valid() {
        assert_eq!(records_json(&[]), "[]");
        let t = trace_json(&[]);
        assert!(t.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert!(a != 0 && b != 0 && a != b);
        assert!(now_ns() > 0);
    }
}
