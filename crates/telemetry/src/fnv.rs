//! Shared FNV-1a hashing.
//!
//! Several workspace components need a small, stable, allocation-free
//! 64-bit fingerprint: the serving tier tags tenants in flight records,
//! and the bench harness fingerprints weight bits and datapath outputs
//! for cross-host byte-identity checks. They all use FNV-1a with the
//! standard 64-bit offset basis and prime; this module is the single
//! implementation so the constants cannot drift apart.
//!
//! FNV-1a is *not* cryptographic — it is used only as a cheap stable
//! tag/fingerprint.

/// The 64-bit FNV offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The 64-bit FNV prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a hasher over arbitrary byte/word feeds.
///
/// # Example
///
/// ```
/// use telemetry::fnv::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write(b"tenant-a");
/// assert_eq!(h.finish(), telemetry::fnv::fnv1a(b"tenant-a"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Starts a hash at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Feeds bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one 16-bit word, little-endian byte order.
    pub fn write_u16(&mut self, v: u16) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds one 32-bit word, little-endian byte order.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference vectors from the FNV specification (Noll's tables).
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));

        let mut w = Fnv1a::new();
        w.write_u32(0x0403_0201);
        w.write_u16(0x0605);
        assert_eq!(w.finish(), fnv1a(&[1, 2, 3, 4, 5, 6]));
    }

    #[test]
    fn distinct_inputs_produce_distinct_tags() {
        assert_ne!(fnv1a(b"tenant-a"), fnv1a(b"tenant-b"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }
}
