//! Unified telemetry for the RP-BCM hot paths: counters, gauges and span
//! timers behind one global registry, with a structured JSON report.
//!
//! CirCNN and E-RNN motivate their FPGA designs with per-stage
//! FFT/eMAC/IFFT breakdowns; this crate makes the same breakdowns
//! first-class and machine-readable for the software reproduction. Every
//! hot path in the workspace (FFT plan cache, spectral weight cache,
//! `tensor::parallel` workers, hwsim per-phase cycles, skip-index
//! effectiveness) reports through probes defined here, and the `exp_*`
//! benchmark binaries dump the registry as `results/TELEMETRY_*.json`.
//!
//! # Gating: a cargo feature *and* an environment variable
//!
//! Two independent switches keep instrumented builds bit-exact and
//! disabled builds free:
//!
//! - **Compile time** — the `capture` cargo feature (on by default).
//!   Without it every probe is a zero-sized type whose methods are empty
//!   `#[inline(always)]` bodies: no atomics, no branches, no registry.
//! - **Run time** — the `RPBCM_TELEMETRY` environment variable (read once
//!   per process; `1`, `true` or `on` enable). While disabled, a probe
//!   call is a single relaxed atomic load and an untaken branch, and the
//!   registry stays empty. [`set_enabled`] overrides the variable for
//!   tests and tools.
//!
//! All `RPBCM_*` environment variables across the workspace (including
//! `RPBCM_THREADS` in `tensor` and the `RPBCM_SERVE_*` family in `serve`)
//! are parsed through the [`mod@env`] module: malformed values fall back to
//! the documented default with a one-line stderr warning instead of
//! panicking or silently misbehaving.
//!
//! Telemetry only ever *counts* — it never changes an algorithm's
//! arithmetic, allocation pattern or iteration order — so outputs are
//! bit-identical whether it is enabled, disabled, or compiled out. The
//! hwsim property tests lock this in.
//!
//! # Probes
//!
//! Probes are `const`-constructible statics, so instrumentation sites pay
//! no registration cost until first use:
//!
//! ```
//! static HITS: telemetry::Counter = telemetry::Counter::new("demo.cache.hits");
//!
//! telemetry::set_enabled(true);
//! HITS.inc();
//! HITS.add(2);
//! // With the `capture` feature off, probes are no-ops and `enabled()`
//! // is always false — so guard assertions on it in portable code.
//! if telemetry::enabled() {
//!     assert_eq!(HITS.value(), 3);
//! }
//! # telemetry::clear_override();
//! ```
//!
//! Dynamic names (for per-layer or per-experiment metrics such as the
//! accounting, training and power reports) go through [`record_counter`],
//! [`record_gauge`], [`record_timer_ns`] and [`record_histogram`].
//!
//! # Histograms
//!
//! Where a [`Timer`] keeps only totals, a [`Histogram`] keeps a lock-free
//! log₂-bucketed distribution (65 power-of-two buckets plus exact
//! count/sum/max), so reports can show p50/p90/p99 tail latencies of the
//! FFT, eMAC and worker hot paths. [`Histogram::span`] measures a scope
//! in nanoseconds just like [`Timer::span`].
//!
//! # Reports
//!
//! [`snapshot`] captures every registered metric; [`report_json`] renders
//! the snapshot as a stable JSON document (hand-rolled: the workspace is
//! std-only; keys sorted, so identical registry contents yield
//! byte-identical reports) and [`write_report`] writes it to disk:
//!
//! ```json
//! {
//!   "enabled": true,
//!   "counters": { "fft.plan_cache.hits": 4096 },
//!   "gauges": { "tensor.parallel.max_partition_imbalance": 1.0 },
//!   "timers": { "tensor.parallel.scope_wall": { "count": 32, "total_ns": 180000 } },
//!   "histograms": { "fft.forward_ns": { "count": 4096, "sum": 812000,
//!     "max": 4096, "p50": 127, "p90": 255, "p99": 511 } }
//! }
//! ```
//!
//! # Chrome-trace export
//!
//! The [`trace_span`] / [`trace_cycle_process`] / [`trace_complete_cycles`]
//! family buffers events into bounded per-thread rings and renders them as
//! a Chrome trace-event JSON document ([`trace_json`]) loadable in
//! Perfetto: wall-clock spans for the software hot paths on one process
//! track, and `hwsim::timeline`'s modeled FFT/eMAC/IFFT pipeline schedule
//! replayed as a second clock domain (1 cycle = 1 µs). Enabled by setting
//! `RPBCM_TRACE=<path>`; the `exp_*` binaries call [`flush_trace`] on exit
//! to write the file.
//!
//! # Flight recorder
//!
//! The [`mod@flight`] module holds per-request lifecycle trace records
//! for the serving tier: a fixed-size seven-stamp
//! [`flight::FlightRecord`] per admitted request, pushed into bounded
//! lock-free per-shard [`flight::FlightRing`]s, rendered as JSON or as
//! a Perfetto-openable Chrome trace for the SLO flight-recorder dump.

#![deny(missing_docs)]

pub mod env;
pub mod fnv;

#[cfg(feature = "capture")]
pub mod flight;
#[cfg(feature = "capture")]
mod probe;
#[cfg(feature = "capture")]
mod registry;
#[cfg(feature = "capture")]
mod report;
#[cfg(feature = "capture")]
mod trace;

#[cfg(feature = "capture")]
pub use probe::{
    Counter, Gauge, Histogram, HistogramSpan, OwnedCounter, OwnedGauge, OwnedHistogram, Span, Timer,
};
#[cfg(feature = "capture")]
pub use registry::{
    clear_override, enabled, record_counter, record_gauge, record_histogram, record_timer_ns,
    reset, set_enabled,
};
#[cfg(feature = "capture")]
pub use report::{report_json, snapshot, write_report, HistogramStat, Snapshot, TimerStat};
#[cfg(feature = "capture")]
pub use trace::{
    clear_trace_override, flush_trace, reset_trace, set_trace_enabled, trace_complete_cycles,
    trace_cycle_process, trace_dropped, trace_enabled, trace_json, trace_span, write_trace,
    TraceSpan,
};

#[cfg(not(feature = "capture"))]
mod noop;

#[cfg(not(feature = "capture"))]
pub use noop::flight;
#[cfg(not(feature = "capture"))]
pub use noop::{
    clear_override, clear_trace_override, enabled, flush_trace, record_counter, record_gauge,
    record_histogram, record_timer_ns, report_json, reset, reset_trace, set_enabled,
    set_trace_enabled, snapshot, trace_complete_cycles, trace_cycle_process, trace_dropped,
    trace_enabled, trace_json, trace_span, write_report, write_trace, Counter, Gauge, Histogram,
    HistogramSpan, HistogramStat, OwnedCounter, OwnedGauge, OwnedHistogram, Snapshot, Span, Timer,
    TimerStat, TraceSpan,
};
