//! The compiled-out probe set: every type is zero-sized and every method
//! an empty `#[inline(always)]` body, so a build without the `capture`
//! feature carries no telemetry code at all.

use std::collections::BTreeMap;

/// A monotonically increasing event counter (compiled-out variant).
pub struct Counter;

impl Counter {
    /// Creates a probe for the metric `name` (usable in `static` items).
    pub const fn new(_name: &'static str) -> Self {
        Counter
    }

    /// Adds `n` to the counter (compiled out).
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Adds one to the counter (compiled out).
    #[inline(always)]
    pub fn inc(&self) {}

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn value(&self) -> u64 {
        0
    }
}

/// A last-written-value metric (compiled-out variant).
pub struct Gauge;

impl Gauge {
    /// Creates a probe for the metric `name` (usable in `static` items).
    pub const fn new(_name: &'static str) -> Self {
        Gauge
    }

    /// Sets the gauge (compiled out).
    #[inline(always)]
    pub fn set(&self, _v: f64) {}

    /// Raises the gauge (compiled out).
    #[inline(always)]
    pub fn set_max(&self, _v: f64) {}

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn value(&self) -> f64 {
        0.0
    }
}

/// An accumulating duration metric (compiled-out variant).
pub struct Timer;

impl Timer {
    /// Creates a probe for the metric `name` (usable in `static` items).
    pub const fn new(_name: &'static str) -> Self {
        Timer
    }

    /// Records one measurement (compiled out).
    #[inline(always)]
    pub fn add_ns(&self, _ns: u64) {}

    /// Returns an inert guard; no clock is read.
    #[inline(always)]
    pub fn span(&self) -> Span {
        Span
    }

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn total_ns(&self) -> u64 {
        0
    }

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }
}

/// Inert guard returned by [`Timer::span`] in a compiled-out build.
pub struct Span;

/// A log₂-bucketed distribution (compiled-out variant).
pub struct Histogram;

impl Histogram {
    /// Creates a probe for the metric `name` (usable in `static` items).
    pub const fn new(_name: &'static str) -> Self {
        Histogram
    }

    /// Records one observation (compiled out).
    #[inline(always)]
    pub fn record(&self, _v: u64) {}

    /// Returns an inert guard; no clock is read.
    #[inline(always)]
    pub fn span(&self) -> HistogramSpan {
        HistogramSpan
    }

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn sum(&self) -> u64 {
        0
    }

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn max(&self) -> u64 {
        0
    }
}

/// Inert guard returned by [`Histogram::span`] in a compiled-out build.
pub struct HistogramSpan;

/// A counter with a runtime-constructed name (compiled-out variant).
pub struct OwnedCounter;

impl OwnedCounter {
    /// Creates a probe for the metric `name` (compiled out).
    pub fn new(_name: &str) -> Self {
        OwnedCounter
    }

    /// Adds `n` to the counter (compiled out).
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Adds one to the counter (compiled out).
    #[inline(always)]
    pub fn inc(&self) {}

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn value(&self) -> u64 {
        0
    }
}

/// A gauge with a runtime-constructed name (compiled-out variant).
pub struct OwnedGauge;

impl OwnedGauge {
    /// Creates a probe for the metric `name` (compiled out).
    pub fn new(_name: &str) -> Self {
        OwnedGauge
    }

    /// Sets the gauge (compiled out).
    #[inline(always)]
    pub fn set(&self, _v: f64) {}

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn value(&self) -> f64 {
        0.0
    }
}

/// A histogram with a runtime-constructed name (compiled-out variant).
pub struct OwnedHistogram;

impl OwnedHistogram {
    /// Creates a probe for the metric `name` (compiled out).
    pub fn new(_name: &str) -> Self {
        OwnedHistogram
    }

    /// Records one observation (compiled out).
    #[inline(always)]
    pub fn record(&self, _v: u64) {}

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn sum(&self) -> u64 {
        0
    }
}

/// Always `false` in a compiled-out build.
#[inline(always)]
pub fn enabled() -> bool {
    false
}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn set_enabled(_on: bool) {}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn clear_override() {}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn reset() {}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn record_counter(_name: &str, _delta: u64) {}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn record_gauge(_name: &str, _value: f64) {}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn record_timer_ns(_name: &str, _ns: u64) {}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn record_histogram(_name: &str, _value: u64) {}

/// Always `false` in a compiled-out build.
#[inline(always)]
pub fn trace_enabled() -> bool {
    false
}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn set_trace_enabled(_on: bool) {}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn clear_trace_override() {}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn reset_trace() {}

/// Inert guard returned by [`trace_span`] in a compiled-out build.
pub struct TraceSpan;

/// Returns an inert guard; no clock is read.
#[inline(always)]
pub fn trace_span(_name: &'static str, _cat: &'static str) -> TraceSpan {
    TraceSpan
}

/// Always zero in a compiled-out build.
#[inline(always)]
pub fn trace_cycle_process(_label: &str) -> u32 {
    0
}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn trace_complete_cycles(_pid: u32, _tid: u32, _name: &'static str, _start: u64, _dur: u64) {}

/// Always zero in a compiled-out build.
#[inline(always)]
pub fn trace_dropped() -> u64 {
    0
}

/// The empty trace document in a compiled-out build.
pub fn trace_json() -> String {
    "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ns\"}\n".to_string()
}

/// Writes the empty trace to `path` (so downstream tooling always finds
/// a syntactically valid artifact).
pub fn write_trace<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<()> {
    std::fs::write(path, trace_json())
}

/// Never writes anything in a compiled-out build.
pub fn flush_trace() -> std::io::Result<Option<std::path::PathBuf>> {
    Ok(None)
}

/// One timer's aggregated statistics (compiled-out variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimerStat {
    /// Number of recordings (always zero).
    pub count: u64,
    /// Total recorded nanoseconds (always zero).
    pub total_ns: u64,
}

/// One histogram's aggregated statistics (compiled-out variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramStat {
    /// Number of observations (always zero).
    pub count: u64,
    /// Sum of observations (always zero).
    pub sum: u64,
    /// Largest observation (always zero).
    pub max: u64,
    /// Estimated 50th percentile (always zero).
    pub p50: u64,
    /// Estimated 90th percentile (always zero).
    pub p90: u64,
    /// Estimated 99th percentile (always zero).
    pub p99: u64,
}

/// A point-in-time copy of the (empty) registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Always `false` in a compiled-out build.
    pub enabled: bool,
    /// Always empty in a compiled-out build.
    pub counters: BTreeMap<String, u64>,
    /// Always empty in a compiled-out build.
    pub gauges: BTreeMap<String, f64>,
    /// Always empty in a compiled-out build.
    pub timers: BTreeMap<String, TimerStat>,
    /// Always empty in a compiled-out build.
    pub histograms: BTreeMap<String, HistogramStat>,
}

impl Snapshot {
    /// Renders the empty snapshot as JSON.
    pub fn to_json(&self) -> String {
        "{\n  \"enabled\": false,\n  \"counters\": {},\n  \"gauges\": {},\n  \
         \"timers\": {},\n  \"histograms\": {}\n}"
            .to_string()
    }
}

/// An empty snapshot in a compiled-out build.
pub fn snapshot() -> Snapshot {
    Snapshot::default()
}

/// The empty-registry JSON document in a compiled-out build.
pub fn report_json() -> String {
    snapshot().to_json()
}

/// Writes the empty report to `path` (so downstream tooling always finds
/// a syntactically valid artifact).
pub fn write_report<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<()> {
    std::fs::write(path, report_json() + "\n")
}

/// Flight recorder (compiled-out variant): the record type keeps its
/// fields (request-path code embeds and stamps it unconditionally — the
/// stamping sites themselves are gated on [`enabled`], which is always
/// `false` here), while the ring and renderers are inert.
pub mod flight {
    /// Number of lifecycle stamps in a record.
    pub const STAGES: usize = 7;

    /// Stamp index: binary/JSON frame decoded into a request.
    pub const STAMP_PARSE: usize = 0;
    /// Stamp index: request validated and admitted (quota acquired).
    pub const STAMP_ADMIT: usize = 1;
    /// Stamp index: request enqueued into the shard batcher.
    pub const STAMP_ENQUEUE: usize = 2;
    /// Stamp index: the batch containing the request was formed.
    pub const STAMP_BATCH: usize = 3;
    /// Stamp index: engine execution of the batch began.
    pub const STAMP_INFER_START: usize = 4;
    /// Stamp index: engine execution of the batch finished.
    pub const STAMP_INFER_END: usize = 5;
    /// Stamp index: the reply bytes reached the socket (or embedder).
    pub const STAMP_FLUSH: usize = 6;

    /// Stamp names, indexed by the `STAMP_*` constants.
    pub const STAGE_NAMES: [&str; STAGES] = [
        "parse",
        "admit",
        "enqueue",
        "batch_formed",
        "infer_start",
        "infer_end",
        "reply_flushed",
    ];

    /// Names of the six intervals between consecutive stamps.
    pub const INTERVAL_NAMES: [&str; STAGES - 1] = [
        "admit",
        "enqueue",
        "batch_wait",
        "dispatch",
        "infer",
        "reply",
    ];

    /// One request's fixed-size lifecycle trace (plain data; identical
    /// layout to the capture build so request-path code compiles
    /// unchanged).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct FlightRecord {
        /// Process-unique id allocated at admission (always 0 here).
        pub trace_id: u64,
        /// Index of the shard that owned the connection.
        pub shard: u32,
        /// Size of the batch the request was executed in.
        pub batch: u32,
        /// FNV-1a hash of the tenant name (`0` = anonymous).
        pub tenant_hash: u64,
        /// Version of the model entry resolved at admission.
        pub model_version: u64,
        /// Lifecycle ticks; `0` = stamp missing.
        pub stamps_ns: [u64; STAGES],
    }

    impl FlightRecord {
        /// `true` when every stamp landed and ticks are non-decreasing.
        pub fn is_complete(&self) -> bool {
            self.stamps_ns[0] != 0 && self.stamps_ns.windows(2).all(|w| w[0] <= w[1] && w[1] != 0)
        }

        /// Duration of interval `i` (see [`INTERVAL_NAMES`]), saturating.
        pub fn interval_ns(&self, i: usize) -> u64 {
            self.stamps_ns[i + 1].saturating_sub(self.stamps_ns[i])
        }

        /// Total parse→reply-flushed duration, saturating.
        pub fn total_ns(&self) -> u64 {
            self.stamps_ns[STAMP_FLUSH].saturating_sub(self.stamps_ns[STAMP_PARSE])
        }

        /// Renders the record as one flat JSON object.
        pub fn to_json(&self) -> String {
            let mut s = format!(
                "{{\"trace_id\":{},\"shard\":{},\"batch\":{},\"tenant_hash\":{},\
                 \"model_version\":{}",
                self.trace_id, self.shard, self.batch, self.tenant_hash, self.model_version
            );
            for (name, ns) in STAGE_NAMES.iter().zip(self.stamps_ns) {
                s.push_str(&format!(",\"{name}_ns\":{ns}"));
            }
            s.push('}');
            s
        }
    }

    /// Always zero in a compiled-out build (`0` = "no stamp").
    #[inline(always)]
    pub fn now_ns() -> u64 {
        0
    }

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn next_trace_id() -> u64 {
        0
    }

    /// A bounded ring of flight records (compiled-out variant: holds
    /// nothing, allocates nothing).
    pub struct FlightRing;

    impl FlightRing {
        /// Creates an inert ring; `capacity` is ignored.
        pub fn new(_capacity: usize) -> FlightRing {
            FlightRing
        }

        /// Always zero in a compiled-out build.
        #[inline(always)]
        pub fn capacity(&self) -> usize {
            0
        }

        /// Always zero in a compiled-out build.
        #[inline(always)]
        pub fn pushed(&self) -> u64 {
            0
        }

        /// Always zero in a compiled-out build.
        #[inline(always)]
        pub fn dropped(&self) -> u64 {
            0
        }

        /// No-op in a compiled-out build.
        #[inline(always)]
        pub fn push(&self, _rec: &FlightRecord) {}

        /// Always empty in a compiled-out build.
        #[inline(always)]
        pub fn snapshot(&self) -> Vec<FlightRecord> {
            Vec::new()
        }
    }

    /// The empty record array in a compiled-out build.
    pub fn records_json(_records: &[FlightRecord]) -> String {
        "[]".to_string()
    }

    /// The empty (but valid) trace document in a compiled-out build.
    pub fn trace_json(_records: &[FlightRecord]) -> String {
        "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ns\"}\n".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_are_zero_sized() {
        assert_eq!(std::mem::size_of::<Counter>(), 0);
        assert_eq!(std::mem::size_of::<Gauge>(), 0);
        assert_eq!(std::mem::size_of::<Timer>(), 0);
        assert_eq!(std::mem::size_of::<Span>(), 0);
        assert_eq!(std::mem::size_of::<Histogram>(), 0);
        assert_eq!(std::mem::size_of::<HistogramSpan>(), 0);
        assert_eq!(std::mem::size_of::<TraceSpan>(), 0);
        assert_eq!(std::mem::size_of::<OwnedCounter>(), 0);
        assert_eq!(std::mem::size_of::<OwnedGauge>(), 0);
        assert_eq!(std::mem::size_of::<OwnedHistogram>(), 0);
        assert_eq!(std::mem::size_of::<flight::FlightRing>(), 0);
    }

    #[test]
    fn flight_recorder_is_inert() {
        let ring = flight::FlightRing::new(64);
        let rec = flight::FlightRecord {
            trace_id: 1,
            stamps_ns: [1, 2, 3, 4, 5, 6, 7],
            ..Default::default()
        };
        assert!(rec.is_complete());
        ring.push(&rec);
        assert_eq!(ring.capacity(), 0);
        assert_eq!(ring.pushed(), 0);
        assert!(ring.snapshot().is_empty());
        assert_eq!(flight::next_trace_id(), 0);
        assert_eq!(flight::now_ns(), 0);
        assert_eq!(flight::records_json(&[rec]), "[]");
        assert!(flight::trace_json(&[rec]).contains("\"traceEvents\""));
    }

    #[test]
    fn everything_is_inert() {
        static C: Counter = Counter::new("noop.counter");
        C.add(5);
        assert_eq!(C.value(), 0);
        static H: Histogram = Histogram::new("noop.hist");
        H.record(7);
        assert_eq!(H.count(), 0);
        set_enabled(true);
        assert!(!enabled());
        set_trace_enabled(true);
        assert!(!trace_enabled());
        record_counter("noop.dyn", 1);
        record_histogram("noop.dyn.hist", 1);
        assert!(snapshot().counters.is_empty());
        assert!(snapshot().histograms.is_empty());
        assert!(report_json().contains("\"enabled\": false"));
        assert!(report_json().contains("\"histograms\": {}"));
        assert!(trace_json().contains("\"traceEvents\""));
    }
}
