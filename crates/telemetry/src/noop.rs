//! The compiled-out probe set: every type is zero-sized and every method
//! an empty `#[inline(always)]` body, so a build without the `capture`
//! feature carries no telemetry code at all.

use std::collections::BTreeMap;

/// A monotonically increasing event counter (compiled-out variant).
pub struct Counter;

impl Counter {
    /// Creates a probe for the metric `name` (usable in `static` items).
    pub const fn new(_name: &'static str) -> Self {
        Counter
    }

    /// Adds `n` to the counter (compiled out).
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Adds one to the counter (compiled out).
    #[inline(always)]
    pub fn inc(&self) {}

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn value(&self) -> u64 {
        0
    }
}

/// A last-written-value metric (compiled-out variant).
pub struct Gauge;

impl Gauge {
    /// Creates a probe for the metric `name` (usable in `static` items).
    pub const fn new(_name: &'static str) -> Self {
        Gauge
    }

    /// Sets the gauge (compiled out).
    #[inline(always)]
    pub fn set(&self, _v: f64) {}

    /// Raises the gauge (compiled out).
    #[inline(always)]
    pub fn set_max(&self, _v: f64) {}

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn value(&self) -> f64 {
        0.0
    }
}

/// An accumulating duration metric (compiled-out variant).
pub struct Timer;

impl Timer {
    /// Creates a probe for the metric `name` (usable in `static` items).
    pub const fn new(_name: &'static str) -> Self {
        Timer
    }

    /// Records one measurement (compiled out).
    #[inline(always)]
    pub fn add_ns(&self, _ns: u64) {}

    /// Returns an inert guard; no clock is read.
    #[inline(always)]
    pub fn span(&self) -> Span {
        Span
    }

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn total_ns(&self) -> u64 {
        0
    }

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }
}

/// Inert guard returned by [`Timer::span`] in a compiled-out build.
pub struct Span;

/// A log₂-bucketed distribution (compiled-out variant).
pub struct Histogram;

impl Histogram {
    /// Creates a probe for the metric `name` (usable in `static` items).
    pub const fn new(_name: &'static str) -> Self {
        Histogram
    }

    /// Records one observation (compiled out).
    #[inline(always)]
    pub fn record(&self, _v: u64) {}

    /// Returns an inert guard; no clock is read.
    #[inline(always)]
    pub fn span(&self) -> HistogramSpan {
        HistogramSpan
    }

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn sum(&self) -> u64 {
        0
    }

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn max(&self) -> u64 {
        0
    }
}

/// Inert guard returned by [`Histogram::span`] in a compiled-out build.
pub struct HistogramSpan;

/// A counter with a runtime-constructed name (compiled-out variant).
pub struct OwnedCounter;

impl OwnedCounter {
    /// Creates a probe for the metric `name` (compiled out).
    pub fn new(_name: &str) -> Self {
        OwnedCounter
    }

    /// Adds `n` to the counter (compiled out).
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Adds one to the counter (compiled out).
    #[inline(always)]
    pub fn inc(&self) {}

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn value(&self) -> u64 {
        0
    }
}

/// A gauge with a runtime-constructed name (compiled-out variant).
pub struct OwnedGauge;

impl OwnedGauge {
    /// Creates a probe for the metric `name` (compiled out).
    pub fn new(_name: &str) -> Self {
        OwnedGauge
    }

    /// Sets the gauge (compiled out).
    #[inline(always)]
    pub fn set(&self, _v: f64) {}

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn value(&self) -> f64 {
        0.0
    }
}

/// A histogram with a runtime-constructed name (compiled-out variant).
pub struct OwnedHistogram;

impl OwnedHistogram {
    /// Creates a probe for the metric `name` (compiled out).
    pub fn new(_name: &str) -> Self {
        OwnedHistogram
    }

    /// Records one observation (compiled out).
    #[inline(always)]
    pub fn record(&self, _v: u64) {}

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }

    /// Always zero in a compiled-out build.
    #[inline(always)]
    pub fn sum(&self) -> u64 {
        0
    }
}

/// Always `false` in a compiled-out build.
#[inline(always)]
pub fn enabled() -> bool {
    false
}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn set_enabled(_on: bool) {}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn clear_override() {}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn reset() {}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn record_counter(_name: &str, _delta: u64) {}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn record_gauge(_name: &str, _value: f64) {}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn record_timer_ns(_name: &str, _ns: u64) {}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn record_histogram(_name: &str, _value: u64) {}

/// Always `false` in a compiled-out build.
#[inline(always)]
pub fn trace_enabled() -> bool {
    false
}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn set_trace_enabled(_on: bool) {}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn clear_trace_override() {}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn reset_trace() {}

/// Inert guard returned by [`trace_span`] in a compiled-out build.
pub struct TraceSpan;

/// Returns an inert guard; no clock is read.
#[inline(always)]
pub fn trace_span(_name: &'static str, _cat: &'static str) -> TraceSpan {
    TraceSpan
}

/// Always zero in a compiled-out build.
#[inline(always)]
pub fn trace_cycle_process(_label: &str) -> u32 {
    0
}

/// No-op in a compiled-out build.
#[inline(always)]
pub fn trace_complete_cycles(_pid: u32, _tid: u32, _name: &'static str, _start: u64, _dur: u64) {}

/// Always zero in a compiled-out build.
#[inline(always)]
pub fn trace_dropped() -> u64 {
    0
}

/// The empty trace document in a compiled-out build.
pub fn trace_json() -> String {
    "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ns\"}\n".to_string()
}

/// Writes the empty trace to `path` (so downstream tooling always finds
/// a syntactically valid artifact).
pub fn write_trace<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<()> {
    std::fs::write(path, trace_json())
}

/// Never writes anything in a compiled-out build.
pub fn flush_trace() -> std::io::Result<Option<std::path::PathBuf>> {
    Ok(None)
}

/// One timer's aggregated statistics (compiled-out variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimerStat {
    /// Number of recordings (always zero).
    pub count: u64,
    /// Total recorded nanoseconds (always zero).
    pub total_ns: u64,
}

/// One histogram's aggregated statistics (compiled-out variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramStat {
    /// Number of observations (always zero).
    pub count: u64,
    /// Sum of observations (always zero).
    pub sum: u64,
    /// Largest observation (always zero).
    pub max: u64,
    /// Estimated 50th percentile (always zero).
    pub p50: u64,
    /// Estimated 90th percentile (always zero).
    pub p90: u64,
    /// Estimated 99th percentile (always zero).
    pub p99: u64,
}

/// A point-in-time copy of the (empty) registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Always `false` in a compiled-out build.
    pub enabled: bool,
    /// Always empty in a compiled-out build.
    pub counters: BTreeMap<String, u64>,
    /// Always empty in a compiled-out build.
    pub gauges: BTreeMap<String, f64>,
    /// Always empty in a compiled-out build.
    pub timers: BTreeMap<String, TimerStat>,
    /// Always empty in a compiled-out build.
    pub histograms: BTreeMap<String, HistogramStat>,
}

impl Snapshot {
    /// Renders the empty snapshot as JSON.
    pub fn to_json(&self) -> String {
        "{\n  \"enabled\": false,\n  \"counters\": {},\n  \"gauges\": {},\n  \
         \"timers\": {},\n  \"histograms\": {}\n}"
            .to_string()
    }
}

/// An empty snapshot in a compiled-out build.
pub fn snapshot() -> Snapshot {
    Snapshot::default()
}

/// The empty-registry JSON document in a compiled-out build.
pub fn report_json() -> String {
    snapshot().to_json()
}

/// Writes the empty report to `path` (so downstream tooling always finds
/// a syntactically valid artifact).
pub fn write_report<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<()> {
    std::fs::write(path, report_json() + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_are_zero_sized() {
        assert_eq!(std::mem::size_of::<Counter>(), 0);
        assert_eq!(std::mem::size_of::<Gauge>(), 0);
        assert_eq!(std::mem::size_of::<Timer>(), 0);
        assert_eq!(std::mem::size_of::<Span>(), 0);
        assert_eq!(std::mem::size_of::<Histogram>(), 0);
        assert_eq!(std::mem::size_of::<HistogramSpan>(), 0);
        assert_eq!(std::mem::size_of::<TraceSpan>(), 0);
        assert_eq!(std::mem::size_of::<OwnedCounter>(), 0);
        assert_eq!(std::mem::size_of::<OwnedGauge>(), 0);
        assert_eq!(std::mem::size_of::<OwnedHistogram>(), 0);
    }

    #[test]
    fn everything_is_inert() {
        static C: Counter = Counter::new("noop.counter");
        C.add(5);
        assert_eq!(C.value(), 0);
        static H: Histogram = Histogram::new("noop.hist");
        H.record(7);
        assert_eq!(H.count(), 0);
        set_enabled(true);
        assert!(!enabled());
        set_trace_enabled(true);
        assert!(!trace_enabled());
        record_counter("noop.dyn", 1);
        record_histogram("noop.dyn.hist", 1);
        assert!(snapshot().counters.is_empty());
        assert!(snapshot().histograms.is_empty());
        assert!(report_json().contains("\"enabled\": false"));
        assert!(report_json().contains("\"histograms\": {}"));
        assert!(trace_json().contains("\"traceEvents\""));
    }
}
