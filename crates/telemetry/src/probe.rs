//! Statically named probes: the `const`-constructible handles that
//! instrumentation sites embed as `static`s.

use crate::registry::{enabled, registry, TimerCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A monotonically increasing event counter.
///
/// The registry handle is resolved lazily on first use and cached, so the
/// steady-state cost of [`Counter::add`] is one enabled-check plus one
/// relaxed `fetch_add` — and nothing at all while telemetry is disabled.
pub struct Counter {
    name: &'static str,
    cell: OnceLock<Arc<AtomicU64>>,
}

impl Counter {
    /// Creates a probe for the metric `name` (usable in `static` items).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &Arc<AtomicU64> {
        self.cell.get_or_init(|| registry().counter(self.name))
    }

    /// Adds `n` to the counter (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.cell().fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter (no-op while telemetry is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The counter's current value (registers the metric if needed).
    pub fn value(&self) -> u64 {
        self.cell().load(Ordering::Relaxed)
    }
}

/// A last-written-value metric with a high-water-mark variant.
pub struct Gauge {
    name: &'static str,
    cell: OnceLock<Arc<AtomicU64>>,
}

impl Gauge {
    /// Creates a probe for the metric `name` (usable in `static` items).
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &Arc<AtomicU64> {
        self.cell.get_or_init(|| registry().gauge(self.name))
    }

    /// Sets the gauge (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.cell().store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if `v` exceeds the stored value (no-op
    /// while telemetry is disabled).
    #[inline]
    pub fn set_max(&self, v: f64) {
        if enabled() {
            let cell = self.cell();
            let mut cur = cell.load(Ordering::Relaxed);
            while v > f64::from_bits(cur) {
                match cell.compare_exchange_weak(
                    cur,
                    v.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// The gauge's current value (registers the metric if needed).
    pub fn value(&self) -> f64 {
        f64::from_bits(self.cell().load(Ordering::Relaxed))
    }
}

/// An accumulating duration metric: total nanoseconds plus a recording
/// count, fed either directly ([`Timer::add_ns`]) or by scoped
/// [`Span`] guards.
pub struct Timer {
    name: &'static str,
    cell: OnceLock<Arc<TimerCell>>,
}

impl Timer {
    /// Creates a probe for the metric `name` (usable in `static` items).
    pub const fn new(name: &'static str) -> Self {
        Timer {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &Arc<TimerCell> {
        self.cell.get_or_init(|| registry().timer(self.name))
    }

    /// Records one measurement of `ns` nanoseconds (no-op while telemetry
    /// is disabled).
    #[inline]
    pub fn add_ns(&self, ns: u64) {
        if enabled() {
            let cell = self.cell();
            cell.ns.fetch_add(ns, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Starts a scoped measurement; the elapsed time is recorded when the
    /// returned guard drops. While telemetry is disabled the guard is
    /// inert and no clock is read.
    #[inline]
    pub fn span(&self) -> Span<'_> {
        Span {
            inner: enabled().then(|| (self, Instant::now())),
        }
    }

    /// Total recorded nanoseconds (registers the metric if needed).
    pub fn total_ns(&self) -> u64 {
        self.cell().ns.load(Ordering::Relaxed)
    }

    /// Number of recordings (registers the metric if needed).
    pub fn count(&self) -> u64 {
        self.cell().count.load(Ordering::Relaxed)
    }
}

/// Guard returned by [`Timer::span`]; records the elapsed time into its
/// timer on drop.
pub struct Span<'a> {
    inner: Option<(&'a Timer, Instant)>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((timer, start)) = self.inner.take() {
            timer.add_ns(start.elapsed().as_nanos() as u64);
        }
    }
}
