//! Statically named probes: the `const`-constructible handles that
//! instrumentation sites embed as `static`s.

use crate::registry::{
    enabled, gauge_bits, gauge_value, registry, HistCell, TimerCell, GAUGE_UNWRITTEN,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A monotonically increasing event counter.
///
/// The registry handle is resolved lazily on first use and cached, so the
/// steady-state cost of [`Counter::add`] is one enabled-check plus one
/// relaxed `fetch_add` — and nothing at all while telemetry is disabled.
pub struct Counter {
    name: &'static str,
    cell: OnceLock<Arc<AtomicU64>>,
}

impl Counter {
    /// Creates a probe for the metric `name` (usable in `static` items).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &Arc<AtomicU64> {
        self.cell.get_or_init(|| registry().counter(self.name))
    }

    /// Adds `n` to the counter (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.cell().fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter (no-op while telemetry is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The counter's current value (registers the metric if needed).
    pub fn value(&self) -> u64 {
        self.cell().load(Ordering::Relaxed)
    }
}

/// A last-written-value metric with a high-water-mark variant.
pub struct Gauge {
    name: &'static str,
    cell: OnceLock<Arc<AtomicU64>>,
}

impl Gauge {
    /// Creates a probe for the metric `name` (usable in `static` items).
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &Arc<AtomicU64> {
        self.cell.get_or_init(|| registry().gauge(self.name))
    }

    /// Sets the gauge (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.cell().store(gauge_bits(v), Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if `v` exceeds the stored value, or records
    /// `v` unconditionally if the gauge has never been written — so the
    /// first observed maximum sticks even when it is negative. NaN inputs
    /// are ignored. No-op while telemetry is disabled.
    #[inline]
    pub fn set_max(&self, v: f64) {
        if enabled() && !v.is_nan() {
            let cell = self.cell();
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let stored = f64::from_bits(cur);
                // `stored.is_nan()` also covers the unwritten sentinel.
                if !(cur == GAUGE_UNWRITTEN || stored.is_nan() || v > stored) {
                    break;
                }
                match cell.compare_exchange_weak(
                    cur,
                    v.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// The gauge's current value: the last value written, or `0.0` if the
    /// gauge has never been written (registers the metric if needed).
    pub fn value(&self) -> f64 {
        gauge_value(self.cell().load(Ordering::Relaxed))
    }
}

/// An accumulating duration metric: total nanoseconds plus a recording
/// count, fed either directly ([`Timer::add_ns`]) or by scoped
/// [`Span`] guards.
pub struct Timer {
    name: &'static str,
    cell: OnceLock<Arc<TimerCell>>,
}

impl Timer {
    /// Creates a probe for the metric `name` (usable in `static` items).
    pub const fn new(name: &'static str) -> Self {
        Timer {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &Arc<TimerCell> {
        self.cell.get_or_init(|| registry().timer(self.name))
    }

    /// Records one measurement of `ns` nanoseconds (no-op while telemetry
    /// is disabled).
    #[inline]
    pub fn add_ns(&self, ns: u64) {
        if enabled() {
            let cell = self.cell();
            cell.ns.fetch_add(ns, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Starts a scoped measurement; the elapsed time is recorded when the
    /// returned guard drops. While telemetry is disabled the guard is
    /// inert and no clock is read.
    #[inline]
    pub fn span(&self) -> Span<'_> {
        Span {
            inner: enabled().then(|| (self, Instant::now())),
        }
    }

    /// Total recorded nanoseconds (registers the metric if needed).
    pub fn total_ns(&self) -> u64 {
        self.cell().ns.load(Ordering::Relaxed)
    }

    /// Number of recordings (registers the metric if needed).
    pub fn count(&self) -> u64 {
        self.cell().count.load(Ordering::Relaxed)
    }
}

/// Guard returned by [`Timer::span`]; records the elapsed time into its
/// timer on drop.
pub struct Span<'a> {
    inner: Option<(&'a Timer, Instant)>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((timer, start)) = self.inner.take() {
            timer.add_ns(start.elapsed().as_nanos() as u64);
        }
    }
}

/// A lock-free log₂-bucketed latency/size distribution.
///
/// Where a [`Timer`] keeps only a total and a count, a `Histogram` keeps
/// 65 power-of-two buckets plus exact count/sum/max, so the report can
/// estimate p50/p90/p99 tail latencies. Recording is a handful of relaxed
/// `fetch_add`s — no locks — so concurrent `tensor::parallel` workers
/// merge losslessly. Same dual gating as every other probe: compiled out
/// without the `capture` feature, a single untaken branch while
/// `RPBCM_TELEMETRY` is unset.
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<Arc<HistCell>>,
}

impl Histogram {
    /// Creates a probe for the metric `name` (usable in `static` items).
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &Arc<HistCell> {
        self.cell.get_or_init(|| registry().histogram(self.name))
    }

    /// Records one observation of `v` (no-op while telemetry is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.cell().record(v);
        }
    }

    /// Starts a scoped latency measurement; the elapsed nanoseconds are
    /// recorded as one observation when the returned guard drops. While
    /// telemetry is disabled the guard is inert and no clock is read.
    #[inline]
    pub fn span(&self) -> HistogramSpan<'_> {
        HistogramSpan {
            inner: enabled().then(|| (self, Instant::now())),
        }
    }

    /// Number of recorded observations (registers the metric if needed).
    pub fn count(&self) -> u64 {
        self.cell().count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded observations (registers the metric if needed).
    pub fn sum(&self) -> u64 {
        self.cell().sum.load(Ordering::Relaxed)
    }

    /// Largest recorded observation (registers the metric if needed).
    pub fn max(&self) -> u64 {
        self.cell().max.load(Ordering::Relaxed)
    }
}

/// Guard returned by [`Histogram::span`]; records the elapsed nanoseconds
/// into its histogram on drop.
pub struct HistogramSpan<'a> {
    inner: Option<(&'a Histogram, Instant)>,
}

impl Drop for HistogramSpan<'_> {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.inner.take() {
            hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// A counter with a runtime-constructed name, for metric families whose
/// cardinality is only known at startup (per-shard serving probes, per-
/// worker pools). The registry cell is resolved **once** at construction,
/// so the steady-state cost matches the `static` [`Counter`]: one
/// enabled-check plus one relaxed `fetch_add`.
pub struct OwnedCounter {
    cell: Arc<AtomicU64>,
}

impl OwnedCounter {
    /// Creates (and registers) a probe for the metric `name`.
    pub fn new(name: &str) -> Self {
        OwnedCounter {
            cell: registry().counter(name),
        }
    }

    /// Adds `n` to the counter (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter (no-op while telemetry is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The counter's current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge with a runtime-constructed name (see [`OwnedCounter`]).
pub struct OwnedGauge {
    cell: Arc<AtomicU64>,
}

impl OwnedGauge {
    /// Creates (and registers) a probe for the metric `name`.
    pub fn new(name: &str) -> Self {
        OwnedGauge {
            cell: registry().gauge(name),
        }
    }

    /// Sets the gauge (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.cell.store(gauge_bits(v), Ordering::Relaxed);
        }
    }

    /// The gauge's current value (`0.0` if never written).
    pub fn value(&self) -> f64 {
        gauge_value(self.cell.load(Ordering::Relaxed))
    }
}

/// A histogram with a runtime-constructed name (see [`OwnedCounter`]).
pub struct OwnedHistogram {
    cell: Arc<HistCell>,
}

impl OwnedHistogram {
    /// Creates (and registers) a probe for the metric `name`.
    pub fn new(name: &str) -> Self {
        OwnedHistogram {
            cell: registry().histogram(name),
        }
    }

    /// Records one observation of `v` (no-op while telemetry is
    /// disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.cell.record(v);
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded observations.
    pub fn sum(&self) -> u64 {
        self.cell.sum.load(Ordering::Relaxed)
    }
}
