//! The process-wide metric registry and the enable gate.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Timer storage: total elapsed nanoseconds and the number of recordings.
pub(crate) struct TimerCell {
    pub(crate) ns: AtomicU64,
    pub(crate) count: AtomicU64,
}

/// Number of log₂ buckets a histogram holds: bucket 0 is the value `0`,
/// bucket `b ≥ 1` covers `[2^(b−1), 2^b)`, so 65 buckets span all of
/// `u64` (`bucket 64` ends at `u64::MAX`).
pub(crate) const HIST_BUCKETS: usize = 65;

/// Bucket index of `v` (see [`HIST_BUCKETS`]): `0 → 0`, `1 → 1`,
/// `[2, 4) → 2`, `[4, 8) → 3`, …
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `b` — what the quantile estimates
/// report (the true value is within 2× below it).
#[inline]
pub(crate) fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// Histogram storage: one atomic counter per log₂ bucket plus exact
/// count, sum and max — everything lock-free, so concurrent workers can
/// record without coordination and nothing is lost in the merge.
pub(crate) struct HistCell {
    pub(crate) buckets: [AtomicU64; HIST_BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) max: AtomicU64,
}

impl HistCell {
    fn new() -> Self {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation of `v`.
    #[inline]
    pub(crate) fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Sentinel bit pattern for a gauge that has never been written: a quiet
/// NaN with a payload no canonicalized store can produce. Seeding cells
/// with this (instead of `0.0`) lets `set_max` accept *any* first value,
/// including negative ones, while `value()`/snapshots keep reporting an
/// unwritten gauge as `0.0`.
pub(crate) const GAUGE_UNWRITTEN: u64 = 0x7FF8_DEAD_BEEF_0000;

/// Bit pattern a gauge actually stores for `v`: NaNs are canonicalized so
/// a stored value can never collide with [`GAUGE_UNWRITTEN`].
#[inline]
pub(crate) fn gauge_bits(v: f64) -> u64 {
    if v.is_nan() {
        f64::NAN.to_bits()
    } else {
        v.to_bits()
    }
}

/// The `f64` a gauge cell's bit pattern represents (`0.0` when unwritten).
#[inline]
pub(crate) fn gauge_value(bits: u64) -> f64 {
    if bits == GAUGE_UNWRITTEN {
        0.0
    } else {
        f64::from_bits(bits)
    }
}

/// All registered metrics, keyed by name. Values are `Arc`s so probes can
/// cache a direct handle and skip the map lookup on the hot path.
pub(crate) struct Registry {
    pub(crate) counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    /// Gauges store `f64::to_bits` ([`GAUGE_UNWRITTEN`] until first set).
    pub(crate) gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    pub(crate) timers: Mutex<BTreeMap<String, Arc<TimerCell>>>,
    pub(crate) histograms: Mutex<BTreeMap<String, Arc<HistCell>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Metric maps hold plain atomics; a panic while holding the lock
    // cannot leave them logically corrupt, so poisoning is ignored.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    pub(crate) fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = lock(&self.counters);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    pub(crate) fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = lock(&self.gauges);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(GAUGE_UNWRITTEN))),
        )
    }

    pub(crate) fn timer(&self, name: &str) -> Arc<TimerCell> {
        let mut map = lock(&self.timers);
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| {
            Arc::new(TimerCell {
                ns: AtomicU64::new(0),
                count: AtomicU64::new(0),
            })
        }))
    }

    pub(crate) fn histogram(&self, name: &str) -> Arc<HistCell> {
        let mut map = lock(&self.histograms);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(HistCell::new())),
        )
    }
}

pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        timers: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

/// 0 = follow `RPBCM_TELEMETRY`, 1 = forced on, 2 = forced off.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| crate::env::flag("RPBCM_TELEMETRY"))
}

/// Whether telemetry is currently recording. One relaxed atomic load on
/// the hot path; the `RPBCM_TELEMETRY` environment variable is read once
/// per process, and [`set_enabled`] overrides it.
#[inline]
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_enabled(),
    }
}

/// Forces telemetry on or off for this process, overriding
/// `RPBCM_TELEMETRY`. Intended for tests and tools; probes re-check on
/// every call, so the switch takes effect immediately.
pub fn set_enabled(on: bool) {
    OVERRIDE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Drops any [`set_enabled`] override, returning control to the
/// `RPBCM_TELEMETRY` environment variable.
pub fn clear_override() {
    OVERRIDE.store(0, Ordering::Relaxed);
}

/// Zeroes every registered metric in place. Probe handles stay valid —
/// the metrics are reset, not removed — so this is safe to call between
/// benchmark phases.
pub fn reset() {
    let r = registry();
    for c in lock(&r.counters).values() {
        c.store(0, Ordering::Relaxed);
    }
    for g in lock(&r.gauges).values() {
        g.store(GAUGE_UNWRITTEN, Ordering::Relaxed);
    }
    for t in lock(&r.timers).values() {
        t.ns.store(0, Ordering::Relaxed);
        t.count.store(0, Ordering::Relaxed);
    }
    for h in lock(&r.histograms).values() {
        h.reset();
    }
}

/// Adds `delta` to the counter `name`, registering it on first use. For
/// metrics whose names are built at run time (per-layer, per-experiment);
/// statically named sites should prefer a `static` [`crate::Counter`],
/// which caches its registry handle.
pub fn record_counter(name: &str, delta: u64) {
    if enabled() {
        registry().counter(name).fetch_add(delta, Ordering::Relaxed);
    }
}

/// Sets the gauge `name` to `value`, registering it on first use.
pub fn record_gauge(name: &str, value: f64) {
    if enabled() {
        registry()
            .gauge(name)
            .store(gauge_bits(value), Ordering::Relaxed);
    }
}

/// Adds one recording of `ns` nanoseconds to the timer `name`,
/// registering it on first use.
pub fn record_timer_ns(name: &str, ns: u64) {
    if enabled() {
        let cell = registry().timer(name);
        cell.ns.fetch_add(ns, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// Records one observation of `value` into the histogram `name`,
/// registering it on first use. Statically named sites should prefer a
/// `static` [`crate::Histogram`], which caches its registry handle.
pub fn record_histogram(name: &str, value: u64) {
    if enabled() {
        registry().histogram(name).record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket's upper bound maps back into that bucket.
        for b in 0..HIST_BUCKETS {
            assert_eq!(bucket_index(bucket_upper(b)), b, "bucket {b}");
        }
    }

    #[test]
    fn gauge_bits_never_collide_with_the_sentinel() {
        assert_ne!(gauge_bits(f64::NAN), GAUGE_UNWRITTEN);
        assert_eq!(gauge_value(GAUGE_UNWRITTEN), 0.0);
        assert_eq!(gauge_value(gauge_bits(-3.5)), -3.5);
        assert!(f64::from_bits(GAUGE_UNWRITTEN).is_nan());
    }
}
