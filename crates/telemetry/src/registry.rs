//! The process-wide metric registry and the enable gate.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Timer storage: total elapsed nanoseconds and the number of recordings.
pub(crate) struct TimerCell {
    pub(crate) ns: AtomicU64,
    pub(crate) count: AtomicU64,
}

/// All registered metrics, keyed by name. Values are `Arc`s so probes can
/// cache a direct handle and skip the map lookup on the hot path.
pub(crate) struct Registry {
    pub(crate) counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    /// Gauges store `f64::to_bits`.
    pub(crate) gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    pub(crate) timers: Mutex<BTreeMap<String, Arc<TimerCell>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Metric maps hold plain atomics; a panic while holding the lock
    // cannot leave them logically corrupt, so poisoning is ignored.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    pub(crate) fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = lock(&self.counters);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    pub(crate) fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = lock(&self.gauges);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits()))),
        )
    }

    pub(crate) fn timer(&self, name: &str) -> Arc<TimerCell> {
        let mut map = lock(&self.timers);
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| {
            Arc::new(TimerCell {
                ns: AtomicU64::new(0),
                count: AtomicU64::new(0),
            })
        }))
    }
}

pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        timers: Mutex::new(BTreeMap::new()),
    })
}

/// 0 = follow `RPBCM_TELEMETRY`, 1 = forced on, 2 = forced off.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        matches!(
            std::env::var("RPBCM_TELEMETRY").as_deref(),
            Ok("1") | Ok("true") | Ok("on")
        )
    })
}

/// Whether telemetry is currently recording. One relaxed atomic load on
/// the hot path; the `RPBCM_TELEMETRY` environment variable is read once
/// per process, and [`set_enabled`] overrides it.
#[inline]
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_enabled(),
    }
}

/// Forces telemetry on or off for this process, overriding
/// `RPBCM_TELEMETRY`. Intended for tests and tools; probes re-check on
/// every call, so the switch takes effect immediately.
pub fn set_enabled(on: bool) {
    OVERRIDE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Drops any [`set_enabled`] override, returning control to the
/// `RPBCM_TELEMETRY` environment variable.
pub fn clear_override() {
    OVERRIDE.store(0, Ordering::Relaxed);
}

/// Zeroes every registered metric in place. Probe handles stay valid —
/// the metrics are reset, not removed — so this is safe to call between
/// benchmark phases.
pub fn reset() {
    let r = registry();
    for c in lock(&r.counters).values() {
        c.store(0, Ordering::Relaxed);
    }
    for g in lock(&r.gauges).values() {
        g.store(0f64.to_bits(), Ordering::Relaxed);
    }
    for t in lock(&r.timers).values() {
        t.ns.store(0, Ordering::Relaxed);
        t.count.store(0, Ordering::Relaxed);
    }
}

/// Adds `delta` to the counter `name`, registering it on first use. For
/// metrics whose names are built at run time (per-layer, per-experiment);
/// statically named sites should prefer a `static` [`crate::Counter`],
/// which caches its registry handle.
pub fn record_counter(name: &str, delta: u64) {
    if enabled() {
        registry().counter(name).fetch_add(delta, Ordering::Relaxed);
    }
}

/// Sets the gauge `name` to `value`, registering it on first use.
pub fn record_gauge(name: &str, value: f64) {
    if enabled() {
        registry()
            .gauge(name)
            .store(value.to_bits(), Ordering::Relaxed);
    }
}

/// Adds one recording of `ns` nanoseconds to the timer `name`,
/// registering it on first use.
pub fn record_timer_ns(name: &str, ns: u64) {
    if enabled() {
        let cell = registry().timer(name);
        cell.ns.fetch_add(ns, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
    }
}
