//! Registry snapshots and the hand-rolled JSON report writer.

use crate::registry::{enabled, registry};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

/// One timer's aggregated statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimerStat {
    /// Number of recordings.
    pub count: u64,
    /// Total recorded nanoseconds.
    pub total_ns: u64,
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Whether telemetry was enabled when the snapshot was taken.
    pub enabled: bool,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Timer statistics by name.
    pub timers: BTreeMap<String, TimerStat>,
}

impl Snapshot {
    /// Renders the snapshot as a stable JSON document (keys sorted; two
    /// spaces of indentation). Non-finite gauge values serialize as
    /// `null` to keep the output valid JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"enabled\": {},\n", self.enabled));
        s.push_str("  \"counters\": {");
        push_entries(&mut s, &self.counters, |v| v.to_string());
        s.push_str("},\n  \"gauges\": {");
        push_entries(&mut s, &self.gauges, |v| {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        });
        s.push_str("},\n  \"timers\": {");
        push_entries(&mut s, &self.timers, |t| {
            format!("{{\"count\": {}, \"total_ns\": {}}}", t.count, t.total_ns)
        });
        s.push_str("}\n}");
        s
    }
}

fn push_entries<V>(s: &mut String, map: &BTreeMap<String, V>, fmt: impl Fn(&V) -> String) {
    let mut first = true;
    for (name, v) in map {
        s.push_str(if first { "\n" } else { ",\n" });
        first = false;
        s.push_str(&format!("    \"{}\": {}", escape(name), fmt(v)));
    }
    if !first {
        s.push_str("\n  ");
    }
}

fn escape(name: &str) -> String {
    name.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// Captures every registered metric.
pub fn snapshot() -> Snapshot {
    let r = registry();
    let counters = r
        .counters
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    let gauges = r
        .gauges
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
        .collect();
    let timers = r
        .timers
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| {
            (
                k.clone(),
                TimerStat {
                    count: v.count.load(Ordering::Relaxed),
                    total_ns: v.ns.load(Ordering::Relaxed),
                },
            )
        })
        .collect();
    Snapshot {
        enabled: enabled(),
        counters,
        gauges,
        timers,
    }
}

/// [`snapshot`] rendered as JSON.
pub fn report_json() -> String {
    snapshot().to_json()
}

/// Writes [`report_json`] (plus a trailing newline) to `path`.
pub fn write_report<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<()> {
    std::fs::write(path, report_json() + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_sorts() {
        let mut snap = Snapshot {
            enabled: true,
            ..Default::default()
        };
        snap.counters.insert("b.two".into(), 2);
        snap.counters.insert("a.\"one\"".into(), 1);
        snap.gauges.insert("g.nan".into(), f64::NAN);
        snap.gauges.insert("g.pi".into(), 3.5);
        snap.timers.insert(
            "t".into(),
            TimerStat {
                count: 2,
                total_ns: 99,
            },
        );
        let j = snap.to_json();
        let a = j.find("a.\\\"one\\\"").expect("escaped key present");
        let b = j.find("b.two").expect("second key present");
        assert!(a < b, "keys sorted");
        assert!(j.contains("\"g.nan\": null"));
        assert!(j.contains("\"g.pi\": 3.5"));
        assert!(j.contains("{\"count\": 2, \"total_ns\": 99}"));
        assert!(j.contains("\"enabled\": true"));
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let j = Snapshot::default().to_json();
        assert!(j.contains("\"counters\": {}"));
        assert!(j.contains("\"gauges\": {}"));
        assert!(j.contains("\"timers\": {}"));
    }
}
