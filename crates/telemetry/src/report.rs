//! Registry snapshots and the hand-rolled JSON report writer.

use crate::registry::{bucket_upper, enabled, gauge_value, registry, HistCell, HIST_BUCKETS};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

/// One timer's aggregated statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimerStat {
    /// Number of recordings.
    pub count: u64,
    /// Total recorded nanoseconds.
    pub total_ns: u64,
}

/// One histogram's aggregated statistics. Quantiles are upper bounds of
/// the log₂ bucket holding that rank, so they overestimate the true value
/// by at most 2×; `max` is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramStat {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all recorded observations.
    pub sum: u64,
    /// Largest recorded observation (exact).
    pub max: u64,
    /// Estimated 50th-percentile observation (0 when empty).
    pub p50: u64,
    /// Estimated 90th-percentile observation (0 when empty).
    pub p90: u64,
    /// Estimated 99th-percentile observation (0 when empty).
    pub p99: u64,
}

impl HistogramStat {
    pub(crate) fn from_cell(cell: &HistCell) -> Self {
        let buckets: Vec<u64> = cell
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // The per-field loads are individually atomic but not mutually
        // consistent; derive the count from the buckets so the quantile
        // ranks match the distribution actually read.
        let count: u64 = buckets.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (b, &n) in buckets.iter().enumerate().take(HIST_BUCKETS) {
                seen += n;
                if seen >= target {
                    return bucket_upper(b);
                }
            }
            bucket_upper(HIST_BUCKETS - 1)
        };
        HistogramStat {
            count,
            sum: cell.sum.load(Ordering::Relaxed),
            max: cell.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Whether telemetry was enabled when the snapshot was taken.
    pub enabled: bool,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Timer statistics by name.
    pub timers: BTreeMap<String, TimerStat>,
    /// Histogram statistics by name.
    pub histograms: BTreeMap<String, HistogramStat>,
}

impl Snapshot {
    /// Renders the snapshot as a stable JSON document (keys sorted; two
    /// spaces of indentation). Non-finite gauge values serialize as
    /// `null` to keep the output valid JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"enabled\": {},\n", self.enabled));
        s.push_str("  \"counters\": {");
        push_entries(&mut s, &self.counters, |v| v.to_string());
        s.push_str("},\n  \"gauges\": {");
        push_entries(&mut s, &self.gauges, |v| {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        });
        s.push_str("},\n  \"timers\": {");
        push_entries(&mut s, &self.timers, |t| {
            format!("{{\"count\": {}, \"total_ns\": {}}}", t.count, t.total_ns)
        });
        s.push_str("},\n  \"histograms\": {");
        push_entries(&mut s, &self.histograms, |h| {
            format!(
                "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                h.count, h.sum, h.max, h.p50, h.p90, h.p99
            )
        });
        s.push_str("}\n}");
        s
    }
}

fn push_entries<V>(s: &mut String, map: &BTreeMap<String, V>, fmt: impl Fn(&V) -> String) {
    let mut first = true;
    for (name, v) in map {
        s.push_str(if first { "\n" } else { ",\n" });
        first = false;
        s.push_str(&format!("    \"{}\": {}", escape(name), fmt(v)));
    }
    if !first {
        s.push_str("\n  ");
    }
}

fn escape(name: &str) -> String {
    name.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// Captures every registered metric.
pub fn snapshot() -> Snapshot {
    let r = registry();
    let counters = r
        .counters
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .collect();
    let gauges = r
        .gauges
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), gauge_value(v.load(Ordering::Relaxed))))
        .collect();
    let timers = r
        .timers
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| {
            (
                k.clone(),
                TimerStat {
                    count: v.count.load(Ordering::Relaxed),
                    total_ns: v.ns.load(Ordering::Relaxed),
                },
            )
        })
        .collect();
    let histograms = r
        .histograms
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), HistogramStat::from_cell(v)))
        .collect();
    Snapshot {
        enabled: enabled(),
        counters,
        gauges,
        timers,
        histograms,
    }
}

/// [`snapshot`] rendered as JSON.
pub fn report_json() -> String {
    snapshot().to_json()
}

/// Writes [`report_json`] (plus a trailing newline) to `path`.
pub fn write_report<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<()> {
    std::fs::write(path, report_json() + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_sorts() {
        let mut snap = Snapshot {
            enabled: true,
            ..Default::default()
        };
        snap.counters.insert("b.two".into(), 2);
        snap.counters.insert("a.\"one\"".into(), 1);
        snap.gauges.insert("g.nan".into(), f64::NAN);
        snap.gauges.insert("g.pi".into(), 3.5);
        snap.timers.insert(
            "t".into(),
            TimerStat {
                count: 2,
                total_ns: 99,
            },
        );
        let j = snap.to_json();
        let a = j.find("a.\\\"one\\\"").expect("escaped key present");
        let b = j.find("b.two").expect("second key present");
        assert!(a < b, "keys sorted");
        assert!(j.contains("\"g.nan\": null"));
        assert!(j.contains("\"g.pi\": 3.5"));
        assert!(j.contains("{\"count\": 2, \"total_ns\": 99}"));
        assert!(j.contains("\"enabled\": true"));
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let j = Snapshot::default().to_json();
        assert!(j.contains("\"counters\": {}"));
        assert!(j.contains("\"gauges\": {}"));
        assert!(j.contains("\"timers\": {}"));
        assert!(j.contains("\"histograms\": {}"));
    }

    #[test]
    fn histogram_stats_serialize_all_fields() {
        let mut snap = Snapshot {
            enabled: true,
            ..Default::default()
        };
        snap.histograms.insert(
            "h".into(),
            HistogramStat {
                count: 100,
                sum: 5000,
                max: 200,
                p50: 63,
                p90: 127,
                p99: 255,
            },
        );
        let j = snap.to_json();
        assert!(j.contains(
            "\"h\": {\"count\": 100, \"sum\": 5000, \"max\": 200, \
             \"p50\": 63, \"p90\": 127, \"p99\": 255}"
        ));
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let cell = crate::registry::registry().histogram("report.test.quantiles");
        // 90 observations of 1 and 10 of ~1000: p50/p90 land in bucket 1
        // (upper bound 1), p99 and max in the 1000s.
        for _ in 0..90 {
            cell.record(1);
        }
        for _ in 0..10 {
            cell.record(1000);
        }
        let stat = HistogramStat::from_cell(&cell);
        assert_eq!(stat.count, 100);
        assert_eq!(stat.sum, 90 + 10_000);
        assert_eq!(stat.max, 1000);
        assert_eq!(stat.p50, 1);
        assert_eq!(stat.p90, 1);
        assert_eq!(stat.p99, 1023); // upper bound of 1000's bucket
    }
}
