//! Chrome trace-event export: bounded per-thread event rings feeding a
//! `chrome://tracing` / Perfetto JSON writer.
//!
//! Two clock domains share one trace file:
//!
//! - **Wall clock** (`pid` 1): [`trace_span`] guards around software hot
//!   paths record real elapsed time, one track per OS thread. Timestamps
//!   are nanoseconds since the first trace event of the process.
//! - **Modeled cycles** (`pid` ≥ 2): `hwsim::timeline` replays its
//!   double-buffered pipeline schedule through [`trace_cycle_process`] and
//!   [`trace_complete_cycles`], one track per accelerator station
//!   (DRAM/FFT/eMAC/IFFT), at 1 cycle = 1 µs — so the Fig. 10 overlap is
//!   directly inspectable next to the software timeline.
//!
//! Tracing is off unless the `RPBCM_TRACE=<path>` environment variable is
//! set (or a test forces it with [`set_trace_enabled`]); while off, a
//! span open is one relaxed atomic load. Each thread buffers into a
//! bounded ring (events beyond the cap are counted and dropped, never
//! blocking the hot path); [`flush_trace`] collects every ring into one
//! sorted JSON document.

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Per-thread event capacity; one event is five words, so the worst-case
/// footprint per thread stays a few MiB.
const RING_CAP: usize = 65_536;

/// One buffered trace event (a Chrome `ph:"X"` complete event).
#[derive(Clone, Copy)]
struct Event {
    /// Static name (span label or station name).
    name: &'static str,
    /// Static category shown in the trace UI.
    cat: &'static str,
    /// Process track: 1 = wall clock, ≥ 2 = a modeled-cycle replay.
    pid: u32,
    /// Thread track within the process track.
    tid: u32,
    /// Start, nanoseconds in the track's clock domain.
    ts_ns: u64,
    /// Duration, nanoseconds in the track's clock domain.
    dur_ns: u64,
}

/// A bounded per-thread event buffer.
struct Ring {
    events: Vec<Event>,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: Event) {
        if self.events.len() < RING_CAP {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }
}

/// Named process tracks (pid ≥ 2) registered by cycle-domain replays.
struct CycleProcess {
    pid: u32,
    label: String,
}

struct TraceState {
    /// Every thread's ring, registered on that thread's first event.
    rings: Mutex<Vec<Arc<Mutex<Ring>>>>,
    cycle_processes: Mutex<Vec<CycleProcess>>,
    next_pid: AtomicU32,
    next_tid: AtomicU32,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn state() -> &'static TraceState {
    static STATE: OnceLock<TraceState> = OnceLock::new();
    STATE.get_or_init(|| TraceState {
        rings: Mutex::new(Vec::new()),
        cycle_processes: Mutex::new(Vec::new()),
        next_pid: AtomicU32::new(2),
        next_tid: AtomicU32::new(1),
    })
}

/// Wall-clock epoch: all pid-1 timestamps are relative to the first
/// trace event of the process.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    /// This thread's `(tid, ring)`; the ring is shared with the global
    /// list so `flush_trace` can read it from any thread.
    static LOCAL: (u32, Arc<Mutex<Ring>>) = {
        let ring = Arc::new(Mutex::new(Ring { events: Vec::new(), dropped: 0 }));
        lock(&state().rings).push(Arc::clone(&ring));
        (state().next_tid.fetch_add(1, Ordering::Relaxed), ring)
    };
}

/// 0 = follow `RPBCM_TRACE`, 1 = forced on, 2 = forced off.
static TRACE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn env_trace_path() -> Option<&'static str> {
    static PATH: OnceLock<Option<String>> = OnceLock::new();
    PATH.get_or_init(|| crate::env::path("RPBCM_TRACE"))
        .as_deref()
}

/// Whether trace events are currently being captured: `RPBCM_TRACE` is
/// set (read once per process) or a test forced it on with
/// [`set_trace_enabled`]. One relaxed atomic load on the hot path.
#[inline]
pub fn trace_enabled() -> bool {
    match TRACE_OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_trace_path().is_some(),
    }
}

/// Forces trace capture on or off, overriding `RPBCM_TRACE`. Intended
/// for tests and tools.
pub fn set_trace_enabled(on: bool) {
    TRACE_OVERRIDE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Drops any [`set_trace_enabled`] override, returning control to the
/// `RPBCM_TRACE` environment variable.
pub fn clear_trace_override() {
    TRACE_OVERRIDE.store(0, Ordering::Relaxed);
}

/// Discards every buffered event and cycle-process registration (tracks
/// and thread ids are kept). For tests that need an empty trace.
pub fn reset_trace() {
    for ring in lock(&state().rings).iter() {
        let mut r = lock(ring);
        r.events.clear();
        r.dropped = 0;
    }
    lock(&state().cycle_processes).clear();
    state().next_pid.store(2, Ordering::Relaxed);
}

fn push_event(ev: Event) {
    LOCAL.with(|(_, ring)| lock(ring).push(ev));
}

fn current_tid() -> u32 {
    LOCAL.with(|(tid, _)| *tid)
}

/// Guard returned by [`trace_span`]; buffers one wall-clock complete
/// event covering its lifetime when dropped.
pub struct TraceSpan {
    inner: Option<(&'static str, &'static str, u64, Instant)>,
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some((name, cat, ts_ns, start)) = self.inner.take() {
            push_event(Event {
                name,
                cat,
                pid: 1,
                tid: current_tid(),
                ts_ns,
                dur_ns: start.elapsed().as_nanos() as u64,
            });
        }
    }
}

/// Opens a wall-clock span named `name` in category `cat` on the calling
/// thread's track; the span closes when the returned guard drops. Inert
/// (no clock read, nothing buffered) while tracing is disabled.
#[inline]
pub fn trace_span(name: &'static str, cat: &'static str) -> TraceSpan {
    TraceSpan {
        inner: trace_enabled().then(|| {
            let start = Instant::now();
            (
                name,
                cat,
                start.duration_since(epoch()).as_nanos() as u64,
                start,
            )
        }),
    }
}

/// Registers a new modeled-cycle process track labelled `label` (e.g.
/// `"hwsim pipeline (double-buffered)"`) and returns its `pid` for
/// [`trace_complete_cycles`]. Returns 0 while tracing is disabled.
pub fn trace_cycle_process(label: &str) -> u32 {
    if !trace_enabled() {
        return 0;
    }
    let pid = state().next_pid.fetch_add(1, Ordering::Relaxed);
    lock(&state().cycle_processes).push(CycleProcess {
        pid,
        label: label.to_string(),
    });
    pid
}

/// Buffers one complete event on the modeled-cycle track `pid` (from
/// [`trace_cycle_process`]), lane `tid` (station index), named `name`,
/// spanning `[start, start + dur)` in cycles at 1 cycle = 1 µs. No-op
/// while tracing is disabled or when `pid` is 0.
#[inline]
pub fn trace_complete_cycles(pid: u32, tid: u32, name: &'static str, start: u64, dur: u64) {
    if trace_enabled() && pid != 0 {
        push_event(Event {
            name,
            cat: "cycles",
            pid,
            tid,
            ts_ns: start.saturating_mul(1_000),
            dur_ns: dur.saturating_mul(1_000),
        });
    }
}

/// Total events dropped because a thread's ring was full.
pub fn trace_dropped() -> u64 {
    lock(&state().rings).iter().map(|r| lock(r).dropped).sum()
}

fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if c.is_control() => out.push(' '),
            c => out.push(c),
        }
    }
}

/// Microseconds with three decimals — the trace-event `ts`/`dur` unit.
/// Shared with the flight recorder's Chrome-trace rendering.
pub(crate) fn push_us(out: &mut String, ns: u64) {
    out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
}

/// Renders every buffered event as a Chrome trace-event JSON document.
///
/// Events are sorted by `(pid, tid, ts)` so each track's timestamps are
/// monotonic; `ph:"M"` metadata events name the process tracks. Loadable
/// directly in Perfetto or `chrome://tracing`.
pub fn trace_json() -> String {
    let mut events: Vec<Event> = Vec::new();
    let mut dropped = 0u64;
    for ring in lock(&state().rings).iter() {
        let r = lock(ring);
        events.extend_from_slice(&r.events);
        dropped += r.dropped;
    }
    events.sort_by_key(|e| (e.pid, e.tid, e.ts_ns, e.dur_ns));

    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut meta = |out: &mut String, line: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    };
    meta(
        &mut out,
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"software (wall clock)\"}}"
            .to_string(),
    );
    for cp in lock(&state().cycle_processes).iter() {
        let mut line = format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"",
            cp.pid
        );
        push_json_escaped(&mut line, &cp.label);
        line.push_str("\"}}");
        meta(&mut out, line);
    }
    for e in &events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("{\"ph\":\"X\",\"name\":\"");
        push_json_escaped(&mut out, e.name);
        out.push_str("\",\"cat\":\"");
        push_json_escaped(&mut out, e.cat);
        out.push_str(&format!("\",\"pid\":{},\"tid\":{},\"ts\":", e.pid, e.tid));
        push_us(&mut out, e.ts_ns);
        out.push_str(",\"dur\":");
        push_us(&mut out, e.dur_ns);
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"");
    if dropped > 0 {
        out.push_str(&format!(",\"rpbcm_dropped_events\":{dropped}"));
    }
    out.push_str("}\n");
    out
}

/// Writes [`trace_json`] to `path`.
pub fn write_trace<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<()> {
    std::fs::write(path, trace_json())
}

/// Writes the buffered trace to the `RPBCM_TRACE` path, if set. Returns
/// the path written, or `None` when tracing was not requested via the
/// environment. Call once at the end of a run (the `exp_*` binaries do).
pub fn flush_trace() -> std::io::Result<Option<std::path::PathBuf>> {
    match env_trace_path() {
        Some(p) => {
            write_trace(p)?;
            Ok(Some(std::path::PathBuf::from(p)))
        }
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_buffers_nothing_and_json_is_wellformed() {
        set_trace_enabled(false);
        {
            let _s = trace_span("quiet", "test");
        }
        trace_complete_cycles(2, 0, "quiet", 0, 10);
        let j = trace_json();
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(!j.contains("\"quiet\""));
        clear_trace_override();
    }

    #[test]
    fn us_formatting_keeps_three_decimals() {
        let mut s = String::new();
        push_us(&mut s, 1_234_567);
        assert_eq!(s, "1234.567");
        s.clear();
        push_us(&mut s, 42);
        assert_eq!(s, "0.042");
    }
}
