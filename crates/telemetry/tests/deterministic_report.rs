//! Identical registry contents must render byte-identical JSON, so the
//! `results/TELEMETRY_*.json` artifacts diff cleanly across runs. Lives
//! in its own integration-test process because it resets the registry.
#![cfg(feature = "capture")]

#[test]
fn reports_are_byte_identical_for_identical_registry_contents() {
    telemetry::set_enabled(true);

    let record = || {
        telemetry::record_counter("test.det.counter", 3);
        telemetry::record_gauge("test.det.gauge", -0.75);
        telemetry::record_timer_ns("test.det.timer", 500);
        telemetry::record_histogram("test.det.hist", 9);
        telemetry::record_histogram("test.det.hist", 1024);
        // Insertion order of *registrations* must not leak into the
        // report: register a lexically-earlier name last.
        telemetry::record_counter("test.det.a_counter", 1);
    };

    record();
    let json_a = telemetry::report_json();

    telemetry::reset();
    record();
    let json_b = telemetry::report_json();

    assert_eq!(json_a.as_bytes(), json_b.as_bytes());

    // Sorted-name order within each section.
    let a = json_a.find("test.det.a_counter").expect("a present");
    let b = json_a.find("test.det.counter").expect("b present");
    assert!(a < b, "counters sorted by name");
}
