//! The zero-overhead contract while telemetry is runtime-disabled: probes
//! must not register metrics, touch the registry, or read the clock. Own
//! process so the override cannot race other test binaries.
#![cfg(feature = "capture")]

use telemetry::{Counter, Gauge, Timer};

static MISSES: Counter = Counter::new("test.disabled.misses");
static DEPTH: Gauge = Gauge::new("test.disabled.depth");
static WAIT: Timer = Timer::new("test.disabled.wait");

#[test]
fn disabled_probes_leave_no_trace() {
    telemetry::set_enabled(false);
    assert!(!telemetry::enabled());

    MISSES.inc();
    MISSES.add(100);
    DEPTH.set(3.0);
    DEPTH.set_max(9.0);
    WAIT.add_ns(500);
    drop(WAIT.span());
    telemetry::record_counter("test.disabled.dynamic", 7);
    telemetry::record_gauge("test.disabled.dyn_gauge", 1.0);
    telemetry::record_timer_ns("test.disabled.dyn_timer", 1);

    // Nothing was registered: the probes bailed before touching the
    // registry, so the snapshot holds no metric of this test's.
    let snap = telemetry::snapshot();
    assert!(!snap.enabled);
    assert!(
        snap.counters
            .keys()
            .all(|k| !k.starts_with("test.disabled")),
        "disabled counter registered: {:?}",
        snap.counters
    );
    assert!(snap.gauges.keys().all(|k| !k.starts_with("test.disabled")));
    assert!(snap.timers.keys().all(|k| !k.starts_with("test.disabled")));

    // A span opened while disabled stays inert even if telemetry is
    // enabled before the guard drops: the decision is taken at open time.
    let guard = WAIT.span();
    telemetry::set_enabled(true);
    drop(guard);
    assert_eq!(
        WAIT.count(),
        0,
        "span opened while disabled must not record"
    );
    telemetry::set_enabled(false);

    // Reading a value registers the metric (documented) but reports zero.
    assert_eq!(MISSES.value(), 0);
    assert_eq!(DEPTH.value(), 0.0);
    assert_eq!(WAIT.total_ns(), 0);
}
