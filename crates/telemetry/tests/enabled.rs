//! Behaviour with the `capture` feature compiled in and the runtime gate
//! forced on. Lives in its own integration-test process so the
//! process-wide override cannot race other test binaries.
#![cfg(feature = "capture")]

use telemetry::{Counter, Gauge, Histogram, Timer};

static HITS: Counter = Counter::new("test.enabled.hits");
static LEVEL: Gauge = Gauge::new("test.enabled.level");
static SPAN: Timer = Timer::new("test.enabled.span");
static LATENCY: Histogram = Histogram::new("test.enabled.latency");

#[test]
fn probes_record_and_report() {
    telemetry::set_enabled(true);

    HITS.inc();
    HITS.add(9);
    assert_eq!(HITS.value(), 10);

    LEVEL.set(2.5);
    LEVEL.set_max(7.0);
    LEVEL.set_max(1.0); // lower than the high-water mark: ignored
    assert_eq!(LEVEL.value(), 7.0);

    {
        let _guard = SPAN.span();
        std::hint::black_box(0);
    }
    SPAN.add_ns(1_000);
    assert_eq!(SPAN.count(), 2);
    assert!(SPAN.total_ns() >= 1_000);

    telemetry::record_counter("test.enabled.dynamic", 3);
    telemetry::record_gauge("test.enabled.dyn_gauge", 0.25);
    telemetry::record_timer_ns("test.enabled.dyn_timer", 42);

    let snap = telemetry::snapshot();
    assert!(snap.enabled);
    assert_eq!(snap.counters["test.enabled.hits"], 10);
    assert_eq!(snap.counters["test.enabled.dynamic"], 3);
    assert_eq!(snap.gauges["test.enabled.level"], 7.0);
    assert_eq!(snap.gauges["test.enabled.dyn_gauge"], 0.25);
    assert_eq!(snap.timers["test.enabled.span"].count, 2);
    assert_eq!(snap.timers["test.enabled.dyn_timer"].total_ns, 42);

    let json = telemetry::report_json();
    assert!(json.contains("\"test.enabled.hits\": 10"));
    assert!(json.contains("\"enabled\": true"));

    // Histograms: exact count/sum/max, quantiles at bucket upper bounds.
    for v in [1u64, 1, 1, 1000] {
        LATENCY.record(v);
    }
    {
        let _guard = LATENCY.span();
        std::hint::black_box(0);
    }
    assert_eq!(LATENCY.count(), 5);
    assert!(LATENCY.sum() >= 1003);
    assert!(LATENCY.max() >= 1000);
    telemetry::record_histogram("test.enabled.dyn_hist", 7);
    let snap = telemetry::snapshot();
    let h = &snap.histograms["test.enabled.latency"];
    assert_eq!(h.count, 5);
    assert_eq!(h.p50, 1);
    assert_eq!(snap.histograms["test.enabled.dyn_hist"].max, 7);
    assert!(telemetry::report_json().contains("\"test.enabled.dyn_hist\""));

    // Reset zeroes values but keeps registrations and probe handles.
    telemetry::reset();
    assert_eq!(HITS.value(), 0);
    assert_eq!(LEVEL.value(), 0.0);
    assert_eq!(SPAN.total_ns(), 0);
    assert_eq!(LATENCY.count(), 0);
    assert_eq!(LATENCY.max(), 0);
    HITS.inc();
    assert_eq!(HITS.value(), 1);
}
