//! Regression test for `Gauge::set_max`: cells used to start at bit
//! pattern 0 (= `0.0`), so a stream of strictly negative maxima never
//! recorded anything. Lives in its own integration-test process because
//! it flips the process-wide override and resets the registry.
#![cfg(feature = "capture")]

use telemetry::Gauge;

static NEG_MAX: Gauge = Gauge::new("test.gauge_max.neg");

#[test]
fn set_max_accepts_negative_first_value_and_ignores_nan() {
    telemetry::set_enabled(true);

    NEG_MAX.set_max(f64::NAN); // ignored: NaN is not a maximum
    assert_eq!(NEG_MAX.value(), 0.0); // still unwritten → reports 0.0
    assert_eq!(telemetry::snapshot().gauges["test.gauge_max.neg"], 0.0);

    NEG_MAX.set_max(-5.0);
    assert_eq!(NEG_MAX.value(), -5.0);
    NEG_MAX.set_max(-9.0); // lower: ignored
    assert_eq!(NEG_MAX.value(), -5.0);
    NEG_MAX.set_max(f64::NAN); // ignored, does not clobber
    assert_eq!(NEG_MAX.value(), -5.0);
    NEG_MAX.set_max(-2.5);
    assert_eq!(NEG_MAX.value(), -2.5);
    assert_eq!(telemetry::snapshot().gauges["test.gauge_max.neg"], -2.5);

    // A NaN written via `set` is replaced by the next maximum.
    NEG_MAX.set(f64::NAN);
    NEG_MAX.set_max(-7.0);
    assert_eq!(NEG_MAX.value(), -7.0);

    // After reset the gauge is unwritten again: negative maxima still work.
    telemetry::reset();
    assert_eq!(NEG_MAX.value(), 0.0);
    NEG_MAX.set_max(-1.0);
    assert_eq!(NEG_MAX.value(), -1.0);
}
