//! Chrome-trace writer contract: the output is parseable trace-event
//! JSON and timestamps are monotonic within each `(pid, tid)` track.
//! Lives in its own integration-test process because it flips the
//! process-wide trace override.
#![cfg(feature = "capture")]

/// Pulls every `"ts":<number>` out of serialized events in order,
/// keyed by the `(pid, tid)` that precedes it in the same event object.
fn track_timestamps(json: &str) -> Vec<((u64, u64), f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(pid_at) = line.find("\"pid\":") else {
            continue;
        };
        if !line.contains("\"ph\":\"X\"") {
            continue;
        }
        let num_after = |key: &str| -> Option<f64> {
            let at = line.find(key)? + key.len();
            let rest = &line[at..];
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        let _ = pid_at;
        let pid = num_after("\"pid\":").expect("pid") as u64;
        let tid = num_after("\"tid\":").expect("tid") as u64;
        let ts = num_after("\"ts\":").expect("ts");
        out.push(((pid, tid), ts));
    }
    out
}

#[test]
fn trace_json_is_wellformed_and_monotonic_per_track() {
    telemetry::set_trace_enabled(true);
    telemetry::reset_trace();

    // Wall-clock spans, including nested ones (which buffer in drop
    // order, i.e. inner before outer — the writer must sort).
    {
        let _outer = telemetry::trace_span("outer", "test");
        let _inner = telemetry::trace_span("inner", "test");
        std::hint::black_box(0);
    }
    {
        let _later = telemetry::trace_span("later", "test");
        std::hint::black_box(0);
    }

    // A modeled-cycle replay with overlapping stations, out of order.
    let pid = telemetry::trace_cycle_process("pipeline replay");
    assert!(pid >= 2);
    telemetry::trace_complete_cycles(pid, 1, "fft", 100, 50);
    telemetry::trace_complete_cycles(pid, 0, "dram", 0, 120);
    telemetry::trace_complete_cycles(pid, 1, "fft", 0, 60);
    telemetry::trace_complete_cycles(pid, 2, "emac", 60, 90);

    let json = telemetry::trace_json();

    // Structure: one traceEvents array, process-name metadata present.
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with('}'));
    assert!(json.contains("\"process_name\""));
    assert!(json.contains("software (wall clock)"));
    assert!(json.contains("pipeline replay"));
    for name in ["outer", "inner", "later", "dram", "fft", "emac"] {
        assert!(json.contains(&format!("\"name\":\"{name}\"")), "{name}");
    }
    // Balanced braces/brackets — cheap well-formedness proxy for the
    // std-only test (no JSON parser dependency).
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "balanced braces"
    );
    assert_eq!(json.matches('[').count(), json.matches(']').count());

    // Monotonic ts within each (pid, tid) track.
    let stamps = track_timestamps(&json);
    assert!(stamps.len() >= 7, "all events serialized: {}", stamps.len());
    let mut last: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
    for (track, ts) in stamps {
        if let Some(prev) = last.get(&track) {
            assert!(ts >= *prev, "track {track:?} went backwards");
        }
        last.insert(track, ts);
    }

    // Cycle domain is µs-per-cycle: fft at cycle 100 serializes ts=100.
    assert!(json.contains("\"ts\":100.000,\"dur\":50.000"));

    // write_trace round-trips through the filesystem.
    let path = std::env::temp_dir().join("rpbcm_trace_test.json");
    telemetry::write_trace(&path).expect("write");
    assert_eq!(std::fs::read_to_string(&path).expect("read"), json);
    let _ = std::fs::remove_file(&path);

    // Disabled tracing buffers nothing (same test: the override is
    // process-wide, so flipping it in a parallel test would race).
    {
        telemetry::set_trace_enabled(false);
        let _s = telemetry::trace_span("never_buffered", "test");
        telemetry::trace_complete_cycles(9, 0, "never_buffered", 0, 1);
        assert_eq!(telemetry::trace_cycle_process("never registered"), 0);
    }
    assert!(!telemetry::trace_json().contains("never_buffered"));
    assert!(!telemetry::trace_json().contains("never registered"));
    telemetry::clear_trace_override();
}
