//! Seeded weight initializers.
//!
//! Every experiment in this reproduction is deterministic: initializers take
//! an explicit `&mut impl Rng` and callers seed `StdRng` from a constant.

use crate::{Scalar, Tensor};
use rand::Rng;

/// Samples an i.i.d. Gaussian tensor with the given `mean` and `std_dev`.
///
/// Uses the Box–Muller transform so behaviour is identical across `rand`
/// back-ends and element types.
///
/// # Panics
///
/// Panics if `std_dev < 0`.
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use tensor::{init, Tensor};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let t: Tensor<f32> = init::gaussian(&mut rng, &[4, 4], 0.0, 1.0);
/// assert_eq!(t.len(), 16);
/// ```
pub fn gaussian<T: Scalar>(
    rng: &mut impl Rng,
    dims: &[usize],
    mean: f64,
    std_dev: f64,
) -> Tensor<T> {
    assert!(std_dev >= 0.0, "std_dev must be non-negative");
    Tensor::from_fn(dims, |_| {
        T::from_f64(mean + std_dev * sample_standard_normal(rng))
    })
}

/// Samples a uniform tensor on `[lo, hi)`.
///
/// # Panics
///
/// Panics if `hi <= lo`.
pub fn uniform<T: Scalar>(rng: &mut impl Rng, dims: &[usize], lo: f64, hi: f64) -> Tensor<T> {
    assert!(hi > lo, "uniform range must be non-empty");
    Tensor::from_fn(dims, |_| T::from_f64(rng.gen_range(lo..hi)))
}

/// Kaiming/He normal initialization for a convolution weight of shape
/// `[c_out, c_in, kh, kw]` (or a linear weight `[out, in]`): zero-mean
/// Gaussian with `std = sqrt(2 / fan_in)`.
///
/// # Panics
///
/// Panics if `dims` has fewer than 2 dimensions.
pub fn kaiming_normal<T: Scalar>(rng: &mut impl Rng, dims: &[usize]) -> Tensor<T> {
    assert!(dims.len() >= 2, "kaiming init needs at least 2-d weights");
    let fan_in: usize = dims[1..].iter().product();
    let std_dev = (2.0 / fan_in as f64).sqrt();
    gaussian(rng, dims, 0.0, std_dev)
}

/// One standard-normal draw via Box–Muller.
fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0) by drawing u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        let t: Tensor<f64> = gaussian(&mut rng, &[100, 100], 1.0, 2.0);
        let s = Summary::of(t.as_slice());
        assert!((s.mean - 1.0).abs() < 0.05, "mean = {}", s.mean);
        assert!((s.std_dev - 2.0).abs() < 0.05, "std = {}", s.std_dev);
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let t: Tensor<f32> = uniform(&mut rng, &[1000], -0.5, 0.5);
        assert!(t.min() >= -0.5 && t.max() < 0.5);
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(9);
        let small: Tensor<f64> = kaiming_normal(&mut rng, &[64, 16, 3, 3]);
        let big: Tensor<f64> = kaiming_normal(&mut rng, &[64, 256, 3, 3]);
        let s_small = Summary::of(small.as_slice()).std_dev;
        let s_big = Summary::of(big.as_slice()).std_dev;
        // fan_in ratio 16:256 = 1:16 → std ratio 4:1.
        assert!(s_small / s_big > 3.0 && s_small / s_big < 5.0);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let a: Tensor<f32> = gaussian(&mut StdRng::seed_from_u64(7), &[8], 0.0, 1.0);
        let b: Tensor<f32> = gaussian(&mut StdRng::seed_from_u64(7), &[8], 0.0, 1.0);
        assert_eq!(a, b);
    }
}
