//! Dense tensors and the small linear-algebra/statistics toolbox used by the
//! RP-BCM reproduction.
//!
//! The crate deliberately implements only what the paper's pipeline needs,
//! from scratch:
//!
//! - [`Tensor`]: an owned, row-major, n-dimensional `f32`/`f64` array with
//!   NCHW conventions for feature maps and `[out, in, kh, kw]` for
//!   convolution weights.
//! - [`svd`]: one-sided Jacobi singular value decomposition, used to measure
//!   the rank-condition of circulant blocks (paper Figs. 2 and 9a).
//! - [`stats`]: norm statistics and Gaussian kernel-density estimation
//!   (paper Fig. 5).
//! - [`init`]: seeded weight initializers (Gaussian, Kaiming, uniform).
//! - [`parallel`]: deterministic scoped-thread fan-out (`RPBCM_THREADS`),
//!   the software analogue of the accelerator's parallel PE banks.
//!
//! # Example
//!
//! ```
//! use tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0_f32, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), a.as_slice());
//! ```

// Index-based loops mirror the mathematical/hardware notation the code
// implements; iterator rewrites obscure the kernels.
#![allow(clippy::needless_range_loop)]
// Every public item must carry documentation: these crates are the
// reproduction's reference API surface.
#![deny(missing_docs)]

mod scalar;
mod shape;
#[allow(clippy::module_inception)]
mod tensor;

pub mod init;
pub mod ops;
pub mod parallel;
pub mod stats;
pub mod svd;

pub use scalar::Scalar;
pub use shape::Shape;
pub use tensor::Tensor;
