//! Free-standing linear-algebra helpers that do not belong on [`Tensor`]
//! itself: outer products, Gram matrices, row/column extraction and axis
//! reductions used by the NN and analysis code.

use crate::{Scalar, Tensor};

/// Outer product `a ⊗ b` of two 1-d tensors, as an `[a.len(), b.len()]`
/// matrix.
///
/// # Panics
///
/// Panics if either input is not 1-d.
///
/// # Example
///
/// ```
/// use tensor::{ops, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0_f32, 2.0], &[2]);
/// let b = Tensor::from_vec(vec![3.0_f32, 4.0, 5.0], &[3]);
/// let o = ops::outer(&a, &b);
/// assert_eq!(o.dims(), &[2, 3]);
/// assert_eq!(o.at(&[1, 2]), 10.0);
/// ```
pub fn outer<T: Scalar>(a: &Tensor<T>, b: &Tensor<T>) -> Tensor<T> {
    assert_eq!(a.shape().ndim(), 1, "outer lhs must be 1-d");
    assert_eq!(b.shape().ndim(), 1, "outer rhs must be 1-d");
    let (m, n) = (a.len(), b.len());
    let mut out = vec![T::ZERO; m * n];
    for (i, &ai) in a.as_slice().iter().enumerate() {
        for (j, &bj) in b.as_slice().iter().enumerate() {
            out[i * n + j] = ai * bj;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Dot product of two 1-d tensors.
///
/// # Panics
///
/// Panics if the lengths differ or either input is not 1-d.
pub fn dot<T: Scalar>(a: &Tensor<T>, b: &Tensor<T>) -> T {
    assert_eq!(a.shape().ndim(), 1, "dot lhs must be 1-d");
    assert_eq!(b.shape().ndim(), 1, "dot rhs must be 1-d");
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x * y)
        .sum()
}

/// Gram matrix `Aᵀ·A` of a 2-d tensor.
///
/// # Panics
///
/// Panics if `a` is not 2-d.
pub fn gram<T: Scalar>(a: &Tensor<T>) -> Tensor<T> {
    assert_eq!(a.shape().ndim(), 2, "gram requires a 2-d tensor");
    a.transpose().matmul(a)
}

/// Extracts row `i` of a 2-d tensor as a 1-d tensor.
///
/// # Panics
///
/// Panics if `a` is not 2-d or `i` is out of bounds.
pub fn row<T: Scalar>(a: &Tensor<T>, i: usize) -> Tensor<T> {
    assert_eq!(a.shape().ndim(), 2, "row requires a 2-d tensor");
    let n = a.shape().dim(1);
    assert!(i < a.shape().dim(0), "row index out of bounds");
    Tensor::from_vec(a.as_slice()[i * n..(i + 1) * n].to_vec(), &[n])
}

/// Extracts column `j` of a 2-d tensor as a 1-d tensor.
///
/// # Panics
///
/// Panics if `a` is not 2-d or `j` is out of bounds.
pub fn col<T: Scalar>(a: &Tensor<T>, j: usize) -> Tensor<T> {
    assert_eq!(a.shape().ndim(), 2, "col requires a 2-d tensor");
    let (m, n) = (a.shape().dim(0), a.shape().dim(1));
    assert!(j < n, "column index out of bounds");
    Tensor::from_vec((0..m).map(|i| a.as_slice()[i * n + j]).collect(), &[m])
}

/// Sums a 2-d tensor along an axis: `axis = 0` sums over rows producing a
/// length-`cols` vector, `axis = 1` sums over columns producing a
/// length-`rows` vector.
///
/// # Panics
///
/// Panics if `a` is not 2-d or `axis > 1`.
pub fn sum_axis<T: Scalar>(a: &Tensor<T>, axis: usize) -> Tensor<T> {
    assert_eq!(a.shape().ndim(), 2, "sum_axis requires a 2-d tensor");
    let (m, n) = (a.shape().dim(0), a.shape().dim(1));
    match axis {
        0 => {
            let mut out = vec![T::ZERO; n];
            for i in 0..m {
                for (j, o) in out.iter_mut().enumerate() {
                    *o += a.as_slice()[i * n + j];
                }
            }
            Tensor::from_vec(out, &[n])
        }
        1 => {
            let mut out = vec![T::ZERO; m];
            for (i, o) in out.iter_mut().enumerate() {
                *o = a.as_slice()[i * n..(i + 1) * n].iter().copied().sum();
            }
            Tensor::from_vec(out, &[m])
        }
        _ => panic!("sum_axis axis must be 0 or 1, got {axis}"),
    }
}

/// `argmax` over a slice, returning the index of the first maximal element.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn argmax<T: Scalar>(xs: &[T]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Maximum absolute difference between two equally-shaped tensors —
/// the workhorse of numerical-equivalence tests.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn max_abs_diff<T: Scalar>(a: &Tensor<T>, b: &Tensor<T>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "max_abs_diff shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y).abs().to_f64())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outer_and_dot_agree() {
        let a = Tensor::from_vec(vec![1.0_f64, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0_f64, 5.0, 6.0], &[3]);
        assert_eq!(dot(&a, &b), 32.0);
        let o = outer(&a, &b);
        // trace of outer(a,b) with equal lengths = dot(a,b)
        let trace: f64 = (0..3).map(|i| o.at(&[i, i])).sum();
        assert_eq!(trace, 32.0);
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal() {
        let a = Tensor::from_vec(vec![1.0_f64, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let g = gram(&a);
        assert_eq!(g.dims(), &[2, 2]);
        assert_eq!(g.at(&[0, 1]), g.at(&[1, 0]));
        assert!(g.at(&[0, 0]) > 0.0 && g.at(&[1, 1]) > 0.0);
    }

    #[test]
    fn rows_cols() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        assert_eq!(row(&a, 1).as_slice(), &[3.0, 4.0, 5.0]);
        assert_eq!(col(&a, 2).as_slice(), &[2.0, 5.0]);
    }

    #[test]
    fn sum_axis_both_ways() {
        let a = Tensor::from_vec((1..=6).map(|i| i as f64).collect(), &[2, 3]);
        assert_eq!(sum_axis(&a, 0).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(sum_axis(&a, 1).as_slice(), &[6.0, 15.0]);
    }

    #[test]
    fn argmax_first_of_ties() {
        assert_eq!(argmax(&[1.0_f32, 5.0, 5.0, 2.0]), 1);
        assert_eq!(argmax(&[-3.0_f64]), 0);
    }

    #[test]
    fn max_abs_diff_zero_for_identical() {
        let a = Tensor::from_vec(vec![1.0_f32, 2.0], &[2]);
        assert_eq!(max_abs_diff(&a, &a), 0.0);
        let b = Tensor::from_vec(vec![1.5_f32, 2.0], &[2]);
        assert!((max_abs_diff(&a, &b) - 0.5).abs() < 1e-7);
    }
}
