//! Deterministic scoped-thread fan-out for the workspace's hot loops.
//!
//! This is the software stand-in for the accelerator's parallel PE banks:
//! independent work items (output-block rows, batch samples, simulation
//! tiles) are distributed over a fixed pool of `std::thread::scope` workers.
//! No work stealing, no shared mutable state — each worker owns a contiguous
//! range of items, so the outputs (and therefore any floating-point results)
//! are **identical for every worker count**, including the serial fallback.
//!
//! The worker count comes from `std::thread::available_parallelism()`, and
//! can be overridden with the `RPBCM_THREADS` environment variable (read
//! once per process). All helpers fall back to a plain serial loop when the
//! item count or worker count is 1, so callers can use them unconditionally.
//!
//! The FFT plan cache (`fft::plan`) is thread-local; each worker builds its
//! own plans on first use and reuses them for the rest of the scope. See
//! `fft::plan` for the cache-bound discussion.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Fan-outs that actually spawned scoped workers.
static JOBS: telemetry::Counter = telemetry::Counter::new("tensor.parallel.jobs");
/// Fan-outs that took the serial fallback (one item or one worker).
static SERIAL_JOBS: telemetry::Counter = telemetry::Counter::new("tensor.parallel.serial_jobs");
/// Work items (rows, chunks, tiles) distributed across workers.
static ITEMS: telemetry::Counter = telemetry::Counter::new("tensor.parallel.items");
/// Scoped worker threads spawned.
static WORKERS_SPAWNED: telemetry::Counter =
    telemetry::Counter::new("tensor.parallel.workers_spawned");
/// Per-worker busy-time distribution (nanoseconds): `sum / count` is mean
/// busy time per worker, the p50–p99 spread shows straggler workers, and
/// comparing the sum against `scope_wall` gives pool utilization.
static WORKER_BUSY: telemetry::Histogram = telemetry::Histogram::new("tensor.parallel.worker_busy");
/// Wall-time distribution of each parallel scope, spawn to join
/// (nanoseconds).
static SCOPE_WALL: telemetry::Histogram = telemetry::Histogram::new("tensor.parallel.scope_wall");
/// Worst observed partition imbalance: largest worker range divided by the
/// mean range. Contiguous splitting bounds this near 1 unless `n` is tiny
/// relative to the worker count.
static MAX_IMBALANCE: telemetry::Gauge =
    telemetry::Gauge::new("tensor.parallel.max_partition_imbalance");

/// Records one parallel fan-out of `n` items over `workers` ranges.
fn record_fanout(n: usize, workers: usize) {
    JOBS.inc();
    ITEMS.add(n as u64);
    WORKERS_SPAWNED.add(workers as u64);
    if telemetry::enabled() && n > 0 && workers > 0 {
        let largest = (0..workers)
            .map(|w| {
                let (lo, hi) = bounds(n, workers, w);
                hi - lo
            })
            .max()
            .unwrap_or(0);
        MAX_IMBALANCE.set_max(largest as f64 * workers as f64 / n as f64);
    }
}

/// The process-wide worker count: `RPBCM_THREADS` if set to a positive
/// integer, otherwise `std::thread::available_parallelism()` (1 if
/// unknown). Malformed values (`RPBCM_THREADS=abc`, `=0`) fall back to the
/// auto-detected count with a one-line warning (see `telemetry::env`).
pub fn max_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        telemetry::env::positive_usize_or("RPBCM_THREADS", || {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
    })
}

thread_local! {
    /// `true` while the current thread is inside a parallel worker (or an
    /// explicit [`serial_scope`]): nested default-count fan-outs then run
    /// serially instead of oversubscribing the machine with
    /// workers × workers threads.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The worker count the *default* helpers ([`par_map`], [`par_chunk_map`],
/// [`par_chunks_mut`]) use from the current thread: [`max_workers`] at top
/// level, `1` inside a parallel worker or a [`serial_scope`]. The
/// explicit-count `*_with` variants are unaffected.
pub fn current_workers() -> usize {
    if IN_WORKER.with(Cell::get) {
        1
    } else {
        max_workers()
    }
}

/// Runs `f` with default-count fan-outs forced serial on this thread (the
/// state nests and is restored on return). Used by callers that already
/// parallelize at a coarser grain — e.g. the data-parallel trainer runs
/// each minibatch shard under a `serial_scope` so per-layer tensor ops
/// don't spawn a second level of workers.
pub fn serial_scope<R>(f: impl FnOnce() -> R) -> R {
    IN_WORKER.with(|flag| {
        let prev = flag.replace(true);
        let out = f();
        flag.set(prev);
        out
    })
}

/// Contiguous partition of `n` items over `workers` ranges: range `w` is
/// `bounds(n, workers, w).0 .. bounds(n, workers, w).1`.
fn bounds(n: usize, workers: usize, w: usize) -> (usize, usize) {
    (w * n / workers, (w + 1) * n / workers)
}

/// Maps `f` over `items` with an explicit worker count, preserving order.
///
/// `f` receives `(index, &item)`. Results are identical to the serial
/// `items.iter().enumerate().map(f)` for every `workers` value.
pub fn par_map_with<I, O, F>(workers: usize, items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    if workers == 1 {
        SERIAL_JOBS.inc();
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    record_fanout(n, workers);
    let mut out: Vec<Option<O>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    {
        let _scope_span = SCOPE_WALL.span();
        let _scope_trace = telemetry::trace_span("par_map", "tensor.parallel");
        let mut rest: &mut [Option<O>] = &mut out;
        let mut consumed = 0usize;
        std::thread::scope(|s| {
            for w in 0..workers {
                let (lo, hi) = bounds(n, workers, w);
                let (slot, tail) = rest.split_at_mut(hi - consumed);
                rest = tail;
                consumed = hi;
                let f = &f;
                s.spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    let _busy_span = WORKER_BUSY.span();
                    let _busy_trace = telemetry::trace_span("worker", "tensor.parallel");
                    for (k, slot) in slot.iter_mut().enumerate() {
                        let i = lo + k;
                        *slot = Some(f(i, &items[i]));
                    }
                });
            }
        });
    }
    out.into_iter()
        .map(|o| o.expect("worker filled slot"))
        .collect()
}

/// [`par_map_with`] using the thread's [`current_workers`] count
/// ([`max_workers`] at top level, serial inside a worker).
pub fn par_map<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    par_map_with(current_workers(), items, f)
}

/// Applies `f` to each `chunk`-sized piece of `data` (last piece may be
/// short) with an explicit worker count, returning the per-chunk outputs in
/// chunk order. `f` receives `(chunk_index, chunk)`.
///
/// Chunks are disjoint, so this is deterministic for every `workers` value.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn par_chunk_map_with<T, O, F>(workers: usize, data: &mut [T], chunk: usize, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(usize, &mut [T]) -> O + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let n = data.len().div_ceil(chunk);
    let workers = workers.clamp(1, n.max(1));
    if workers == 1 {
        SERIAL_JOBS.inc();
        return data
            .chunks_mut(chunk)
            .enumerate()
            .map(|(i, c)| f(i, c))
            .collect();
    }
    record_fanout(n, workers);
    let mut chunks: Vec<&mut [T]> = data.chunks_mut(chunk).collect();
    let mut out: Vec<Option<O>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    {
        let _scope_span = SCOPE_WALL.span();
        let _scope_trace = telemetry::trace_span("par_chunk_map", "tensor.parallel");
        let mut chunk_rest: &mut [&mut [T]] = &mut chunks;
        let mut out_rest: &mut [Option<O>] = &mut out;
        let mut consumed = 0usize;
        std::thread::scope(|s| {
            for w in 0..workers {
                let (lo, hi) = bounds(n, workers, w);
                let (my_chunks, ctail) = chunk_rest.split_at_mut(hi - consumed);
                let (my_out, otail) = out_rest.split_at_mut(hi - consumed);
                chunk_rest = ctail;
                out_rest = otail;
                consumed = hi;
                let f = &f;
                s.spawn(move || {
                    IN_WORKER.with(|flag| flag.set(true));
                    let _busy_span = WORKER_BUSY.span();
                    let _busy_trace = telemetry::trace_span("worker", "tensor.parallel");
                    for (k, (c, slot)) in my_chunks.iter_mut().zip(my_out.iter_mut()).enumerate() {
                        *slot = Some(f(lo + k, c));
                    }
                });
            }
        });
    }
    out.into_iter()
        .map(|o| o.expect("worker filled slot"))
        .collect()
}

/// [`par_chunk_map_with`] using the thread's [`current_workers`] count
/// ([`max_workers`] at top level, serial inside a worker).
pub fn par_chunk_map<T, O, F>(data: &mut [T], chunk: usize, f: F) -> Vec<O>
where
    T: Send,
    O: Send,
    F: Fn(usize, &mut [T]) -> O + Sync,
{
    par_chunk_map_with(current_workers(), data, chunk, f)
}

/// Runs `f` over each `chunk`-sized piece of `data` in parallel, discarding
/// outputs. `f` receives `(chunk_index, chunk)`.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunk_map(data, chunk, |i, c| f(i, c));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_workers_is_positive() {
        assert!(max_workers() >= 1);
    }

    #[test]
    fn partition_covers_everything_once() {
        for n in [0usize, 1, 2, 7, 8, 100] {
            for workers in 1..=9usize {
                let mut covered = 0;
                for w in 0..workers {
                    let (lo, hi) = bounds(n, workers, w);
                    assert!(lo <= hi && hi <= n);
                    covered += hi - lo;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn par_map_matches_serial_for_every_worker_count() {
        let items: Vec<i64> = (0..103).collect();
        let want: Vec<i64> = items
            .iter()
            .enumerate()
            .map(|(i, v)| v * 3 + i as i64)
            .collect();
        for workers in [1, 2, 3, 8, 200] {
            let got = par_map_with(workers, &items, |i, v| v * 3 + i as i64);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn par_chunk_map_sees_disjoint_ordered_chunks() {
        let mut data: Vec<u32> = (0..25).collect();
        let want_sums: Vec<u32> = data.chunks(4).map(|c| c.iter().sum()).collect();
        for workers in [1, 2, 5, 64] {
            let mut d = data.clone();
            let sums = par_chunk_map_with(workers, &mut d, 4, |i, c| {
                for v in c.iter_mut() {
                    *v += 100 * i as u32;
                }
                c.iter().map(|v| v % 100).sum::<u32>()
            });
            assert_eq!(sums, want_sums);
            for (i, c) in d.chunks(4).enumerate() {
                assert!(c.iter().all(|v| v / 100 == i as u32));
            }
        }
        // Serial path leaves data untouched semantics identical.
        let sums = par_chunk_map_with(1, &mut data, 4, |_, c| c.iter().sum::<u32>());
        assert_eq!(sums, want_sums);
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk() {
        let mut data = vec![0u8; 17];
        par_chunks_mut(&mut data, 3, |i, c| {
            for v in c.iter_mut() {
                *v = i as u8 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[16], 6); // chunk 5, last short chunk
    }

    #[test]
    #[should_panic(expected = "chunk size")]
    fn zero_chunk_rejected() {
        par_chunks_mut(&mut [0u8; 4], 0, |_, _| {});
    }

    #[test]
    fn serial_scope_forces_default_helpers_serial() {
        assert_eq!(current_workers(), max_workers());
        let (inner, restored) = serial_scope(|| {
            assert_eq!(current_workers(), 1);
            // Nesting keeps the state and restores the outer scope's.
            let nested = serial_scope(current_workers);
            (nested, current_workers())
        });
        assert_eq!(inner, 1);
        assert_eq!(restored, 1);
        assert_eq!(current_workers(), max_workers());
    }

    #[test]
    fn workers_run_nested_default_fanouts_serially() {
        // From inside a spawned worker, the default helpers must not spawn
        // a second level of workers.
        let items = [0usize; 4];
        let nested_counts = par_map_with(4, &items, |_, _| current_workers());
        assert!(nested_counts.iter().all(|&w| w == 1), "{nested_counts:?}");
        // Results are still correct when a nested helper actually runs.
        let got = par_map_with(2, &[1i64, 2, 3, 4], |_, &v| {
            par_map(&[v, v + 10], |_, &u| u * 2).iter().sum::<i64>()
        });
        assert_eq!(got, vec![24, 28, 32, 36]);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let out: Vec<i32> = par_map_with(4, &[] as &[i32], |_, v| *v);
        assert!(out.is_empty());
        let got = par_chunk_map_with(4, &mut [] as &mut [i32], 3, |_, c| c.len());
        assert!(got.is_empty());
    }
}
