//! The [`Scalar`] trait: the small floating-point surface the rest of the
//! workspace is generic over (`f32` for training, `f64` for spectral
//! analysis).

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point element type for [`crate::Tensor`].
///
/// Implemented for `f32` and `f64` only; the trait is sealed by convention
/// (nothing outside this workspace should implement it).
///
/// # Example
///
/// ```
/// use tensor::Scalar;
///
/// fn hypot<T: Scalar>(a: T, b: T) -> T {
///     (a * a + b * b).sqrt()
/// }
/// assert!((hypot(3.0_f64, 4.0) - 5.0).abs() < 1e-12);
/// ```
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon.
    const EPSILON: Self;

    /// Converts from `f64`, rounding to the nearest representable value.
    fn from_f64(v: f64) -> Self;
    /// Converts to `f64` exactly (both implementors widen losslessly or are
    /// already `f64`).
    fn to_f64(self) -> f64;
    /// Converts from `usize` (used for averaging by counts).
    fn from_usize(v: usize) -> Self {
        Self::from_f64(v as f64)
    }

    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Raises to a floating-point power.
    fn powf(self, e: Self) -> Self;
    /// Raises to an integer power.
    fn powi(self, e: i32) -> Self;
    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Hyperbolic tangent.
    fn tanh(self) -> Self;
    /// `true` if the value is finite (not NaN or infinite).
    fn is_finite(self) -> bool;
    /// Larger of two values (NaN-propagating like `f64::max` is fine here).
    fn maximum(self, other: Self) -> Self;
    /// Smaller of two values.
    fn minimum(self, other: Self) -> Self;
}

macro_rules! impl_scalar {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;

            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline]
            fn ln(self) -> Self {
                self.ln()
            }
            #[inline]
            fn powf(self, e: Self) -> Self {
                self.powf(e)
            }
            #[inline]
            fn powi(self, e: i32) -> Self {
                self.powi(e)
            }
            #[inline]
            fn sin(self) -> Self {
                self.sin()
            }
            #[inline]
            fn cos(self) -> Self {
                self.cos()
            }
            #[inline]
            fn tanh(self) -> Self {
                self.tanh()
            }
            #[inline]
            fn is_finite(self) -> bool {
                self.is_finite()
            }
            #[inline]
            fn maximum(self, other: Self) -> Self {
                self.max(other)
            }
            #[inline]
            fn minimum(self, other: Self) -> Self {
                self.min(other)
            }
        }
    };
}

impl_scalar!(f32);
impl_scalar!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_std() {
        assert_eq!(f32::ZERO, 0.0_f32);
        assert_eq!(f64::ONE, 1.0_f64);
        assert_eq!(<f32 as Scalar>::EPSILON, f32::EPSILON);
    }

    #[test]
    fn conversions_round_trip() {
        let x = 1.5_f64;
        assert_eq!(f64::from_f64(x).to_f64(), 1.5);
        assert_eq!(f32::from_f64(x).to_f64(), 1.5);
        assert_eq!(f32::from_usize(7), 7.0);
    }

    #[test]
    fn math_delegates() {
        assert!((2.0_f32.sqrt() - std::f32::consts::SQRT_2).abs() < 1e-7);
        assert_eq!((-3.0_f64).abs(), 3.0);
        assert_eq!(2.0_f64.powi(10), 1024.0);
        assert_eq!(Scalar::maximum(1.0_f32, 2.0), 2.0);
        assert_eq!(Scalar::minimum(1.0_f32, 2.0), 1.0);
        assert!(!f64::NAN.is_finite());
    }
}
