//! Tensor shapes and row-major strides.

use std::fmt;

/// The extent of a [`crate::Tensor`] along each dimension, row-major.
///
/// # Example
///
/// ```
/// use tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.offset(&[1, 2, 3]), 23);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; zero-sized tensors are never
    /// meaningful in this workspace and allowing them would push emptiness
    /// checks into every kernel.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape dimensions must be non-zero, got {dims:?}"
        );
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank of the array, not the matrix rank).
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// `true` if the shape has no dimensions (a scalar-like 0-d tensor).
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Extent along dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.ndim()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong arity or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index arity {} does not match shape {self}",
            index.len()
        );
        let mut off = 0;
        let mut stride = 1;
        for axis in (0..self.dims.len()).rev() {
            assert!(
                index[axis] < self.dims[axis],
                "index {index:?} out of bounds for shape {self}"
            );
            off += index[axis] * stride;
            stride *= self.dims[axis];
        }
        off
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape({:?})", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[4, 2, 8, 8]);
        assert_eq!(s.strides(), vec![128, 64, 8, 1]);
        assert_eq!(s.len(), 512);
        assert_eq!(s.ndim(), 4);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[3, 5, 7]);
        let strides = s.strides();
        for i in 0..3 {
            for j in 0..5 {
                for k in 0..7 {
                    let want = i * strides[0] + j * strides[1] + k * strides[2];
                    assert_eq!(s.offset(&[i, j, k]), want);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_rejects_out_of_bounds() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dim_rejected() {
        Shape::new(&[2, 0, 2]);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2x3]");
    }
}
