//! Descriptive statistics and Gaussian kernel-density estimation.
//!
//! The paper's Fig. 5 plots the KDE of pruning-unit ℓ₂ norms to show that
//! BCM pruning units have a *wider* norm distribution (larger deviation,
//! minimum closer to zero) than conventional CNN filters — the property that
//! makes norm-based BCM-wise pruning effective. [`Kde`] reproduces that
//! analysis; [`Summary`] carries the min/max/deviation the argument rests on.

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// Returns all-zero summary for an empty sample (count = 0).
    ///
    /// # Example
    ///
    /// ```
    /// use tensor::stats::Summary;
    ///
    /// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
    /// assert_eq!(s.mean, 2.5);
    /// assert_eq!(s.min, 1.0);
    /// assert_eq!(s.max, 4.0);
    /// ```
    pub fn of(sample: &[f64]) -> Self {
        if sample.is_empty() {
            return Summary::default();
        }
        let n = sample.len() as f64;
        let mean = sample.iter().sum::<f64>() / n;
        let var = sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let min = sample.iter().copied().fold(f64::INFINITY, f64::min);
        let max = sample.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            count: sample.len(),
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Coefficient of variation (σ/μ); `0` when the mean is zero.
    ///
    /// The paper's requirement (i) for norm-based pruning — "the deviation of
    /// norm should be large" — is naturally compared through this
    /// scale-free ratio.
    pub fn coeff_of_variation(&self) -> f64 {
        if self.mean.abs() < f64::MIN_POSITIVE {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }

    /// Ratio of the minimum to the mean; the paper's requirement (ii) —
    /// "the smallest norm should be small" — compares this across weight
    /// types. `0` when the mean is zero.
    pub fn min_over_mean(&self) -> f64 {
        if self.mean.abs() < f64::MIN_POSITIVE {
            0.0
        } else {
            self.min / self.mean
        }
    }
}

/// Gaussian kernel-density estimate over a 1-d sample (Silverman, 2018 —
/// the reference the paper cites for its Fig. 5 curves).
#[derive(Debug, Clone, PartialEq)]
pub struct Kde {
    sample: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Fits a KDE with Silverman's rule-of-thumb bandwidth
    /// `h = 0.9 · min(σ, IQR/1.34) · n^(-1/5)`.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty.
    ///
    /// # Example
    ///
    /// ```
    /// use tensor::stats::Kde;
    ///
    /// let kde = Kde::fit(&[0.0, 0.1, 0.2, 1.0, 1.1, 1.2]);
    /// // Density near a cluster beats density in the gap between clusters.
    /// assert!(kde.density(0.1) > kde.density(0.6));
    /// ```
    pub fn fit(sample: &[f64]) -> Self {
        assert!(!sample.is_empty(), "cannot fit a KDE to an empty sample");
        let summary = Summary::of(sample);
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        let q = |p: f64| -> f64 {
            let idx = p * (sorted.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let frac = idx - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        };
        let iqr = q(0.75) - q(0.25);
        let sigma = summary.std_dev;
        let spread = if iqr > 0.0 {
            sigma.min(iqr / 1.34)
        } else {
            sigma
        };
        let n = sample.len() as f64;
        let bandwidth = (0.9 * spread * n.powf(-0.2)).max(1e-9);
        Kde {
            sample: sample.to_vec(),
            bandwidth,
        }
    }

    /// Fits with an explicit bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or `bandwidth <= 0`.
    pub fn fit_with_bandwidth(sample: &[f64], bandwidth: f64) -> Self {
        assert!(!sample.is_empty(), "cannot fit a KDE to an empty sample");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        Kde {
            sample: sample.to_vec(),
            bandwidth,
        }
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Estimated density at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / ((self.sample.len() as f64) * h * (2.0 * std::f64::consts::PI).sqrt());
        self.sample
            .iter()
            .map(|&xi| {
                let u = (x - xi) / h;
                (-0.5 * u * u).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Evaluates the density on `points` evenly spaced grid positions across
    /// `[lo, hi]`, returning `(x, density)` pairs — the series for a Fig. 5
    /// style plot.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2` or `hi <= lo`.
    pub fn grid(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "grid needs at least two points");
        assert!(hi > lo, "grid needs hi > lo");
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * (i as f64) / ((points - 1) as f64);
                (x, self.density(x))
            })
            .collect()
    }
}

/// Builds a histogram with `bins` equal-width bins over `[lo, hi]`;
/// out-of-range samples are clamped to the end bins.
///
/// # Panics
///
/// Panics if `bins == 0` or `hi <= lo`.
pub fn histogram(sample: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(hi > lo, "histogram needs hi > lo");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in sample {
        let idx = (((x - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

/// Pearson correlation coefficient of two equal-length samples;
/// `0` when either is constant.
///
/// # Panics
///
/// Panics if lengths differ or samples are empty.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson length mismatch");
    assert!(!a.is_empty(), "pearson of empty samples");
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va <= 0.0 || vb <= 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.coeff_of_variation() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_default() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn kde_integrates_to_about_one() {
        let kde = Kde::fit(&[0.0, 0.5, 1.0, 1.5, 2.0]);
        // Trapezoidal integration over a generous range.
        let grid = kde.grid(-5.0, 7.0, 2001);
        let mut integral = 0.0;
        for w in grid.windows(2) {
            integral += 0.5 * (w[0].1 + w[1].1) * (w[1].0 - w[0].0);
        }
        assert!((integral - 1.0).abs() < 1e-3, "integral = {integral}");
    }

    #[test]
    fn kde_peak_near_mode() {
        let kde = Kde::fit_with_bandwidth(&[1.0, 1.0, 1.0, 5.0], 0.3);
        assert!(kde.density(1.0) > kde.density(5.0));
        assert!(kde.density(5.0) > kde.density(3.0));
    }

    #[test]
    fn kde_constant_sample_has_floor_bandwidth() {
        let kde = Kde::fit(&[2.0, 2.0, 2.0]);
        assert!(kde.bandwidth() > 0.0);
        assert!(kde.density(2.0) > kde.density(3.0));
    }

    #[test]
    fn histogram_counts_and_clamping() {
        let h = histogram(&[0.1, 0.2, 0.9, -1.0, 2.0], 0.0, 1.0, 2);
        // -1.0 clamps into bin 0; 0.9 and 2.0 into bin 1.
        assert_eq!(h, vec![3, 2]);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        let c = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[5.0, 5.0, 5.0]), 0.0);
    }
}
