//! Singular value decomposition (one-sided Jacobi) and the rank-condition
//! measures the paper builds on.
//!
//! The paper inspects the *decay of singular values* of BS×BS circulant
//! blocks (Figs. 2, 9a) and declares a block in **poor rank-condition** when
//! more than 50 % of its singular values are below 5 % of the largest one —
//! "a simple special case of the effective rank measure" (Roy & Vetterli,
//! EUSIPCO 2007). This module provides:
//!
//! - [`singular_values`]: all singular values, descending;
//! - [`effective_rank`]: the entropy-based effective rank;
//! - [`PoorRankCriterion`]: the paper's 50 %/5 % predicate, configurable.

use crate::{Scalar, Tensor};

/// Maximum number of Jacobi sweeps before giving up; convergence for the
/// small (≤ 64×64) matrices in this workspace happens in ≤ 10 sweeps.
const MAX_SWEEPS: usize = 60;

/// Computes all singular values of a 2-d tensor, sorted descending.
///
/// Uses one-sided Jacobi rotations on the columns of `A` (transposing first
/// when the matrix is wide), which is simple, numerically robust and exact
/// enough for the ≤ 64×64 blocks this workspace analyses.
///
/// # Panics
///
/// Panics if `a` is not 2-d.
///
/// # Example
///
/// ```
/// use tensor::{svd, Tensor};
///
/// // A diagonal matrix's singular values are |diagonal| sorted descending.
/// let a = Tensor::from_vec(vec![3.0_f64, 0.0, 0.0, -5.0], &[2, 2]);
/// let s = svd::singular_values(&a);
/// assert!((s[0] - 5.0).abs() < 1e-12);
/// assert!((s[1] - 3.0).abs() < 1e-12);
/// ```
pub fn singular_values<T: Scalar>(a: &Tensor<T>) -> Vec<f64> {
    assert_eq!(a.shape().ndim(), 2, "singular_values requires a 2-d tensor");
    let a64: Tensor<f64> = a.cast();
    let tall = if a64.shape().dim(0) >= a64.shape().dim(1) {
        a64
    } else {
        a64.transpose()
    };
    let (m, n) = (tall.shape().dim(0), tall.shape().dim(1));
    // Column-major working copy: cols[j][i] = A[i][j].
    let mut cols: Vec<Vec<f64>> = (0..n)
        .map(|j| (0..m).map(|i| tall.as_slice()[i * n + j]).collect())
        .collect();

    let eps = f64::EPSILON * (m as f64).sqrt();
    for _ in 0..MAX_SWEEPS {
        let mut off = 0.0_f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let (mut app, mut aqq, mut apq) = (0.0, 0.0, 0.0);
                for i in 0..m {
                    app += cols[p][i] * cols[p][i];
                    aqq += cols[q][i] * cols[q][i];
                    apq += cols[p][i] * cols[q][i];
                }
                if apq.abs() <= eps * (app * aqq).sqrt() {
                    continue;
                }
                off = off.max(apq.abs() / (app * aqq).sqrt().max(f64::MIN_POSITIVE));
                // Jacobi rotation zeroing the (p,q) entry of AᵀA.
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let vp = cols[p][i];
                    let vq = cols[q][i];
                    cols[p][i] = c * vp - s * vq;
                    cols[q][i] = s * vp + c * vq;
                }
            }
        }
        if off < 1e-14 {
            break;
        }
    }

    let mut sv: Vec<f64> = cols
        .iter()
        .map(|col| col.iter().map(|x| x * x).sum::<f64>().sqrt())
        .collect();
    sv.sort_by(|a, b| b.partial_cmp(a).expect("singular values are finite"));
    sv
}

/// The numerical rank: the number of singular values above
/// `tol * max_singular_value`.
///
/// # Panics
///
/// Panics if `a` is not 2-d.
pub fn numerical_rank<T: Scalar>(a: &Tensor<T>, tol: f64) -> usize {
    let sv = singular_values(a);
    let smax = sv.first().copied().unwrap_or(0.0);
    if smax <= 0.0 {
        return 0;
    }
    sv.iter().filter(|&&s| s > tol * smax).count()
}

/// Entropy-based effective rank of Roy & Vetterli:
/// `erank(A) = exp(H(p))` where `p_i = σ_i / Σσ` and `H` is the Shannon
/// entropy in nats.
///
/// Ranges from 1 (rank-1 spectrum) to `min(m,n)` (flat spectrum).
///
/// # Panics
///
/// Panics if `a` is not 2-d.
///
/// # Example
///
/// ```
/// use tensor::{svd, Tensor};
///
/// let i = Tensor::<f64>::eye(4);
/// assert!((svd::effective_rank(&i) - 4.0).abs() < 1e-9);
/// ```
pub fn effective_rank<T: Scalar>(a: &Tensor<T>) -> f64 {
    let sv = singular_values(a);
    let total: f64 = sv.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let h: f64 = sv
        .iter()
        .filter(|&&s| s > 0.0)
        .map(|&s| {
            let p = s / total;
            -p * p.ln()
        })
        .sum();
    h.exp()
}

/// The paper's poor-rank-condition predicate.
///
/// A matrix is in poor rank-condition when strictly more than
/// `fraction` of its singular values have magnitude below
/// `threshold` × the largest singular value. The paper uses
/// `fraction = 0.5`, `threshold = 0.05`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoorRankCriterion {
    /// Fraction of singular values that must be "small" (paper: 0.5).
    pub fraction: f64,
    /// "Small" means below this multiple of σ_max (paper: 0.05).
    pub threshold: f64,
}

impl Default for PoorRankCriterion {
    fn default() -> Self {
        PoorRankCriterion {
            fraction: 0.5,
            threshold: 0.05,
        }
    }
}

impl PoorRankCriterion {
    /// The paper's exact setting (>50 % of σ below 5 % of σ_max).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Evaluates the predicate on a precomputed descending spectrum.
    ///
    /// An all-zero spectrum is vacuously poor (the zero matrix carries no
    /// feature information).
    pub fn is_poor_spectrum(&self, sv: &[f64]) -> bool {
        let smax = sv.first().copied().unwrap_or(0.0);
        if smax <= 0.0 {
            return true;
        }
        let small = sv.iter().filter(|&&s| s < self.threshold * smax).count();
        (small as f64) > self.fraction * (sv.len() as f64)
    }

    /// Evaluates the predicate on a matrix.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not 2-d.
    pub fn is_poor<T: Scalar>(&self, a: &Tensor<T>) -> bool {
        self.is_poor_spectrum(&singular_values(a))
    }
}

/// Normalizes a spectrum by its largest value so decay curves of different
/// matrices can be overlaid (as the paper's Figs. 2/9a do).
///
/// Returns an empty vector when the spectrum is all zero.
pub fn normalized_spectrum(sv: &[f64]) -> Vec<f64> {
    let smax = sv.first().copied().unwrap_or(0.0);
    if smax <= 0.0 {
        return Vec::new();
    }
    sv.iter().map(|&s| s / smax).collect()
}

/// Reconstruction check helper: `‖AᵀA‖_F` via singular values must equal
/// `sqrt(Σ σ_i⁴)`; exposed for tests and for validating the Jacobi sweep.
pub fn spectrum_frobenius(sv: &[f64]) -> f64 {
    sv.iter().map(|s| s * s).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{init, ops};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_spectrum_is_flat() {
        let sv = singular_values(&Tensor::<f64>::eye(8));
        for s in &sv {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_one_matrix() {
        let u = Tensor::from_vec(vec![1.0_f64, 2.0, 3.0], &[3]);
        let v = Tensor::from_vec(vec![4.0_f64, 5.0], &[2]);
        let a = ops::outer(&u, &v);
        let sv = singular_values(&a);
        assert!(sv[0] > 0.0);
        assert!(sv[1].abs() < 1e-10);
        assert_eq!(numerical_rank(&a, 1e-9), 1);
        assert!((effective_rank(&a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn frobenius_norm_matches_spectrum() {
        let mut rng = StdRng::seed_from_u64(42);
        let a: Tensor<f64> = init::gaussian(&mut rng, &[7, 5], 0.0, 1.0);
        let sv = singular_values(&a);
        let fro: f64 = a.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt();
        let fro_sv: f64 = sv.iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!((fro - fro_sv).abs() < 1e-9, "{fro} vs {fro_sv}");
    }

    #[test]
    fn wide_matrix_transposed_internally() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: Tensor<f64> = init::gaussian(&mut rng, &[3, 9], 0.0, 1.0);
        let sv_a = singular_values(&a);
        let sv_t = singular_values(&a.transpose());
        assert_eq!(sv_a.len(), sv_t.len());
        for (x, y) in sv_a.iter().zip(&sv_t) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn gaussian_matrix_is_not_poor_rank() {
        let mut rng = StdRng::seed_from_u64(7);
        let a: Tensor<f64> = init::gaussian(&mut rng, &[16, 16], 0.0, 1.0);
        assert!(!PoorRankCriterion::paper().is_poor(&a));
    }

    #[test]
    fn near_singular_matrix_is_poor_rank() {
        // One dominant direction, everything else tiny.
        let mut a = Tensor::<f64>::zeros(&[16, 16]);
        a.set(&[0, 0], 100.0);
        for i in 1..16 {
            a.set(&[i, i], 0.001);
        }
        assert!(PoorRankCriterion::paper().is_poor(&a));
    }

    #[test]
    fn effective_rank_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let a: Tensor<f64> = init::gaussian(&mut rng, &[10, 10], 0.0, 1.0);
        let er = effective_rank(&a);
        assert!(er > 1.0 && er <= 10.0 + 1e-9, "erank = {er}");
    }

    #[test]
    fn normalized_spectrum_starts_at_one() {
        let sv = vec![4.0, 2.0, 1.0];
        let n = normalized_spectrum(&sv);
        assert_eq!(n, vec![1.0, 0.5, 0.25]);
        assert!(normalized_spectrum(&[0.0, 0.0]).is_empty());
    }

    #[test]
    fn zero_matrix_edge_cases() {
        let z = Tensor::<f64>::zeros(&[4, 4]);
        assert_eq!(numerical_rank(&z, 1e-9), 0);
        assert_eq!(effective_rank(&z), 0.0);
        assert!(PoorRankCriterion::paper().is_poor(&z));
    }

    #[test]
    fn known_2x2_svd() {
        // A = [[1, 0], [0, 0]] has σ = (1, 0); A = [[0, 2], [1, 0]] has σ = (2, 1).
        let a = Tensor::from_vec(vec![0.0_f64, 2.0, 1.0, 0.0], &[2, 2]);
        let sv = singular_values(&a);
        assert!((sv[0] - 2.0).abs() < 1e-12);
        assert!((sv[1] - 1.0).abs() < 1e-12);
    }
}
