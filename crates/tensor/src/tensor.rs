//! The owned, row-major, n-dimensional array.

use crate::{Scalar, Shape};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// An owned, contiguous, row-major n-dimensional array of [`Scalar`]s.
///
/// Conventions used across the workspace:
/// - feature maps: `[batch, channels, height, width]` (NCHW),
/// - convolution weights: `[c_out, c_in, kh, kw]`,
/// - matrices: `[rows, cols]`.
///
/// # Example
///
/// ```
/// use tensor::Tensor;
///
/// let t = Tensor::<f32>::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor<T: Scalar = f32> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Scalar> Tensor<T> {
    /// Creates a tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![T::ZERO; shape.len()];
        Tensor { shape, data }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: T) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.len()];
        Tensor { shape, data }
    }

    /// Creates a tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, T::ONE)
    }

    /// Creates an `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = T::ONE;
        }
        t
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn from_vec(data: Vec<T>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer of {} elements cannot form shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// Builds a tensor by evaluating `f` at every linear index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> T) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.len()).map(&mut f).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents, shorthand for `self.shape().dims()`.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` only for 0-dimensional tensors (which this crate never
    /// constructs, but the method keeps clippy's `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying buffer (row-major).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong arity.
    pub fn at(&self, index: &[usize]) -> T {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong arity.
    pub fn set(&mut self, index: &[usize], value: T) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.len(),
            self.len(),
            "cannot reshape {} to {shape}",
            self.shape
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Applies `f` element-wise, producing a new tensor.
    pub fn map(&self, mut f: impl FnMut(T) -> T) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` element-wise in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(T) -> T) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise binary operation with another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Self, mut f: impl FnMut(T, T) -> T) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> T {
        self.data.iter().copied().sum()
    }

    /// Arithmetic mean of all elements.
    pub fn mean(&self) -> T {
        self.sum() / T::from_usize(self.len())
    }

    /// Largest element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn max(&self) -> T {
        self.data
            .iter()
            .copied()
            .reduce(|a, b| a.maximum(b))
            .expect("max of empty tensor")
    }

    /// Smallest element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn min(&self) -> T {
        self.data
            .iter()
            .copied()
            .reduce(|a, b| a.minimum(b))
            .expect("min of empty tensor")
    }

    /// Euclidean (ℓ₂/Frobenius) norm of all elements.
    pub fn norm_l2(&self) -> T {
        self.data.iter().map(|&x| x * x).sum::<T>().sqrt()
    }

    /// Sum of absolute values (ℓ₁ norm).
    pub fn norm_l1(&self) -> T {
        self.data.iter().map(|&x| x.abs()).sum()
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: T) -> Self {
        self.map(|x| x * s)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hadamard(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a * b)
    }

    /// Matrix product of two 2-d tensors.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-d or the inner dimensions differ.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.shape.ndim(), 2, "matmul lhs must be 2-d");
        assert_eq!(other.shape.ndim(), 2, "matmul rhs must be 2-d");
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let mut out = vec![T::ZERO; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a 2-d tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-d.
    pub fn transpose(&self) -> Self {
        assert_eq!(self.shape.ndim(), 2, "transpose requires a 2-d tensor");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![T::ZERO; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Converts the element type (e.g. widening `f32` analysis data to
    /// `f64` for SVD).
    pub fn cast<U: Scalar>(&self) -> Tensor<U> {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| U::from_f64(x.to_f64())).collect(),
        }
    }

    /// `true` if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl<T: Scalar> fmt::Debug for Tensor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.len() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:?}, {:?}, ...; {} elems]",
                self.data[0],
                self.data[1],
                self.len()
            )
        }
    }
}

impl<T: Scalar> Add for &Tensor<T> {
    type Output = Tensor<T>;
    fn add(self, rhs: Self) -> Tensor<T> {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl<T: Scalar> Sub for &Tensor<T> {
    type Output = Tensor<T>;
    fn sub(self, rhs: Self) -> Tensor<T> {
        self.zip_map(rhs, |a, b| a - b)
    }
}

/// Element-wise (Hadamard) product; matrix product is the explicit
/// [`Tensor::matmul`] so that `*` never surprises.
impl<T: Scalar> Mul for &Tensor<T> {
    type Output = Tensor<T>;
    fn mul(self, rhs: Self) -> Tensor<T> {
        self.hadamard(rhs)
    }
}

impl<T: Scalar> Neg for &Tensor<T> {
    type Output = Tensor<T>;
    fn neg(self) -> Tensor<T> {
        self.map(|x| -x)
    }
}

impl<T: Scalar> AddAssign<&Tensor<T>> for Tensor<T> {
    fn add_assign(&mut self, rhs: &Tensor<T>) {
        assert_eq!(
            self.shape, rhs.shape,
            "shape mismatch: {} vs {}",
            self.shape, rhs.shape
        );
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl<T: Scalar> FromIterator<T> for Tensor<T> {
    /// Collects into a 1-d tensor.
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let data: Vec<T> = iter.into_iter().collect();
        let n = data.len();
        Tensor::from_vec(data, &[n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::<f32>::zeros(&[2, 2]);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let o = Tensor::<f64>::ones(&[3]);
        assert_eq!(o.sum(), 3.0);
        let e = Tensor::<f32>::eye(3);
        assert_eq!(e.at(&[1, 1]), 1.0);
        assert_eq!(e.at(&[1, 2]), 0.0);
        let f = Tensor::<f32>::from_fn(&[4], |i| i as f32);
        assert_eq!(f.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_identity_and_known_product() {
        let a = Tensor::from_vec(vec![1.0_f64, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i).as_slice(), a.as_slice());

        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(vec![1.0_f32, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn norms() {
        let a = Tensor::from_vec(vec![3.0_f32, -4.0], &[2]);
        assert!((a.norm_l2() - 5.0).abs() < 1e-6);
        assert!((a.norm_l1() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0_f32, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0_f32, 5.0], &[2]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * &b).as_slice(), &[3.0, 10.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
    }

    #[test]
    fn cast_widens() {
        let a = Tensor::from_vec(vec![1.5_f32, -2.25], &[2]);
        let b: Tensor<f64> = a.cast();
        assert_eq!(b.as_slice(), &[1.5, -2.25]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let b = a.reshape(&[3, 2]);
        assert_eq!(b.as_slice(), a.as_slice());
        assert_eq!(b.dims(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_map_rejects_mismatched_shapes() {
        let a = Tensor::<f32>::zeros(&[2]);
        let b = Tensor::<f32>::zeros(&[3]);
        let _ = a.zip_map(&b, |x, _| x);
    }

    #[test]
    fn min_max_mean() {
        let a = Tensor::from_vec(vec![2.0_f32, -1.0, 4.0, 3.0], &[4]);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), -1.0);
        assert_eq!(a.mean(), 2.0);
    }

    #[test]
    fn from_iterator_collects_1d() {
        let t: Tensor<f32> = (0..5).map(|i| i as f32).collect();
        assert_eq!(t.dims(), &[5]);
    }
}
