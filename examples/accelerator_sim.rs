//! Drive the PYNQ-Z2 accelerator model: resources, power, the Fig. 10
//! pruning sweep, and full-network ResNet-18 throughput (the paper's
//! Table III row).
//!
//! Run with: `cargo run --example accelerator_sim`

use rpbcm_repro::hwsim::dataflow::{resnet18_layers, DataflowConfig, LayerShape};
use rpbcm_repro::hwsim::device::Xc7z020;
use rpbcm_repro::hwsim::power::{power_w, Efficiency, GpuReference};
use rpbcm_repro::hwsim::resources::AcceleratorConfig;

fn main() {
    // Resource estimate of the BS=8 / p=32 design point.
    let accel = AcceleratorConfig::pynq_z2();
    let est = accel.estimate();
    let util = Xc7z020::utilization(&est);
    println!("== resources (XC7Z020) ==");
    println!(
        "LUT  {:>6} ({:>4.1}%)\nFF   {:>6} ({:>4.1}%)\nDSP  {:>6} ({:>4.1}%)\nBRAM {:>6.1} ({:>4.1}%)",
        est.lut,
        util.lut * 100.0,
        est.ff,
        util.ff * 100.0,
        est.dsp,
        util.dsp * 100.0,
        est.bram_36k,
        util.bram * 100.0
    );

    let cfg = DataflowConfig::pynq_z2();
    let p = power_w(&est, cfg.freq_mhz);
    println!("\nestimated power @ {:.0} MHz: {p:.2} W", cfg.freq_mhz);

    // Fig. 10: one layer, sweep the pruning ratio.
    println!("\n== cycles vs pruning ratio (128x28x28, 3x3, BS=8) ==");
    let layer = LayerShape::conv(128, 128, 28, 28, 3, 8);
    for i in 0..=4 {
        let alpha = i as f64 / 4.0;
        let b = cfg.simulate(&layer, alpha);
        println!(
            "α = {alpha:.2}: total {:>8} cycles (fft {:>7}, emac {:>8}, ifft {:>7}, dram {:>7})",
            b.total_cycles, b.fft_cycles, b.emac_cycles, b.ifft_cycles, b.dram_cycles
        );
    }

    // Table III: full ResNet-18 at the paper's design point.
    println!("\n== ResNet-18 @ BS=8, α=0.5 ==");
    let frame = cfg.simulate_network(&resnet18_layers(8), 0.5);
    let fps = cfg.fps(&frame);
    let eff = Efficiency::new(fps, &est, p);
    println!(
        "{} cycles/frame, {:.1} MB DRAM traffic/frame",
        frame.total_cycles,
        frame.dram_bytes as f64 / 1e6
    );
    println!(
        "FPS {:.2} | FPS/kLUT {:.2} | FPS/DSP {:.3} | FPS/W {:.2}",
        eff.fps, eff.fps_per_klut, eff.fps_per_dsp, eff.fps_per_w
    );
    println!(
        "energy efficiency vs GTX 1080Ti ({:.2} FPS/W): {:.2}x",
        GpuReference::fps_per_w(),
        eff.fps_per_w / GpuReference::fps_per_w()
    );
}
