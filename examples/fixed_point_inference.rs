//! Run a trained block-circulant layer through the accelerator's
//! bit-accurate 16-bit datapath (quantized weight spectra → fixed-point
//! FFT PE → wide-accumulator eMAC with skip → shift-divider IFFT) and
//! compare against the float reference — the paper's §V-C2 "just 16-bit
//! fixed-point computation" claim, verifiable on your machine.
//!
//! Run with: `cargo run --release -p rpbcm-repro --example fixed_point_inference`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rpbcm_repro::hwsim::inference::{quantization_error, FxWeights};
use rpbcm_repro::hwsim::QFormat;
use rpbcm_repro::nn::data::SyntheticVision;
use rpbcm_repro::nn::layers::{BcmConv2d, Layer};
use rpbcm_repro::nn::models::{vgg_tiny, ConvMode};
use rpbcm_repro::nn::train::{TrainConfig, Trainer};
use rpbcm_repro::tensor::{init, Tensor};

fn main() {
    // A trained BCM network provides realistic weights and activations.
    let data = SyntheticVision::cifar10_like(16, 4, 3);
    let mut net = vgg_tiny(ConvMode::Bcm { block_size: 8 }, data.num_classes(), 3);
    let acc = Trainer::new(TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    })
    .fit(&mut net, &data);
    println!("trained BCM network: float accuracy = {acc:.3}\n");

    // Probe each BCM layer with the real intermediate activations.
    let (x_all, _) = data.test_set();
    let dims = x_all.dims().to_vec();
    let mut cur = Tensor::from_vec(
        x_all.as_slice()[..dims[1] * dims[2] * dims[3]].to_vec(),
        &[1, dims[1], dims[2], dims[3]],
    );
    println!("per-layer fixed-point error (Q7.8) on real activations:");
    let q = QFormat::q8();
    for i in 0..net.layers().len() {
        if let Some(bcm) = net.layers()[i].bcm() {
            let folded = bcm.folded();
            let weights = FxWeights::from_folded(q, &folded);
            let (h, w) = (cur.dims()[2], cur.dims()[3]);
            let float_out = net.layers_mut()[i].forward(&cur.clone(), false);
            let err = quantization_error(q, &weights, cur.as_slice(), float_out.as_slice(), h, w);
            println!(
                "  {:<28} max |err| = {:.4}, SNR = {:.1} dB, live blocks = {}",
                net.layers()[i].name(),
                err.max_abs,
                err.snr_db(),
                weights.live_count()
            );
            cur = float_out;
        } else {
            let layer = &mut net.layers_mut()[i];
            cur = layer.forward(&cur, false);
        }
    }

    // A standalone layer across formats: the precision/headroom trade-off.
    println!("\nfractional-width sweep on a standalone trained-scale layer:");
    let mut rng = StdRng::seed_from_u64(1);
    let mut layer = BcmConv2d::new(&mut rng, 16, 16, 3, 1, 1, 8);
    let x: Tensor<f32> = init::gaussian(&mut rng, &[1, 16, 8, 8], 0.0, 0.5);
    let reference = layer.forward(&x, false);
    for frac in [4u32, 6, 8, 10] {
        let qf = QFormat::new(frac);
        let weights = FxWeights::from_folded(qf, &layer.bcm().expect("bcm").folded());
        let err = quantization_error(qf, &weights, x.as_slice(), reference.as_slice(), 8, 8);
        println!(
            "  Q{}.{:<2}  max |err| = {:.4}, SNR = {:.1} dB",
            15 - frac,
            frac,
            err.max_abs,
            err.snr_db()
        );
    }
    println!("\nQ7.8 keeps ~45+ dB SNR — accuracy-neutral, as §V-C2 reports.");
}
