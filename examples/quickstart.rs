//! Quickstart: compress a single convolution layer with RP-BCM.
//!
//! Walks the whole pipeline on one weight tensor: block-circulant
//! projection, the FFT fast path, hadaBCM parameterization, BCM-wise
//! pruning, and the skip-index buffer the accelerator consumes.
//!
//! Run with: `cargo run --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rpbcm_repro::circulant::{BlockCirculant, ConvBlockCirculant};
use rpbcm_repro::rpbcm::hadabcm::HadaBcmGrid;
use rpbcm_repro::rpbcm::pruning::prune_indices;
use rpbcm_repro::rpbcm::SkipIndexBuffer;
use rpbcm_repro::tensor::{init, ops, Tensor};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let bs = 8;

    // A dense conv weight [c_out=32, c_in=16, 3, 3] ...
    let dense: Tensor<f64> = init::kaiming_normal(&mut rng, &[32, 16, 3, 3]);
    println!("dense conv weight: {} parameters", dense.len());

    // ... projected onto block-circulant form: BS x fewer parameters.
    let bcm = ConvBlockCirculant::project_from_dense(&dense, bs);
    println!(
        "BCM (BS={bs}): {} parameters ({}x reduction), {} blocks",
        bcm.param_count(),
        bcm.dense_param_count() / bcm.param_count(),
        bcm.block_count()
    );

    // The FFT fast path computes exactly the dense block product.
    let grid = bcm.grid(1, 1); // the (1,1) spatial tap's channel grid
    let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.3).sin()).collect();
    let fast = grid.matvec(&x);
    let slow = grid.matvec_naive(&x);
    let diff = fast
        .iter()
        .zip(&slow)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    println!("FFT path vs dense path: max |diff| = {diff:.2e}");

    // hadaBCM: every block becomes A ⊙ B during training; folding back is
    // free and exact.
    let (rb, cb) = grid.grid_dims();
    let hada = HadaBcmGrid::<f64>::random(&mut rng, bs, rb, cb, 0.05);
    let folded: BlockCirculant<f64> = hada.fold();
    println!(
        "hadaBCM grid: {} training params fold to {} inference params",
        hada.train_param_count(),
        folded.param_count()
    );

    // BCM-wise pruning: rank blocks by ℓ₂ norm, drop the weakest 50 %.
    let norms = hada.importances();
    let victims = prune_indices(&norms, 0.5);
    let mut pruned = hada.clone();
    for &v in &victims {
        pruned.pair_mut(v / cb, v % cb).prune();
    }
    let skip = SkipIndexBuffer::from_grid(&pruned.fold());
    println!(
        "pruned {} of {} blocks; skip-index buffer: {} bits ({} live)",
        victims.len(),
        norms.len(),
        skip.size_bits(),
        skip.live_count()
    );

    // The pruned grid still multiplies correctly (skipped blocks are zero).
    let y = pruned.fold().matvec(&x);
    println!(
        "pruned-layer output norm: {:.4}",
        ops::dot(
            &y.iter().copied().collect::<Tensor<f64>>(),
            &y.iter().copied().collect::<Tensor<f64>>()
        )
        .sqrt()
    );
}
