//! The rank-condition story of the paper's §II-B1 and §III-A, in
//! miniature: why circulant training collapses singular spectra, and how
//! the Hadamard product of two circulant blocks repairs them.
//!
//! Run with: `cargo run --example rank_analysis`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rpbcm_repro::circulant::rank::{hadamard_spectrum_support_bound, DecayFit};
use rpbcm_repro::circulant::CirculantMatrix;
use rpbcm_repro::rpbcm::HadaBcm;
use rpbcm_repro::tensor::svd::{normalized_spectrum, singular_values, PoorRankCriterion};
use rpbcm_repro::tensor::{init, Tensor};

fn show(label: &str, sv: &[f64]) {
    let norm = normalized_spectrum(sv);
    let fit = DecayFit::of_spectrum(sv);
    let poor = PoorRankCriterion::paper().is_poor_spectrum(sv);
    let head: Vec<String> = norm.iter().take(8).map(|v| format!("{v:.3}")).collect();
    println!(
        "{label:<22} σ/σ₀ = [{}...]  log-slope = {:+.3}  poor-rank = {poor}",
        head.join(", "),
        fit.log_slope
    );
}

fn main() {
    let n = 16;
    let mut rng = StdRng::seed_from_u64(1);

    // Reference: a Gaussian random matrix decays almost linearly.
    let g: Tensor<f64> = init::gaussian(&mut rng, &[n, n], 0.0, 1.0);
    show("gaussian 16x16", &singular_values(&g));

    // A random circulant block is also healthy...
    let healthy = CirculantMatrix::new(init::gaussian::<f64>(&mut rng, &[n], 0.0, 1.0).into_vec());
    show("random circulant", &healthy.singular_values());

    // ...but a *trained-to-smoothness* circulant block collapses: smooth
    // defining vectors have energy in a handful of DFT bins, which IS the
    // rank of the block.
    let smooth = CirculantMatrix::new(
        (0..n)
            .map(|t| 1.0 + 0.05 * (std::f64::consts::TAU * t as f64 / n as f64).cos())
            .collect(),
    );
    show("smooth circulant", &smooth.singular_values());
    println!(
        "  rank(smooth) = {} of {n} (spectrum support)",
        smooth.rank(1e-9)
    );

    // hadaBCM: the Hadamard product of two such blocks convolves their
    // spectra, widening the support — rank(A⊙B) ≤ rank(A)·rank(B).
    let smooth2 = CirculantMatrix::new(
        (0..n)
            .map(|t| 1.0 + 0.05 * (std::f64::consts::TAU * 3.0 * t as f64 / n as f64).sin())
            .collect(),
    );
    let hada = HadaBcm::new(smooth.clone(), smooth2.clone());
    let folded = hada.fold();
    show("hadaBCM of two smooth", &folded.singular_values());
    println!(
        "  rank(A) = {}, rank(B) = {}, rank(A⊙B) = {} ≤ bound {}",
        smooth.rank(1e-9),
        smooth2.rank(1e-9),
        folded.rank(1e-9),
        hadamard_spectrum_support_bound(n, smooth.rank(1e-9), smooth2.rank(1e-9))
    );

    // And the Eq. (1) gradient coupling that balances the factor ranks:
    let (ga, gb) = hada.gradients(&vec![1.0; n]);
    println!(
        "\nEq. (1) coupling: ∂L/∂A is B-weighted (‖gA‖ = {:.3}), ∂L/∂B is A-weighted (‖gB‖ = {:.3})",
        ga.iter().map(|v| v * v).sum::<f64>().sqrt(),
        gb.iter().map(|v| v * v).sum::<f64>().sqrt()
    );
}
