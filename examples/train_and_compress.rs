//! End-to-end RP-BCM: train a hadaBCM network on the synthetic CIFAR-10
//! stand-in, then run Algorithm 1 (BCM-wise pruning with fine-tuning)
//! until the target accuracy floor, and report the compression.
//!
//! This is the paper's Fig. 3 flow on the scaled-down VGG.
//!
//! Run with: `cargo run --release --example train_and_compress`

use rpbcm_repro::nn::data::SyntheticVision;
use rpbcm_repro::nn::models::{vgg_tiny, ConvMode};
use rpbcm_repro::nn::train::{PrunableTrainedNetwork, TrainConfig, Trainer};
use rpbcm_repro::rpbcm::BcmWisePruner;
use std::sync::Arc;

fn main() {
    let data = SyntheticVision::cifar10_like(24, 8, 7);
    let cfg = TrainConfig {
        epochs: 8,
        ..TrainConfig::default()
    };

    // Stage 0: dense baseline for reference.
    let mut dense = vgg_tiny(ConvMode::Dense, data.num_classes(), 1);
    let dense_acc = Trainer::new(cfg).fit(&mut dense, &data);
    println!(
        "dense baseline:   acc = {dense_acc:.3}, params = {}",
        dense.param_count()
    );

    // Stage 1: hadaBCM training (rank-enhanced BCM).
    let mut hada = vgg_tiny(ConvMode::HadaBcm { block_size: 8 }, data.num_classes(), 1);
    let hada_acc = Trainer::new(cfg).fit(&mut hada, &data);
    println!(
        "hadaBCM (BS=8):   acc = {hada_acc:.3}, folded params = {} ({:.1}% reduction)",
        hada.folded_param_count(),
        100.0 * (1.0 - hada.folded_param_count() as f64 / hada.dense_equiv_param_count() as f64)
    );

    // Stage 2: BCM-wise pruning, Algorithm 1.
    let beta = f64::from(hada_acc) - 0.05;
    let adapter = PrunableTrainedNetwork {
        net: hada,
        data: Arc::new(data),
        finetune: TrainConfig {
            epochs: 3,
            lr_max: 0.02,
            ..cfg
        },
    };
    let pruner = BcmWisePruner {
        alpha_init: 0.25,
        alpha_step: 0.25,
        target_accuracy: beta,
        max_rounds: 4,
    };
    println!("\nAlgorithm 1 (β = {beta:.3}):");
    let (best, report) = pruner.run(adapter);
    for step in &report.steps {
        println!(
            "  α = {:.2}: pruned {:4} blocks, fine-tuned acc = {:.3} [{}]",
            step.alpha,
            step.pruned_count,
            step.accuracy,
            if step.accepted {
                "accepted"
            } else {
                "break-down"
            }
        );
    }
    println!(
        "\nfinal: α = {:?}, sparsity = {:.1}%, acc = {:.3}",
        report.final_alpha,
        100.0 * report.sparsity(),
        report.final_accuracy
    );
    println!(
        "folded params {} of dense-equivalent {} ({:.1}% total reduction)",
        best.net.folded_param_count(),
        best.net.dense_equiv_param_count(),
        100.0
            * (1.0
                - best.net.folded_param_count() as f64 / best.net.dense_equiv_param_count() as f64)
    );
}
