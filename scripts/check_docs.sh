#!/usr/bin/env bash
# Link checker for the repo's markdown: every relative link target in
# docs/, README.md, ARCHITECTURE.md, EXPERIMENTS.md and results/README.md
# must exist in the tree. External (http) and intra-page (#) links are
# skipped. The normative spec prose itself is checked by `cargo test` —
# docs/PROTOCOL.md and docs/OPERATIONS.md compile into the serve crate's
# rustdoc, so their Rust examples execute as doctests.
set -euo pipefail
cd "$(dirname "$0")/.."

files=(README.md ARCHITECTURE.md docs/*.md)
[ -f EXPERIMENTS.md ] && files+=(EXPERIMENTS.md)
[ -f results/README.md ] && files+=(results/README.md)

fails=0
for f in "${files[@]}"; do
    dir=$(dirname "$f")
    # Markdown inline links: capture the (...) target of ](...).
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        path="${target%%#*}"
        [ -z "$path" ] && continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            echo "check_docs: $f: broken link -> $target" >&2
            fails=$((fails + 1))
        fi
    done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//' | sort -u)
done

if [ "$fails" -ne 0 ]; then
    echo "check_docs: $fails broken link(s)" >&2
    exit 1
fi
echo "check_docs: all links resolve (${#files[@]} file(s))"
