#!/usr/bin/env bash
# Full verification gate: tier-1 build+test, workspace tests, lint, format.
# CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: root package tests =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== telemetry crate without the capture feature =="
cargo test -q -p telemetry --no-default-features

echo "== rustdoc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt check =="
cargo fmt --check

echo "verify: all gates passed"
