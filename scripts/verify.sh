#!/usr/bin/env bash
# Full verification gate: tier-1 build+test, workspace tests, lint, format.
# CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: root package tests =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== telemetry crate without the capture feature =="
cargo test -q -p telemetry --no-default-features

echo "== serve tests with telemetry enabled (flight tracing live) =="
# Re-runs the serve suite with the metrics registry and per-request
# flight tracing switched on, so the traced code paths (stage stamps,
# ring pushes, stats snapshots, SLO watchdog) are exercised for real —
# with RPBCM_TELEMETRY unset they compile to near-no-ops.
RPBCM_TELEMETRY=1 cargo test -q -p serve

echo "== session suite with lane gangs forced off and forced wide =="
# The gang scheduler must be behaviourally invisible: every session test
# (bit-identity vs offline forwards, pipelined bursts, mid-stream
# join/leave, close-as-barrier) must pass identically with ganging
# disabled (every step scalar) and forced to full width. Catches any
# scalar-vs-gang divergence or ordering difference the default config
# would mask.
RPBCM_SERVE_SESSION_GANG=0 cargo test -q -p serve --test sessions
RPBCM_SERVE_SESSION_GANG=8 cargo test -q -p serve --test sessions

echo "== serve smoke (loopback load test + 10k-connection open loop) =="
# Quick burst against an in-process sharded server: asserts non-zero
# throughput, zero protocol errors, shedding only under overload, and —
# via a child-process driver — that 10,000 concurrent connections are
# served with bounded p99, zero lost replies and per-shard connection
# imbalance <= 1. Also runs the streaming-session scenario: concurrent
# float + fx sessions whose per-step replies must be bit-identical to
# offline full-sequence references. Does not overwrite the committed
# results/BENCH_serve.json artifact.
cargo run -q --release -p bench --bin exp_serve -- --smoke

echo "== seq smoke (BCM-LSTM train + prune + streaming parity) =="
# Trains a block-circulant LSTM on the delayed-recall task at a reduced
# budget, prunes it with Algorithm 1, then serves the pruned checkpoint
# over real streaming sessions: asserts above-chance accuracy, blocks
# actually pruned, bounded accuracy loss, and bit-identical float + fx
# per-step replies vs the offline forward. Does not overwrite the
# committed results/BENCH_seq.json artifact.
cargo run -q --release -p bench --bin exp_seq -- --smoke

echo "== kernel smoke (lane bit-identity + datapath fingerprint) =="
# Quick scalar-vs-lane run of every vectorized spectral kernel: asserts
# word-for-word agreement with the scalar references and recomputes the
# integer-only datapath fingerprint against the committed
# results/BENCH_kernels.json (byte-identity across hosts and RUSTFLAGS).
# Does not overwrite the committed artifact.
cargo run -q --release -p bench --bin exp_kernels -- --smoke

echo "== train scaling smoke (data-parallel determinism + shard profile) =="
# Seconds-scale Trainer::fit sweep at 1 and 2 workers: asserts the final
# weights are bit-identical across worker counts and that the shard
# telemetry measured a non-zero parallel fraction. Does not overwrite the
# committed results/BENCH_train.json artifact.
cargo run -q --release -p bench --bin exp_train_scaling -- --smoke

echo "== telemetry-enabled experiment run + regression gate =="
# Regenerates results/TELEMETRY_fig10.json (deterministic modeled cycles)
# and a Chrome trace under target/, then runs the regression reporter:
# exp_report parses every results/BENCH_*/TELEMETRY_* artifact (exiting
# non-zero on malformed JSON) and diffs them against results/BASELINE.json,
# failing on any out-of-tolerance metric (--check). The committed
# BENCH_serve.json is covered (protocol_errors/shed/session-parity
# invariants at zero tolerance, the batch-scaling ratio with a
# host-variance allowance), as is BENCH_seq.json (accuracy/sparsity
# with training-variance allowances, parity bits exact).
RPBCM_TELEMETRY=1 RPBCM_TRACE=target/verify_trace.json \
    cargo run -q --release -p bench --bin exp_fig10
cargo run -q --release -p bench --bin exp_report -- --check

echo "== rustdoc (deny warnings) =="
# Also keeps docs/PROTOCOL.md and docs/OPERATIONS.md honest: both are
# compiled into the serve crate's rustdoc (serve::spec), so broken
# intra-doc links or stale Rust examples fail here / under cargo test.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== markdown link check =="
./scripts/check_docs.sh

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt check =="
cargo fmt --check

echo "verify: all gates passed"
