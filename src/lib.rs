//! # RP-BCM reproduction
//!
//! A full Rust reproduction of *"FPGA-Based Accelerator for Rank-Enhanced
//! and Highly-Pruned Block-Circulant Neural Networks"* (DATE 2023): the
//! RP-BCM compression framework (hadaBCM + BCM-wise pruning) together with
//! every substrate it stands on — a tensor/SVD toolbox, an FFT library, a
//! block-circulant algebra, a CNN training framework, and a
//! cycle-approximate model of the paper's PYNQ-Z2 accelerator.
//!
//! This facade crate re-exports the workspace members:
//!
//! - [`tensor`]: dense tensors, Jacobi SVD, statistics, KDE.
//! - [`fft`]: radix-2 FFT, real half-spectra, circular convolution.
//! - [`circulant`]: circulant/block-circulant matrices and rank analysis.
//! - [`rpbcm`]: the paper's contribution — hadaBCM, Algorithm 1 pruning,
//!   compression accounting, skip-index buffers.
//! - [`nn`]: the training stack with dense/BCM/hadaBCM convolutions.
//! - [`hwsim`]: the accelerator model (fixed point, PEs, dataflow,
//!   resources, power).
//!
//! See `examples/` for runnable walk-throughs and the `bench` crate for
//! the per-table/per-figure experiment harness.
//!
//! # Example
//!
//! ```
//! use rpbcm_repro::circulant::CirculantMatrix;
//! use rpbcm_repro::fft::conv;
//!
//! // A circulant matrix–vector product is a circular convolution:
//! let c = CirculantMatrix::new(vec![1.0_f64, 2.0, 3.0, 4.0]);
//! let x = [1.0, 0.0, 0.0, 0.0];
//! assert_eq!(c.matvec_naive(&x), conv::circular_convolve_naive(c.defining_vector(), &x));
//! ```

pub use circulant;
pub use fft;
pub use hwsim;
pub use nn;
pub use rpbcm;
pub use tensor;
