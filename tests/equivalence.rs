//! Cross-crate equivalence tests: every computational substitution the
//! stack makes (dense ↔ circulant ↔ FFT ↔ fixed point) must agree, and
//! the training-side layers must agree with the hardware-side functional
//! model. These are the end-to-end guarantees the per-crate unit tests
//! cannot give.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use rpbcm_repro::circulant::{BlockCirculant, CirculantMatrix};
use rpbcm_repro::fft::real::HalfSpectrum;
use rpbcm_repro::hwsim::fixed::{ComplexAcc, ComplexFx, QFormat};
use rpbcm_repro::hwsim::fxfft::FxFftPe;
use rpbcm_repro::hwsim::pe::{emac_block, narrow_accumulator};
use rpbcm_repro::rpbcm::HadaBcm;
use rpbcm_repro::tensor::{init, Tensor};

/// Dense matvec == FFT matvec == "FFT → eMAC → IFFT" by hand, on the same
/// block-circulant layer.
#[test]
fn dense_fft_and_manual_pipeline_agree() {
    let mut rng = StdRng::seed_from_u64(1);
    let bs = 8;
    let grid = BlockCirculant::from_blocks(
        bs,
        2,
        2,
        (0..4)
            .map(|_| {
                CirculantMatrix::new(init::gaussian::<f64>(&mut rng, &[bs], 0.0, 1.0).into_vec())
            })
            .collect(),
    );
    let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.37).sin()).collect();

    let dense = grid
        .to_dense()
        .matmul(&Tensor::from_vec(x.clone(), &[16, 1]));
    let fast = grid.matvec(&x);

    // Manual pipeline: FFT inputs once, eMAC-accumulate per output block,
    // IFFT once per output block — the accelerator's computation order.
    let mut manual = Vec::new();
    for bi in 0..2 {
        let mut acc = HalfSpectrum::zeros(bs);
        for bj in 0..2 {
            let w_spec = HalfSpectrum::forward(grid.block(bi, bj).defining_vector());
            let x_spec = HalfSpectrum::forward(&x[bj * bs..(bj + 1) * bs]);
            acc.emac_accumulate(&w_spec, &x_spec);
        }
        manual.extend(acc.inverse());
    }

    for i in 0..16 {
        assert!((fast[i] - dense.as_slice()[i]).abs() < 1e-9);
        assert!((manual[i] - dense.as_slice()[i]).abs() < 1e-9);
    }
}

/// The fixed-point accelerator datapath (FxFFT → fixed eMAC → FxIFFT)
/// approximates the float circulant product within quantization error.
#[test]
fn fixed_point_datapath_tracks_float_reference() {
    let mut rng = StdRng::seed_from_u64(2);
    let bs = 8;
    let q = QFormat::q8();
    let w: Vec<f64> = init::gaussian::<f64>(&mut rng, &[bs], 0.0, 0.4).into_vec();
    let x: Vec<f64> = init::gaussian::<f64>(&mut rng, &[bs], 0.0, 0.8).into_vec();
    let float = CirculantMatrix::new(w.clone()).matvec(&x);

    // Hardware path: weight spectrum precomputed offline (float FFT then
    // quantized — Fig. 4b), input through the fixed-point FFT PE.
    let pe = FxFftPe::new(bs, q);
    let w_spec_float = HalfSpectrum::forward(&w);
    let w_bins: Vec<ComplexFx> = w_spec_float
        .bins()
        .iter()
        .map(|c| ComplexFx::from_f64(q, c.re, c.im))
        .collect();
    let x_fx: Vec<i16> = x.iter().map(|&v| q.from_f64(v)).collect();
    let x_full = pe.forward_real(&x_fx);
    let x_bins: Vec<ComplexFx> = x_full[..=bs / 2].to_vec();

    let mut acc = vec![vec![ComplexAcc::zero(); bs / 2 + 1]];
    emac_block(q, bs, &w_bins, &[x_bins], &mut acc);
    let y_half = narrow_accumulator(q, &acc[0]);

    // Expand conjugate-symmetric spectrum and run the fixed-point IFFT.
    let mut y_full = vec![ComplexFx::new(0, 0); bs];
    y_full[..=bs / 2].copy_from_slice(&y_half);
    for k in 1..bs / 2 {
        y_full[bs - k] = y_half[k].conj();
    }
    pe.inverse(&mut y_full);

    for (fx, &want) in y_full.iter().zip(&float) {
        let (re, im) = fx.to_f64(q);
        assert!(
            (re - want).abs() < 0.1,
            "fixed {re} vs float {want} (err {})",
            (re - want).abs()
        );
        assert!(im.abs() < 0.1);
    }
}

/// nn's HadaBcmConv2d and rpbcm's HadaBcm agree on fold and importance.
#[test]
fn nn_layer_and_core_hadabcm_agree() {
    use rpbcm_repro::nn::layers::{BcmLayer, HadaBcmConv2d};
    let mut rng = StdRng::seed_from_u64(3);
    let layer = HadaBcmConv2d::new(&mut rng, 8, 8, 1, 1, 0, 8);
    let folded = layer.folded();
    let imp = layer.importances();
    // Reconstruct the same importance through the core type.
    for (grid, &want) in folded.iter().zip(&imp) {
        let block = grid.block(0, 0);
        let h = HadaBcm::from_folded(block.clone());
        assert!((h.importance() - want).abs() < 1e-5);
    }
}

/// A 1x1 BCM convolution layer equals the BlockCirculant matvec applied
/// per pixel — the training stack and the algebra stack compute the same
/// function.
#[test]
fn bcm_conv_layer_matches_block_circulant_matvec() {
    use rpbcm_repro::nn::layers::{BcmConv2d, BcmLayer, Layer};
    let mut rng = StdRng::seed_from_u64(4);
    let bs = 4;
    let mut layer = BcmConv2d::new(&mut rng, 8, 8, 1, 1, 0, bs);
    let x: Tensor<f32> = init::gaussian(&mut rng, &[1, 8, 2, 2], 0.0, 1.0);
    let y = layer.forward(&x, false);

    let folded = layer.folded();
    let grid = folded.grid(0, 0);
    for py in 0..2 {
        for px in 0..2 {
            let xin: Vec<f32> = (0..8).map(|c| x.at(&[0, c, py, px])).collect();
            let want = grid.matvec_naive(&xin);
            for c in 0..8 {
                assert!(
                    (y.at(&[0, c, py, px]) - want[c]).abs() < 1e-4,
                    "pixel ({py},{px}) channel {c}"
                );
            }
        }
    }
}
