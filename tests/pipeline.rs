//! End-to-end pipeline integration: train → hadaBCM → Algorithm 1 →
//! folded weights → skip bitmaps → accelerator timing, across crates.

use rpbcm_repro::hwsim::dataflow::{DataflowConfig, LayerShape};
use rpbcm_repro::nn::data::SyntheticVision;
use rpbcm_repro::nn::models::{vgg_tiny, ConvMode};
use rpbcm_repro::nn::train::{evaluate, PrunableTrainedNetwork, TrainConfig, Trainer};
use rpbcm_repro::rpbcm::{BcmWisePruner, SkipIndexBuffer};
use std::sync::Arc;

fn quick_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 4,
        batch_size: 16,
        ..TrainConfig::default()
    }
}

/// The full RP-BCM flow produces a pruned network whose skip bitmaps feed
/// the accelerator model and reduce simulated cycles.
#[test]
fn train_prune_fold_simulate() {
    let data = SyntheticVision::cifar10_like(8, 4, 11);
    let mut net = vgg_tiny(ConvMode::HadaBcm { block_size: 8 }, data.num_classes(), 11);
    let base = Trainer::new(quick_cfg()).fit(&mut net, &data);
    assert!(base > 0.15, "training must beat chance, got {base}");

    let adapter = PrunableTrainedNetwork {
        net,
        data: Arc::new(data.clone()),
        finetune: TrainConfig {
            epochs: 1,
            ..quick_cfg()
        },
    };
    let pruner = BcmWisePruner {
        alpha_init: 0.5,
        alpha_step: 0.25,
        target_accuracy: 0.0, // accept everything: we test plumbing here
        max_rounds: 2,
    };
    let (mut best, report) = pruner.run(adapter);
    assert!(report.final_alpha.is_some());
    assert!(best.net.bcm_sparsity() >= 0.5 - 1e-9);

    // The pruned network still evaluates.
    let acc = evaluate(&mut best.net, &data);
    assert!((0.0..=1.0).contains(&acc));

    // Fold every BCM layer, build skip bitmaps, and run the dataflow model
    // with vs without the sparsity.
    let cfg = DataflowConfig::pynq_z2();
    let mut sparse_total = 0u64;
    let mut dense_total = 0u64;
    for bcm in best.net.bcm_layers() {
        let folded = bcm.folded();
        let (c_out, c_in) = folded.channel_dims();
        let (kh, _) = folded.kernel_dims();
        // Feature-map sizes are immaterial for the comparison; use 8x8.
        let layer = LayerShape::conv(c_in, c_out, 8, 8, kh, 8);
        // Per-tile skip for these small layers = the full bitmap.
        let skip = SkipIndexBuffer::from_conv(&folded);
        sparse_total += cfg.simulate_with_skip(&layer, &skip).total_cycles;
        dense_total += cfg
            .simulate_with_skip(&layer, &SkipIndexBuffer::all_live(skip.len()))
            .total_cycles;
    }
    assert!(
        sparse_total < dense_total,
        "sparsity must reduce simulated cycles: {sparse_total} vs {dense_total}"
    );
}

/// Pruned networks keep their sparsity through continued fine-tuning: no
/// eliminated block ever receives weight again.
#[test]
fn sparsity_is_stable_under_finetuning() {
    let data = SyntheticVision::cifar10_like(6, 2, 13);
    let mut net = vgg_tiny(ConvMode::Bcm { block_size: 8 }, data.num_classes(), 13);
    let _ = Trainer::new(quick_cfg()).fit(&mut net, &data);
    let total = net.bcm_block_count();
    let victims: Vec<usize> = (0..total).step_by(3).collect();
    net.bcm_eliminate(&victims);
    let sparsity_before = net.bcm_sparsity();
    let _ = Trainer::new(quick_cfg()).fit(&mut net, &data);
    assert_eq!(net.bcm_sparsity(), sparsity_before);
    // All folded pruned blocks are still exactly zero.
    for bcm in net.bcm_layers() {
        for (i, live) in bcm.skip_index().iter().enumerate() {
            if !live {
                assert_eq!(bcm.importances()[i], 0.0);
            }
        }
    }
}

/// Compression accounting is consistent between the live network and the
/// analytic model: folding a BCM-compressed layer yields BS× fewer
/// parameters than its dense equivalent.
#[test]
fn accounting_consistency() {
    let net = vgg_tiny(ConvMode::Bcm { block_size: 8 }, 10, 17);
    let bcm_params: usize = net
        .bcm_layers()
        .iter()
        .map(|b| b.folded_param_count())
        .sum();
    let dense_params: usize = net.bcm_layers().iter().map(|b| b.dense_param_count()).sum();
    assert_eq!(dense_params, bcm_params * 8);
}
