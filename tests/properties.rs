//! Workspace-level property tests: invariants that span crates.

use proptest::prelude::*;
use rpbcm_repro::circulant::{
    BlockCirculant, CirculantMatrix, ConvBlockCirculant, SpectralBlockCirculant,
};
use rpbcm_repro::hwsim::deploy::{DeployedLayer, DeployedNetwork};
use rpbcm_repro::hwsim::fixed::QFormat;
use rpbcm_repro::hwsim::inference::{conv_forward_fx, FxWeights};
use rpbcm_repro::hwsim::pe::PeBankConfig;
use rpbcm_repro::hwsim::tiling::tiled_conv_forward_fx;
use rpbcm_repro::rpbcm::pruning::{prune_indices, prune_threshold};
use rpbcm_repro::rpbcm::{HadaBcm, SkipIndexBuffer};
use rpbcm_repro::tensor::svd;

/// Random block-circulant conv weight from a proptest value vector.
fn conv_from_values(
    bs: usize,
    ob: usize,
    ib: usize,
    k: usize,
    vals: &[f32],
) -> ConvBlockCirculant<f32> {
    let mut it = vals.iter().copied().cycle();
    let grids = (0..k * k)
        .map(|_| {
            let blocks = (0..ob * ib)
                .map(|_| CirculantMatrix::new((0..bs).map(|_| it.next().expect("cycle")).collect()))
                .collect();
            BlockCirculant::from_blocks(bs, ob, ib, blocks)
        })
        .collect();
    ConvBlockCirculant::from_grids(k, k, grids)
}

proptest! {
    /// Circulant singular values from the spectrum equal Jacobi SVD of the
    /// dense expansion, for every defining vector.
    #[test]
    fn circulant_svd_identity(w in proptest::collection::vec(-4.0_f64..4.0, 8)) {
        let c = CirculantMatrix::new(w);
        let fast = c.singular_values();
        let slow = svd::singular_values(&c.to_dense());
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    /// Folding a hadaBCM pair then expanding equals the Hadamard product
    /// of the factors' dense expansions.
    #[test]
    fn hadabcm_fold_commutes_with_expansion(
        a in proptest::collection::vec(-2.0_f64..2.0, 8),
        b in proptest::collection::vec(-2.0_f64..2.0, 8),
    ) {
        let ca = CirculantMatrix::new(a);
        let cb = CirculantMatrix::new(b);
        let folded_dense = HadaBcm::new(ca.clone(), cb.clone()).fold().to_dense();
        let dense_product = ca.to_dense().hadamard(&cb.to_dense());
        prop_assert_eq!(folded_dense, dense_product);
    }

    /// Pruning selection: exactly ⌊α·n⌋ indices, all with norms ≤ the
    /// reported threshold, and no kept block has a norm strictly below the
    /// smallest pruned one.
    #[test]
    fn pruning_selection_invariants(
        norms in proptest::collection::vec(0.0_f64..10.0, 1..64),
        alpha in 0.0_f64..1.0,
    ) {
        let idx = prune_indices(&norms, alpha);
        let threshold = prune_threshold(&norms, alpha);
        prop_assert_eq!(idx.len(), ((norms.len() as f64) * alpha).floor() as usize);
        for &i in &idx {
            prop_assert!(norms[i] <= threshold + 1e-12);
        }
        if let Some(&max_pruned) = idx.iter().map(|&i| &norms[i]).max_by(|a, b| a.partial_cmp(b).unwrap()) {
            let kept_min = norms
                .iter()
                .enumerate()
                .filter(|(i, _)| !idx.contains(i))
                .map(|(_, &n)| n)
                .fold(f64::INFINITY, f64::min);
            prop_assert!(kept_min >= max_pruned - 1e-12);
        }
    }

    /// Skip-index round trip and counting.
    #[test]
    fn skip_index_round_trip(bits in proptest::collection::vec(any::<bool>(), 1..200)) {
        let buf = SkipIndexBuffer::from_bools(&bits);
        prop_assert_eq!(buf.len(), bits.len());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(buf.get(i), b);
        }
        prop_assert_eq!(buf.live_count(), bits.iter().filter(|&&b| b).count());
        let live: Vec<usize> = buf.iter_live().collect();
        prop_assert!(live.windows(2).all(|w| w[0] < w[1]));
    }

    /// PE bank cycles: the skip design never computes more than the
    /// conventional design plus per-block overhead, and pruning can only
    /// reduce cycles.
    #[test]
    fn pe_cycle_monotonicity(
        bits in proptest::collection::vec(any::<bool>(), 1..128),
        pixels in 1usize..512,
    ) {
        let cfg = PeBankConfig::new(8, 16);
        let skip = SkipIndexBuffer::from_bools(&bits);
        let all_live = SkipIndexBuffer::all_live(bits.len());
        let pruned_cycles = cfg.tile_cycles_skip(&skip, pixels);
        let live_cycles = cfg.tile_cycles_skip(&all_live, pixels);
        prop_assert!(pruned_cycles <= live_cycles);
        let conventional = cfg.tile_cycles_conventional(bits.len(), pixels);
        let max_overhead = (bits.len() as u64) * cfg.costs.skip_overhead_cycles;
        prop_assert!(live_cycles <= conventional + max_overhead);
    }

    /// Pre-computed spectral weights compute the same product as the
    /// time-domain grid, pruned blocks included.
    #[test]
    fn spectral_matvec_matches_dense(
        vals in proptest::collection::vec(-2.0_f64..2.0, 32),
        x in proptest::collection::vec(-2.0_f64..2.0, 16),
        pruned in proptest::collection::vec(any::<bool>(), 4),
    ) {
        let mut it = vals.iter().copied().cycle();
        let blocks: Vec<CirculantMatrix<f64>> = (0..4)
            .map(|i| {
                if pruned[i] {
                    CirculantMatrix::zeros(8)
                } else {
                    CirculantMatrix::new((0..8).map(|_| it.next().expect("cycle")).collect())
                }
            })
            .collect();
        let grid = BlockCirculant::from_blocks(8, 2, 2, blocks);
        let spectral = SpectralBlockCirculant::from_grid(&grid);
        let fast = spectral.matvec(&x);
        let slow = grid.matvec_naive(&x);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).abs() < 1e-7);
        }
    }

    /// The lazily cached spectral path equals the naive time-domain
    /// product, including after mutating a block through `block_mut` (the
    /// cache must invalidate) and after pruning a block to zero (the skip
    /// path must keep matching).
    #[test]
    fn cached_spectral_matvec_matches_naive(
        vals in proptest::collection::vec(-2.0_f64..2.0, 64),
        x in proptest::collection::vec(-2.0_f64..2.0, 24),
        muts in proptest::collection::vec(-1.5_f64..1.5, 8),
    ) {
        let mut it = vals.iter().copied().cycle();
        let blocks = (0..2 * 3)
            .map(|_| CirculantMatrix::new((0..8).map(|_| it.next().expect("cycle")).collect()))
            .collect();
        let mut grid = BlockCirculant::from_blocks(8, 2, 3, blocks);
        grid.prepare_spectra();
        let close = |a: &[f64], b: &[f64]| a.iter().zip(b).all(|(p, q)| (p - q).abs() < 1e-7);
        prop_assert!(close(&grid.matvec(&x), &grid.matvec_naive(&x)));
        // Mutating a block must drop the stale spectra...
        *grid.block_mut(1, 2) = CirculantMatrix::new(muts.clone());
        prop_assert!(close(&grid.matvec(&x), &grid.matvec_naive(&x)));
        // ...and so must pruning a block to zero (the skip-index case).
        *grid.block_mut(0, 1) = CirculantMatrix::zeros(8);
        prop_assert!(close(&grid.matvec(&x), &grid.matvec_naive(&x)));
    }

    /// Worker count never changes results: 1, 2, and 8 workers produce
    /// bit-identical matvec and batched matmat outputs.
    #[test]
    fn worker_count_is_bit_exact(
        vals in proptest::collection::vec(-2.0_f64..2.0, 48),
        xs in proptest::collection::vec(-2.0_f64..2.0, 64),
    ) {
        let mut it = vals.iter().copied().cycle();
        let blocks = (0..2 * 2)
            .map(|_| CirculantMatrix::new((0..8).map(|_| it.next().expect("cycle")).collect()))
            .collect();
        let grid = BlockCirculant::from_blocks(8, 2, 2, blocks);
        let base = grid.matvec_with_workers(&xs[..16], 1);
        for workers in [2usize, 8] {
            prop_assert_eq!(&grid.matvec_with_workers(&xs[..16], workers), &base);
        }
        let batched = grid.matmat_with_workers(&xs, 4, 1);
        for workers in [2usize, 8] {
            prop_assert_eq!(&grid.matmat_with_workers(&xs, 4, workers), &batched);
        }
    }

    /// Deployment packages round-trip and execute identically to the
    /// weights they were built from.
    #[test]
    fn deployment_round_trip_executes_identically(
        vals in proptest::collection::vec(-0.5_f32..0.5, 24),
        x_raw in proptest::collection::vec(-100i16..100, 8 * 9),
    ) {
        let q = QFormat::q8();
        let conv = conv_from_values(8, 1, 1, 3, &vals);
        let direct = FxWeights::from_folded(q, &conv);
        let pkg = DeployedNetwork {
            frac_bits: 8,
            layers: vec![DeployedLayer::from_folded("l", q, &conv)],
        };
        let decoded = DeployedNetwork::decode(&pkg.encode()).expect("round trip");
        prop_assert_eq!(&decoded, &pkg);
        let rebuilt = decoded.layers[0].to_fx_weights();
        let y1 = conv_forward_fx(q, &direct, &x_raw, 3, 3);
        let y2 = conv_forward_fx(q, &rebuilt, &x_raw, 3, 3);
        prop_assert_eq!(y1, y2);
    }

    /// Tile-by-tile fixed-point execution is bit-identical to whole-layer
    /// execution for every tile geometry.
    #[test]
    fn tiled_execution_bit_exact(
        vals in proptest::collection::vec(-0.5_f32..0.5, 16),
        x_raw in proptest::collection::vec(-100i16..100, 8 * 30),
        tile_h in 1usize..7,
        tile_w in 1usize..7,
    ) {
        let q = QFormat::q8();
        let conv = conv_from_values(8, 1, 1, 3, &vals);
        let weights = FxWeights::from_folded(q, &conv);
        let (h, w) = (5, 6);
        let whole = conv_forward_fx(q, &weights, &x_raw, h, w);
        let tiled = tiled_conv_forward_fx(q, &weights, &x_raw, h, w, tile_h, tile_w);
        prop_assert_eq!(whole, tiled);
    }

    /// Fixed-point quantization round-trip error is bounded by half a
    /// resolution step inside the representable range, and saturates to
    /// the range bounds outside it.
    #[test]
    fn qformat_round_trip(v in -100.0_f64..100.0, frac in 4u32..12) {
        let q = QFormat::new(frac);
        let back = q.to_f64(q.from_f64(v));
        let clamped = v.clamp(q.to_f64(i16::MIN), q.max_value());
        prop_assert!((back - clamped).abs() <= q.resolution() / 2.0 + 1e-12);
    }
}
