//! Telemetry must never change arithmetic: enabling the probes leaves the
//! hwsim fixed-point datapath bit-identical.
//!
//! Lives in its own integration-test binary (its own process) because it
//! flips the process-wide telemetry override, which must not race probes
//! exercised by other tests.

use proptest::prelude::*;
use rpbcm_repro::circulant::{BlockCirculant, CirculantMatrix, ConvBlockCirculant};
use rpbcm_repro::hwsim::dataflow::{DataflowConfig, LayerShape};
use rpbcm_repro::hwsim::fixed::QFormat;
use rpbcm_repro::hwsim::inference::{conv_forward_fx, FxWeights};
use rpbcm_repro::nn::data::SyntheticVision;
use rpbcm_repro::nn::models::vgg_tiny;
use rpbcm_repro::nn::{ConvMode, TrainConfig, Trainer};

/// A full instrumented training run (per-layer latency histograms, epoch
/// gauges, gradient-norm/update-ratio gauges) leaves every weight — and
/// therefore the final accuracy — bit-identical to an uninstrumented run.
#[test]
fn training_is_bit_identical_with_telemetry() {
    let data = SyntheticVision::cifar10_like(8, 4, 11);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        ..TrainConfig::default()
    };
    let run = |capture: bool| {
        telemetry::set_enabled(capture);
        let mut net = vgg_tiny(ConvMode::Bcm { block_size: 8 }, data.num_classes(), 3);
        let mut trainer = Trainer::new(cfg);
        let acc = trainer.fit(&mut net, &data);
        telemetry::set_enabled(false);
        let weight_bits: Vec<u32> = net
            .params()
            .iter()
            .flat_map(|p| p.value.as_slice().iter().map(|w| w.to_bits()))
            .collect();
        (acc.to_bits(), weight_bits)
    };
    let quiet = run(false);
    let probed = run(true);
    assert!(!quiet.1.is_empty(), "params() surfaces trainable weights");
    assert_eq!(quiet, probed);
}

/// Random block-circulant conv weight from a proptest value vector, with
/// every other block pruned so the skip path is exercised too.
fn conv_from_values(
    bs: usize,
    ob: usize,
    ib: usize,
    k: usize,
    vals: &[f32],
) -> ConvBlockCirculant<f32> {
    let mut it = vals.iter().copied().cycle();
    let grids = (0..k * k)
        .map(|_| {
            let blocks = (0..ob * ib)
                .map(|b| {
                    if b % 2 == 1 {
                        CirculantMatrix::zeros(bs)
                    } else {
                        CirculantMatrix::new((0..bs).map(|_| it.next().expect("cycle")).collect())
                    }
                })
                .collect();
            BlockCirculant::from_blocks(bs, ob, ib, blocks)
        })
        .collect();
    ConvBlockCirculant::from_grids(k, k, grids)
}

proptest! {
    /// The fixed-point conv forward returns the same words with telemetry
    /// captured and with it disabled — probes observe, never perturb.
    #[test]
    fn fx_conv_is_bit_identical_with_telemetry(
        vals in proptest::collection::vec(-0.5_f32..0.5, 16),
        xs in proptest::collection::vec(-64_i16..64, 2 * 8 * 5 * 5),
    ) {
        let q = QFormat::q8();
        let conv = conv_from_values(8, 2, 2, 3, &vals);
        let w = FxWeights::from_folded(q, &conv);

        telemetry::set_enabled(false);
        let quiet = conv_forward_fx(q, &w, &xs, 5, 5);

        telemetry::set_enabled(true);
        let probed = conv_forward_fx(q, &w, &xs, 5, 5);
        telemetry::set_enabled(false);

        prop_assert_eq!(quiet, probed);
    }

    /// The analytic dataflow model reports the same cycle breakdown either
    /// way: its telemetry records the breakdown, it never feeds back.
    #[test]
    fn dataflow_cycles_identical_with_telemetry(alpha in 0.0_f64..1.0) {
        let cfg = DataflowConfig::pynq_z2();
        let layer = LayerShape::conv(128, 128, 28, 28, 3, 8);

        telemetry::set_enabled(false);
        let quiet = cfg.simulate(&layer, alpha);

        telemetry::set_enabled(true);
        let probed = cfg.simulate(&layer, alpha);
        telemetry::set_enabled(false);

        prop_assert_eq!(quiet, probed);
    }
}
