//! Telemetry aggregation across the scoped-thread worker pool.
//!
//! Lives in its own integration-test binary (its own process) because it
//! flips the process-wide telemetry override, which must not race probes
//! exercised by other tests.

use rpbcm_repro::tensor::parallel;

/// A probe shared by every worker closure below: all increments must land
/// in the same registry cell no matter which thread performs them.
static SEEN: telemetry::Counter = telemetry::Counter::new("test.parallel.items_seen");

#[test]
fn counters_aggregate_across_workers() {
    telemetry::set_enabled(true);
    telemetry::reset();

    let items: Vec<u64> = (0..1013).collect();
    let doubled = parallel::par_map_with(4, &items, |_, &v| {
        SEEN.inc();
        v * 2
    });
    assert_eq!(doubled.len(), items.len());
    assert_eq!(doubled[7], 14);
    // 1013 increments from 4 worker threads, one shared cell.
    assert_eq!(SEEN.value(), items.len() as u64);

    let snap = telemetry::snapshot();
    assert!(snap.enabled);
    assert_eq!(snap.counters["tensor.parallel.jobs"], 1);
    assert_eq!(snap.counters["tensor.parallel.items"], 1013);
    assert_eq!(snap.counters["tensor.parallel.workers_spawned"], 4);
    // One busy span per spawned worker, one wall span per scope.
    assert_eq!(snap.timers["tensor.parallel.worker_busy"].count, 4);
    assert_eq!(snap.timers["tensor.parallel.scope_wall"].count, 1);
    // Contiguous splitting of 1013 over 4 is near-balanced: the largest
    // range (254) over the mean (253.25) stays well under 2x.
    let imbalance = snap.gauges["tensor.parallel.max_partition_imbalance"];
    assert!((1.0..2.0).contains(&imbalance), "imbalance = {imbalance}");
}

#[test]
fn serial_fallback_counts_separately() {
    telemetry::set_enabled(true);

    let before = telemetry::snapshot();
    let serial_before = before
        .counters
        .get("tensor.parallel.serial_jobs")
        .copied()
        .unwrap_or(0);
    let items = [1u32, 2, 3];
    let out = parallel::par_map_with(1, &items, |_, &v| v + 1);
    assert_eq!(out, vec![2, 3, 4]);

    let after = telemetry::snapshot();
    assert_eq!(
        after.counters["tensor.parallel.serial_jobs"],
        serial_before + 1
    );
    // The serial path spawns nothing, so the fan-out counters are unchanged.
    assert_eq!(
        after.counters.get("tensor.parallel.workers_spawned"),
        before.counters.get("tensor.parallel.workers_spawned")
    );
}
