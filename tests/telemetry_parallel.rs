//! Telemetry aggregation across the scoped-thread worker pool.
//!
//! Lives in its own integration-test binary (its own process) because it
//! flips the process-wide telemetry override, which must not race probes
//! exercised by other tests.

use rpbcm_repro::tensor::parallel;

/// A probe shared by every worker closure below: all increments must land
/// in the same registry cell no matter which thread performs them.
static SEEN: telemetry::Counter = telemetry::Counter::new("test.parallel.items_seen");
/// Histogram fed concurrently from every worker: the lock-free buckets
/// must not lose observations in the merge.
static ITEM_VALUES: telemetry::Histogram = telemetry::Histogram::new("test.parallel.item_values");

#[test]
fn counters_aggregate_across_workers() {
    telemetry::set_enabled(true);
    telemetry::reset();

    let items: Vec<u64> = (0..1013).collect();
    let doubled = parallel::par_map_with(4, &items, |_, &v| {
        SEEN.inc();
        v * 2
    });
    assert_eq!(doubled.len(), items.len());
    assert_eq!(doubled[7], 14);
    // 1013 increments from 4 worker threads, one shared cell.
    assert_eq!(SEEN.value(), items.len() as u64);

    let snap = telemetry::snapshot();
    assert!(snap.enabled);
    assert_eq!(snap.counters["tensor.parallel.jobs"], 1);
    assert_eq!(snap.counters["tensor.parallel.items"], 1013);
    assert_eq!(snap.counters["tensor.parallel.workers_spawned"], 4);
    // One busy observation per spawned worker, one wall observation per
    // scope — now histograms, so tail latencies are reportable too.
    assert_eq!(snap.histograms["tensor.parallel.worker_busy"].count, 4);
    assert_eq!(snap.histograms["tensor.parallel.scope_wall"].count, 1);
    // Contiguous splitting of 1013 over 4 is near-balanced: the largest
    // range (254) over the mean (253.25) stays well under 2x.
    let imbalance = snap.gauges["tensor.parallel.max_partition_imbalance"];
    assert!((1.0..2.0).contains(&imbalance), "imbalance = {imbalance}");

    // Same test body (not a separate #[test]): this block and the exact
    // counter assertions above both depend on the global registry, and
    // the test harness runs #[test]s concurrently in one process.
    histogram_merge_preserves_every_observation();
}

/// 2000 observations with known values, recorded concurrently from 8
/// workers. Count, sum and max must all survive the lock-free merge; the
/// quantile estimates must respect the log₂ bucket bounds.
fn histogram_merge_preserves_every_observation() {
    let items: Vec<u64> = (0..2000).collect();
    let before = ITEM_VALUES.count();
    let before_sum = ITEM_VALUES.sum();
    let out = parallel::par_map_with(8, &items, |_, &v| {
        ITEM_VALUES.record(v);
        v
    });
    assert_eq!(out.len(), items.len());
    assert_eq!(ITEM_VALUES.count() - before, 2000);
    let want_sum: u64 = items.iter().sum();
    assert_eq!(ITEM_VALUES.sum() - before_sum, want_sum);
    assert!(ITEM_VALUES.max() >= 1999);

    let snap = telemetry::snapshot();
    let h = &snap.histograms["test.parallel.item_values"];
    assert_eq!(h.count, ITEM_VALUES.count());
    // Uniform 0..2000: the median rank lands in the bucket holding 999,
    // whose upper bound is 1023; p99 and max land in the last used bucket.
    assert!(h.p50 >= 511 && h.p50 <= 1023, "p50 = {}", h.p50);
    assert!(h.p90 >= h.p50 && h.p99 >= h.p90, "quantiles ordered");
    assert!(h.max <= 2047, "max within the top bucket's range");
}

#[test]
fn serial_fallback_counts_separately() {
    telemetry::set_enabled(true);

    let before = telemetry::snapshot();
    let serial_before = before
        .counters
        .get("tensor.parallel.serial_jobs")
        .copied()
        .unwrap_or(0);
    let items = [1u32, 2, 3];
    let out = parallel::par_map_with(1, &items, |_, &v| v + 1);
    assert_eq!(out, vec![2, 3, 4]);

    let after = telemetry::snapshot();
    assert_eq!(
        after.counters["tensor.parallel.serial_jobs"],
        serial_before + 1
    );
    // The serial path spawns nothing, so the fan-out counters are unchanged.
    assert_eq!(
        after.counters.get("tensor.parallel.workers_spawned"),
        before.counters.get("tensor.parallel.workers_spawned")
    );
}
