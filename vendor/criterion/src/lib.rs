//! Offline, std-only stand-in for the `criterion` API subset this workspace
//! uses.
//!
//! The build environment is offline, so the real `criterion` crate cannot be
//! fetched. This stub keeps `benches/*.rs` compiling and runnable: each
//! benchmark does a short warmup, times a fixed number of iterations with
//! `std::time::Instant`, and prints the mean wall time per iteration. There
//! is no statistical analysis, HTML report, or outlier rejection — for
//! publishable numbers the workspace's `bench` binaries (`exp_*`) are the
//! source of truth.

use std::fmt::Display;
use std::time::Instant;

/// Identifier for a parameterized benchmark, e.g. `fft/256`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier carrying only the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures handed to `bench_function`/`bench_with_input`.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters.min(3) {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn run_one(group: &str, id: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        last_ns: f64::NAN,
    };
    f(&mut b);
    let sep = if group.is_empty() { "" } else { "/" };
    eprintln!("bench {group}{sep}{id}: {:.1} ns/iter", b.last_ns);
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), self.iters, &mut f);
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.to_string(), self.iters, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    iters: u64,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let iters = self.default_iters();
        BenchmarkGroup {
            name: name.to_string(),
            iters,
            _criterion: self,
        }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let iters = self.default_iters();
        run_one("", &id.to_string(), iters, &mut f);
        self
    }

    fn default_iters(&self) -> u64 {
        if self.iters == 0 {
            20
        } else {
            self.iters
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(5);
        for n in [10usize, 100] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<usize>())
            });
        }
        group.bench_function("fixed", |b| b.iter(|| 2 + 2));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_timing_run() {
        benches();
        let mut c = Criterion::default();
        c.bench_function(BenchmarkId::new("top", "level"), |b| b.iter(|| 1 + 1));
    }
}
