//! Offline, std-only stand-in for the `proptest` API subset this workspace
//! uses.
//!
//! The build environment is offline, so the real `proptest` crate cannot be
//! fetched. This stub keeps every property test compiling and meaningful: the
//! `proptest!` macro expands each property into a `#[test]` that draws
//! `PROPTEST_CASES` (default 64) random cases from the declared strategies
//! and runs the body against each. Strategies cover exactly the shapes the
//! workspace uses — numeric ranges, `any::<bool>()` and `collection::vec`.
//! There is no shrinking: a failing case reports its seed, and the generator
//! is deterministic per test name + case index, so failures reproduce.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::{Rng, SampleRange};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Something that can generate values of `Self::Value` from a seeded rng.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T: Clone + PartialOrd> Strategy for Range<T>
    where
        Range<T>: SampleRange<T>,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: Clone + PartialOrd> Strategy for RangeInclusive<T>
    where
        RangeInclusive<T>: SampleRange<T>,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing values of `T`'s natural uniform distribution;
    /// built by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: rand::Sample> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the default strategy for a type.

    use crate::strategy::Any;
    use std::marker::PhantomData;

    /// Strategy drawing from `T`'s natural uniform distribution
    /// (full domain for `bool` and integers, `[0, 1)` for floats).
    pub fn any<T: rand::Sample>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact length or a range.
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length comes from `size` (exact `usize` or `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min + 1 == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case scheduling for the `proptest!` macro.

    use rand::SeedableRng;

    /// The generator handed to strategies.
    pub type TestRng = rand::rngs::StdRng;

    /// Number of cases per property: `PROPTEST_CASES` env var, default 64.
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Seeds a generator deterministically from the property name and case
    /// index (FNV-1a over the name, mixed with the index), so a failure
    /// message's `name/case` pair is enough to replay it.
    pub fn rng_for_case(name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` that runs the body over
/// [`test_runner::cases`]-many random cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            $(let $arg = $strat;)+
            for __case in 0..$crate::test_runner::cases() {
                let mut __rng =
                    $crate::test_runner::rng_for_case(stringify!($name), __case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);
                )+
                $body
            }
        }
    )+};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)+) => { assert!($($tt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)+) => { assert_eq!($($tt)+) };
}

pub mod prelude {
    //! The usual imports: `proptest!`, assertions, `any`, `Strategy`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            v in crate::collection::vec(-2.0_f64..2.0, 1..9),
            flag in any::<bool>(),
            n in 1usize..5,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|x| (-2.0..2.0).contains(x)));
            prop_assert!((1..5).contains(&n));
            let _ = flag;
        }

        #[test]
        fn exact_vec_len_is_respected(v in crate::collection::vec(0.0_f32..1.0, 8)) {
            prop_assert_eq!(v.len(), 8);
        }
    }

    #[test]
    fn case_rngs_are_deterministic_per_name_and_case() {
        use crate::strategy::Strategy;
        let s = 0.0_f64..1.0;
        let a = s.generate(&mut crate::test_runner::rng_for_case("t", 3));
        let b = s.generate(&mut crate::test_runner::rng_for_case("t", 3));
        let c = s.generate(&mut crate::test_runner::rng_for_case("t", 4));
        assert_eq!(a.to_bits(), b.to_bits());
        assert_ne!(a.to_bits(), c.to_bits());
    }
}
