//! Offline, std-only stand-in for the `rand` 0.8 API subset this workspace
//! uses.
//!
//! The build environment has no network access and no vendored registry, so
//! the real `rand` crate cannot be fetched. This stub implements exactly the
//! surface the reproduction calls — [`Rng::gen`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`] — over a xoshiro256++
//! generator seeded with SplitMix64. Streams differ from upstream `rand`
//! (which uses ChaCha12 for `StdRng`), but every experiment in the
//! reproduction only relies on *deterministic, well-distributed* draws, not
//! on a specific stream, so seeded runs stay reproducible against this stub.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their "natural" domain (`[0, 1)` for
/// floats, the full domain for integers and `bool`) — the stub's analogue of
/// `rand::distributions::Standard`.
pub trait Sample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that can produce a uniform sample of `T` — the stub's analogue of
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from `rng` inside the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = u128::from(rng.next_u64()) % span;
                (self.start as i128 + r as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = u128::from(rng.next_u64()) % span;
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Sample::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the type's natural uniform distribution
    /// (`[0, 1)` for floats).
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64. Small, fast and statistically solid for
    /// simulation workloads; not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2019).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            let w: f32 = rng.gen();
            assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&j));
            let f = rng.gen_range(-2.5..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
    }

    #[test]
    fn integer_ranges_hit_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_of_unit_draws_is_near_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
